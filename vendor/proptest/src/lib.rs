//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the strategy combinators and macros this workspace uses:
//! range and tuple strategies, `any::<T>()`, `prop_map`,
//! `collection::{vec, btree_set}`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Cases are generated from a
//! deterministic per-test seed; failing inputs are **not shrunk** (the
//! panic message carries the case number and the failed condition
//! instead). See `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// The random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Samples uniformly from a half-open range.
    pub fn gen_range<T: rand::SampleUniform>(&mut self, range: Range<T>) -> T {
        self.0.gen_range(range)
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    base_seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: cases are deterministic per test but
        // decorrelated across tests.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            cases: config.cases,
            base_seed: seed,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng(StdRng::seed_from_u64(
            self.base_seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        ))
    }
}

/// A failed property-test assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);
impl_tuple_strategy!(A, B, C, D, E, G, H);
impl_tuple_strategy!(A, B, C, D, E, G, H, I);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` of `len`-many elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    /// Strategy for `BTreeSet`s with a target size drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = rng.gen_range(self.len.clone());
            let mut set = BTreeSet::new();
            // A bounded element domain can be smaller than the target
            // size; cap the attempts instead of looping forever.
            let mut attempts = 0usize;
            while set.len() < n && attempts < n.saturating_mul(64).max(64) {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// A `BTreeSet` with up to `len`-many elements drawn from `elem`.
    pub fn btree_set<S: Strategy>(elem: S, len: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { elem, len }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                let ($($arg,)+) = ($( $crate::Strategy::generate(&{ $strat }, &mut rng) ,)+);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (0usize..10, 0usize..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f), "f = {f}");
        }

        #[test]
        fn mapped_pairs_are_ordered((lo, hi) in arb_pair(), _any in any::<u64>()) {
            prop_assert!(lo <= hi);
            prop_assert_eq!(lo.min(hi), lo);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(-4isize..5, 1..6),
            s in crate::collection::btree_set(0usize..24, 0..12),
        ) {
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(s.len() < 12);
            for x in &v {
                prop_assert!((-4..5).contains(x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_carry_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }
}

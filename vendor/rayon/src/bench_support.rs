//! Microbenchmark access to the pool's deque internals.
//!
//! The `experiments bench-trajectory` harness (crate `qrm-bench`)
//! measures owner push/pop latency and contended steal throughput of
//! the production [Chase-Lev deque](crate::pool) and compares it
//! against the mutex-protected `VecDeque` design it replaced. The old
//! design is preserved here — and only here — as [`MutexDeque`], so the
//! comparison in `BENCH_<pr>.json` is measured, not remembered.
//!
//! Nothing in this module is part of the crate's emulated rayon API;
//! the planning stack never touches it.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::pool::{Job, WorkerDeque};

/// Operations shared by both deque flavours so the microbench harness
/// drives them through one code path.
pub trait StealableDeque: Send + Sync {
    /// Owner-side push of a job (the hot end).
    fn push(&self, job: Job);
    /// Owner-side pop (LIFO). Returns whether a job was claimed; the
    /// claimed job is dropped unexecuted (microbench payloads are
    /// no-ops).
    fn pop(&self) -> bool;
    /// Thief-side steal (FIFO, from the cold end). Returns whether a
    /// job was claimed.
    fn steal(&self) -> bool;
}

/// The production lock-free Chase-Lev deque, exposed for measurement.
///
/// The single-owner contract of the underlying deque applies: exactly
/// one thread may call [`StealableDeque::push`]/[`StealableDeque::pop`];
/// any number may call [`StealableDeque::steal`].
#[derive(Default)]
pub struct ChaseLevDeque {
    inner: WorkerDeque,
}

impl StealableDeque for ChaseLevDeque {
    fn push(&self, job: Job) {
        self.inner.push(job);
    }

    fn pop(&self) -> bool {
        self.inner.pop_local().is_some()
    }

    fn steal(&self) -> bool {
        self.inner.steal().is_some()
    }
}

/// The pre-Chase-Lev worker deque: a mutex around a `VecDeque`, owner
/// at the back, thieves at the front through `try_lock` (a busy owner
/// makes the thief move on rather than block — mirroring the lock-free
/// steal's lost-CAS behaviour). Kept verbatim as the measured baseline
/// for the benchmark trajectory.
#[derive(Default)]
pub struct MutexDeque {
    jobs: Mutex<VecDeque<Job>>,
}

impl StealableDeque for MutexDeque {
    fn push(&self, job: Job) {
        self.jobs
            .lock()
            .expect("bench deque poisoned")
            .push_back(job);
    }

    fn pop(&self) -> bool {
        self.jobs
            .lock()
            .expect("bench deque poisoned")
            .pop_back()
            .is_some()
    }

    fn steal(&self) -> bool {
        match self.jobs.try_lock() {
            Ok(mut jobs) => jobs.pop_front().is_some(),
            Err(_) => false,
        }
    }
}

/// A minimal no-op job for deque microbenchmarks, going through the
/// production type-erased path (boxed closure) so push latency includes
/// the real per-job cost.
#[must_use]
pub fn noop_job() -> Job {
    Box::new(|| {})
}

/// Runs a depth-`depth` *spawn chain* on the global pool: a scope in
/// which each job spawns its successor, so exactly one job is ready at
/// any instant and every hand-off goes through the scheduler.
///
/// This is the primitive the shot-level dataflow scheduler
/// (`qrm_core::engine::dataflow`) is built from — observe tasks spawn
/// plan tasks spawn execute tasks spawn the next observe — so its
/// per-hand-off cost is what `bench-trajectory` measures here, with no
/// planning work attached. Panics only if the pool loses a job (the
/// chain not reaching `depth` would hang the scope, so completion is
/// asserted by counting).
pub fn run_spawn_chain(depth: usize) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let hops = AtomicUsize::new(0);
    fn hop<'s>(scope: &crate::Scope<'s, '_>, hops: &'s AtomicUsize, remaining: usize) {
        if remaining == 0 {
            return;
        }
        hops.fetch_add(1, Ordering::Relaxed);
        scope.spawn(move |scope| hop(scope, hops, remaining - 1));
    }
    crate::scope(|scope| hop(scope, &hops, depth));
    assert_eq!(
        hops.load(Ordering::Relaxed),
        depth,
        "spawn chain lost a job"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(deque: &dyn StealableDeque) {
        assert!(!deque.pop());
        assert!(!deque.steal());
        for _ in 0..10 {
            deque.push(noop_job());
        }
        let mut popped = 0;
        let mut stolen = 0;
        while deque.pop() {
            popped += 1;
        }
        deque.push(noop_job());
        while deque.steal() {
            stolen += 1;
        }
        assert_eq!(popped, 10);
        assert_eq!(stolen, 1);
    }

    #[test]
    fn both_flavours_honour_the_same_contract() {
        exercise(&ChaseLevDeque::default());
        exercise(&MutexDeque::default());
    }

    #[test]
    fn spawn_chain_completes_at_any_depth() {
        for depth in [0, 1, 2, 64, 1000] {
            run_spawn_chain(depth);
        }
    }
}

//! Offline, API-compatible subset of the `rayon` crate.
//!
//! Provides `join`, `scope`, and eager order-preserving parallel
//! iterators over `std::thread` — the surface the workspace's parallel
//! planning engine uses. Work distribution is a shared index queue, so
//! results are written into pre-assigned slots and `collect()` is
//! deterministic regardless of thread interleaving. See
//! `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Number of worker threads a parallel operation will use at most.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// A scope in which spawned tasks are guaranteed to finish before the
/// scope returns.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on the scope; it may run on another thread and may
    /// itself spawn further tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope whose spawned tasks all complete before `scope`
/// returns.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Order-preserving parallel map over owned items: thread `k` pulls the
/// next `(index, item)` from a shared queue and writes `f(item)` into
/// slot `index`.
fn par_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let input: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let output: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = input.lock().expect("rayon queue poisoned").pop_front();
                match job {
                    Some((i, item)) => {
                        *output[i].lock().expect("rayon slot poisoned") = Some(f(item));
                    }
                    None => break,
                }
            });
        }
    });
    output
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// An eagerly evaluated parallel iterator.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map(self.items, f);
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a parallel iterator, by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// Creates a parallel iterator over references to `self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{join, scope};

    #[test]
    fn map_preserves_order() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, (0..100usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scoped_spawns_complete_before_return() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 8);
    }
}

//! Offline, API-compatible subset of the `rayon` crate.
//!
//! Provides `join`, `scope`, `spawn`, and eager order-preserving
//! parallel iterators — the surface the workspace's parallel planning
//! engine uses — all running on a **persistent process-global worker
//! pool** ([`ThreadPool`], see [`pool`]). Earlier revisions spawned
//! fresh OS threads per call; now threads are spawned exactly once
//! (lazily, on first use) and every later parallel region only enqueues
//! jobs, which [`global_pool_stats`] makes observable. Work distribution
//! is **work stealing**: every worker (and every thread inside a
//! [`scope`]) owns a lock-free Chase-Lev deque it pushes and pops LIFO,
//! idle threads steal FIFO from the cold end by CAS, and a shared
//! mutex-protected injector catches submissions from unregistered
//! threads — see [`pool`] for the full protocol, the memory-ordering
//! contract, and the per-path counters. Results are written into
//! pre-assigned slots, so `collect()` is deterministic regardless of
//! which thread runs which job. See `vendor/README.md` for scope and
//! caveats.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

pub mod bench_support;
pub mod pool;

pub use pool::{PoolStats, ThreadPool};

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// Number of worker threads a parallel operation will use at most — the
/// size of the global pool (one worker per available core). First call
/// initialises the pool.
pub fn current_num_threads() -> usize {
    ThreadPool::global().thread_count()
}

/// Lifetime activity counters of the global pool (initialising it if
/// needed). `threads_spawned` is constant after initialisation — the
/// planning stack's tests assert repeated batches spawn zero new OS
/// threads — while `jobs_executed` grows with every parallel region.
pub fn global_pool_stats() -> PoolStats {
    ThreadPool::global().stats()
}

/// Queues `f` for execution on the global pool, returning immediately.
/// Panics in `f` are swallowed (detached-thread semantics).
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    ThreadPool::global().inject(Box::new(f));
}

/// Runs both closures, potentially in parallel (the second as a pool
/// job), returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    let ra = scope(|s| {
        s.spawn(|_| {
            *rb.lock().expect("join result poisoned") = Some(b());
        });
        a()
    });
    let rb = rb
        .into_inner()
        .expect("join result poisoned")
        .expect("scope waited for the spawned half");
    (ra, rb)
}

/// Book-keeping shared by a scope and its in-flight jobs.
struct ScopeState {
    sync: Mutex<ScopeSync>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
}

struct ScopeSync {
    /// Spawned jobs not yet finished.
    pending: usize,
    /// First panic payload captured from a job, if any.
    panic: Option<Box<dyn Any + Send>>,
}

impl ScopeState {
    fn new() -> Arc<Self> {
        Arc::new(ScopeState {
            sync: Mutex::new(ScopeSync {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        })
    }

    /// Records one job completion (with an optional captured panic).
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut sync = self.sync.lock().expect("scope state poisoned");
        if let Some(payload) = panic {
            sync.panic.get_or_insert(payload);
        }
        sync.pending -= 1;
        let finished = sync.pending == 0;
        drop(sync);
        if finished {
            self.done.notify_all();
        }
    }
}

/// A scope in which spawned tasks run on the global pool and are
/// guaranteed to finish before the scope returns.
pub struct Scope<'scope, 'env: 'scope> {
    state: Arc<ScopeState>,
    pool: &'static ThreadPool,
    _scope: PhantomData<&'scope mut &'scope ()>,
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

/// Erases the `'scope` lifetime bound so a scoped job can sit in the
/// 'static pool queue.
///
/// SAFETY argument (the crate's only unsafe outside the deque internals
/// in [`pool`]): every erased job is
/// registered in its scope's `pending` count *before* injection, and
/// [`scope`] does not return — not even when unwinding — until `pending`
/// is zero, i.e. until the job has finished running. The borrows the job
/// captures therefore strictly outlive its execution; the transmute
/// changes only the lifetime bound of an otherwise identical fat
/// pointer. This is the same contract `std::thread::scope` and real
/// rayon implement internally.
#[allow(unsafe_code)]
fn erase_job<'scope>(job: Box<dyn FnOnce() + Send + 'scope>) -> pool::Job {
    // SAFETY: see the function docs — the owning scope blocks until the
    // job has executed, so captured borrows outlive the erased lifetime.
    unsafe {
        std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send + 'static>>(
            job,
        )
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task on the scope; it runs on a pool worker (or on the
    /// scope's own thread while it waits) and may itself spawn further
    /// tasks. A panicking task is captured and re-raised when the scope
    /// closes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let state = Arc::clone(&self.state);
        let pool = self.pool;
        self.state
            .sync
            .lock()
            .expect("scope state poisoned")
            .pending += 1;
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope {
                state: Arc::clone(&state),
                pool,
                _scope: PhantomData,
                _env: PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
            state.complete(result.err());
        });
        pool.inject(erase_job(job));
    }
}

/// Creates a scope whose spawned tasks all complete before `scope`
/// returns. Tasks execute on the persistent global pool; the calling
/// thread helps run queued jobs while it waits, so progress is
/// guaranteed even on a single-core host or from within a pool worker.
///
/// For the duration of the scope the calling thread is registered as a
/// pool participant: its spawns land on a thread-local deque it pops
/// LIFO while helping, and idle pool workers steal from that deque —
/// so work fans out from the caller without touching the shared
/// injector.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let pool = ThreadPool::global();
    // Registered for the whole scope (drop-guard): spawns from this
    // thread go to its stealable local deque.
    let _caller = pool.register_caller();
    let state = ScopeState::new();
    let scope = Scope {
        state: Arc::clone(&state),
        pool,
        _scope: PhantomData,
        _env: PhantomData,
    };
    // Run the scope body; even if it panics, all spawned jobs must
    // finish before we unwind past the borrowed environment.
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    pool.wait_while_helping(
        || state.sync.lock().expect("scope state poisoned").pending == 0,
        |cap| {
            let sync = state.sync.lock().expect("scope state poisoned");
            if sync.pending > 0 {
                let _ = state
                    .done
                    .wait_timeout(sync, cap)
                    .expect("scope state poisoned");
            }
        },
    );
    let job_panic = state
        .sync
        .lock()
        .expect("scope state poisoned")
        .panic
        .take();
    match (result, job_panic) {
        (Ok(value), None) => value,
        (Err(payload), _) | (Ok(_), Some(payload)) => resume_unwind(payload),
    }
}

/// Order-preserving parallel map over owned items with an explicit cap
/// on concurrent worker jobs: `workers` loop-jobs (capped by the item
/// count; `<= 1` runs inline on the caller) each pull the next
/// `(index, item)` from a shared queue and write `f(item)` into slot
/// `index`, so output order — and, for per-item deterministic `f`,
/// every output value — is independent of thread interleaving.
///
/// Not part of real rayon's API (which caps via pool construction);
/// exposed so workspace consumers that throttle per *call* — the
/// planning stack's `shard_map` — share this one scheduling loop
/// instead of duplicating it.
pub fn par_map_with<T: Send, R: Send>(
    items: Vec<T>,
    workers: usize,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let input: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let output: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let run = |_: &Scope<'_, '_>| loop {
        let job = input.lock().expect("rayon queue poisoned").pop_front();
        match job {
            Some((i, item)) => {
                *output[i].lock().expect("rayon slot poisoned") = Some(f(item));
            }
            None => break,
        }
    };
    scope(|s| {
        for _ in 0..workers {
            s.spawn(run);
        }
    });
    output
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Order-preserving parallel map over owned items with **one scope job
/// per item**: slot `i` is written by its own spawned job, and the
/// pool's work stealing does all load balancing — no shared input queue,
/// no fixed worker loops. The right granularity when every item is
/// coarse (milliseconds, not microseconds): a thread stuck on a slow
/// item never holds back the queue of remaining ones, because the
/// remaining ones sit on stealable deques instead of behind a lock.
///
/// Like [`par_map_with`] this is not part of real rayon's API; it is the
/// per-item granularity the planning stack's `shard_map` selects for
/// coarse shards. Single-item (or empty) inputs run inline. Output order
/// and values are interleaving-independent for per-item deterministic
/// `f`, exactly as with [`par_map_with`].
pub fn par_map_items<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let output: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let f = &f;
    scope(|s| {
        for (slot, item) in output.iter().zip(items) {
            s.spawn(move |_| {
                *slot.lock().expect("rayon slot poisoned") = Some(f(item));
            });
        }
    });
    output
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("rayon slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Order-preserving parallel map over owned items, one worker job per
/// pool thread ([`par_map_with`] with the automatic cap).
fn par_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    par_map_with(items, current_num_threads(), f)
}

/// An eagerly evaluated parallel iterator.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map(self.items, f);
    }

    /// Collects the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion into a parallel iterator, by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send;
    /// Creates a parallel iterator over references to `self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{global_pool_stats, join, par_map_items, par_map_with, scope};

    #[test]
    fn per_item_map_matches_looped_map() {
        let items: Vec<usize> = (0..67).collect();
        let per_item = par_map_items(items.clone(), |x| x * x + 1);
        let looped = par_map_with(items.clone(), 4, |x| x * x + 1);
        let inline: Vec<usize> = items.into_iter().map(|x| x * x + 1).collect();
        assert_eq!(per_item, inline, "per-item jobs preserve slot order");
        assert_eq!(looped, inline);
    }

    #[test]
    fn per_item_map_handles_tiny_inputs_inline() {
        let before = global_pool_stats();
        assert_eq!(
            par_map_items(Vec::<usize>::new(), |x| x),
            Vec::<usize>::new()
        );
        assert_eq!(par_map_items(vec![7usize], |x| x * 2), vec![14]);
        let after = global_pool_stats();
        assert_eq!(
            before.jobs_executed, after.jobs_executed,
            "tiny inputs run inline without touching the pool"
        );
    }

    #[test]
    fn map_preserves_order() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, (0..100usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn scoped_spawns_complete_before_return() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 8);
    }

    #[test]
    fn scoped_tasks_borrow_stack_data() {
        let data = [1u64, 2, 3, 4, 5];
        let total = std::sync::Mutex::new(0u64);
        scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    *total.lock().unwrap() += chunk.iter().sum::<u64>();
                });
            }
        });
        assert_eq!(total.into_inner().unwrap(), 15);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // More concurrent scopes than pool workers: waiting callers must
        // help drain the queue.
        let hits = std::sync::atomic::AtomicUsize::new(0);
        scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|_| {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|_| {
                                hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("scoped job exploded"));
            })
        });
        assert!(result.is_err(), "job panic must reach the scope caller");
        // The pool must keep working after a captured panic.
        let doubled: Vec<usize> = (0..8usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..8usize).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pool_threads_are_spawned_once() {
        let before = global_pool_stats();
        for _ in 0..3 {
            let _: Vec<usize> = (0..32usize).into_par_iter().map(|x| x + 1).collect();
        }
        let after = global_pool_stats();
        assert_eq!(
            before.threads_spawned, after.threads_spawned,
            "parallel regions must reuse the persistent pool"
        );
        assert_eq!(after.threads as u64, after.threads_spawned);
    }
}

//! The persistent work-stealing worker pool behind this crate's
//! `scope`/`spawn`/`join`.
//!
//! Mirrors the executor/scheduler split of real rayon (and of Block-STM
//! style executors): a fixed set of long-lived worker threads execute
//! type-erased jobs. The pool is created **once** per process (lazily,
//! on first use) and its threads never exit, so repeated parallel
//! regions pay zero thread-spawn cost after initialisation — observable
//! through [`ThreadPool::stats`]: `threads_spawned` stays constant while
//! `jobs_executed` grows.
//!
//! ## Work distribution: per-worker deques + injector overflow
//!
//! Earlier revisions used a single mutex-protected injector queue, which
//! serialises every push and pop on one lock. Work distribution now
//! follows the crossbeam/rayon shape:
//!
//! * every worker thread owns a **local deque**; jobs spawned *from* a
//!   pool thread (or from a thread inside a [`crate::scope`], which
//!   registers a transient *guest* deque) are pushed to that thread's
//!   own deque and popped **LIFO** — the cache-hot order;
//! * idle threads first drain the shared **injector** (jobs submitted
//!   by threads with no registered deque), then **steal FIFO** from the
//!   *cold* end of other threads' deques, round-robin from a rotating
//!   start cursor so victims spread;
//! * blocked scope callers *help*: while a scope waits for its spawned
//!   jobs it pops/steals and runs jobs itself, so nested parallel
//!   regions cannot deadlock the fixed-size pool and a 1-core host
//!   still makes progress.
//!
//! Each distribution path has a dedicated counter (`local_hits`,
//! `injector_hits`, `steals` in [`PoolStats`]); at quiescence their sum
//! equals `jobs_executed`, which the pool stress suite asserts.
//!
//! ## The deques are lock-free Chase-Lev buffers
//!
//! Each `WorkerDeque` (crate-private) is a Chase-Lev deque (Chase & Lev, *Dynamic
//! Circular Work-Stealing Deque*; orderings per Lê et al., *Correct and
//! Efficient Work-Stealing for Weak Memory Models*): a growable circular
//! buffer indexed by two atomic counters, `bottom` (the hot end, touched
//! only by the owner) and `top` (the cold end, advanced by CAS). The
//! owner pushes and pops LIFO at `bottom` with **no CAS on the fast
//! path** — a CAS appears only when popping the last element, where the
//! owner races thieves; thieves CAS `top` forward to claim the oldest
//! job. The memory-ordering contract is documented on `WorkerDeque`.
//! The shared **injector stays a mutex-protected queue** on purpose: it
//! is the cold overflow path for unregistered submitters, touched once
//! per external submission rather than once per job, so a lock there
//! costs nothing measurable while keeping multi-producer FIFO semantics
//! trivially correct.
//!
//! This module is the one place in the workspace that needs `unsafe`
//! beyond the scope-lifetime erasure in `lib.rs`: jobs park as raw
//! pointers in atomic slots while ownership passes from pusher to
//! popper/thief. Every `unsafe` block carries its SAFETY argument, and
//! the deque's single-owner contract is spelled out on each owner-side
//! method.
//!
//! Results stay deterministic regardless of who runs a job: all
//! workspace consumers write into pre-assigned slots, so stealing
//! changes *where* a job runs, never *what* it computes.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A type-erased unit of pool work. Public only so the microbench
/// surface in [`crate::bench_support`] can push production-shaped jobs;
/// the emulated rayon API never exposes it.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing a pool's lifetime activity.
///
/// `threads_spawned` is the total number of OS threads the pool has ever
/// created; for the process-global pool it is set once at initialisation
/// and never grows again — the property the planning stack's reuse tests
/// assert. `local_hits + injector_hits + steals` equals `jobs_executed`
/// once the pool is quiescent: every executed job was taken from exactly
/// one of the three sources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoolStats {
    /// Worker threads serving the pool.
    pub threads: usize,
    /// OS threads spawned over the pool's lifetime.
    pub threads_spawned: u64,
    /// Jobs executed so far (by workers or by helping callers).
    pub jobs_executed: u64,
    /// Jobs a thread popped from its **own** deque (LIFO, cache-hot).
    pub local_hits: u64,
    /// Jobs taken from the shared overflow injector (FIFO).
    pub injector_hits: u64,
    /// Jobs **stolen** from another thread's deque (FIFO, cold end).
    pub steals: u64,
}

impl PoolStats {
    /// The activity between `baseline` (an earlier snapshot of the same
    /// pool) and `self`: every lifetime counter becomes the delta, while
    /// `threads` — a gauge, not a counter — keeps its current value.
    ///
    /// This is how per-phase attribution works against the process-global
    /// pool: snapshot before a phase, snapshot after, and `since` the
    /// two. Counters are monotonic, so the subtraction saturates only if
    /// the snapshots come from different pools (or are swapped).
    #[must_use]
    pub fn since(&self, baseline: &PoolStats) -> PoolStats {
        PoolStats {
            threads: self.threads,
            threads_spawned: self
                .threads_spawned
                .saturating_sub(baseline.threads_spawned),
            jobs_executed: self.jobs_executed.saturating_sub(baseline.jobs_executed),
            local_hits: self.local_hits.saturating_sub(baseline.local_hits),
            injector_hits: self.injector_hits.saturating_sub(baseline.injector_hits),
            steals: self.steals.saturating_sub(baseline.steals),
        }
    }
}

/// Initial circular-buffer capacity of a [`WorkerDeque`]; must be a
/// power of two so index wrapping is a mask.
const INITIAL_DEQUE_CAPACITY: usize = 64;

/// A heap cell a [`Job`] is parked in while it sits in a deque slot: a
/// `Job` is a fat `Box<dyn FnOnce>` pointer, so it is parked in one
/// more (thin-pointered) allocation to fit an `AtomicPtr` slot. The
/// `MaybeUninit` is what lets the owner *recycle* these cells instead
/// of round-tripping the allocator on every push/pop (see
/// [`WorkerDeque::shells`]): an emptied shell stays allocated, its
/// content logically moved out.
type Shell = MaybeUninit<Job>;

/// The circular slot array of a [`WorkerDeque`]. Slots hold raw
/// pointers to heap-parked jobs ([`Shell`]s).
/// Indices are *logical* — monotonically increasing `isize` values,
/// wrapped by the power-of-two mask — so a slot's content is only
/// meaningful for indices in the owner's live `top..bottom` window.
struct DequeBuffer {
    slots: Box<[AtomicPtr<Shell>]>,
}

impl DequeBuffer {
    fn new(capacity: usize) -> DequeBuffer {
        debug_assert!(capacity.is_power_of_two());
        DequeBuffer {
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The slot backing logical index `index`. Only called with
    /// non-negative indices (the owner restores `bottom` before any
    /// slot access when a speculative decrement went below `top`).
    fn slot(&self, index: isize) -> &AtomicPtr<Shell> {
        &self.slots[index as usize & (self.slots.len() - 1)]
    }
}

/// One thread's stealable job deque — a lock-free Chase-Lev deque.
///
/// The owner pushes and pops at `bottom` (LIFO, the cache-hot end);
/// thieves CAS `top` forward (FIFO, the cold end), so the oldest work
/// migrates first, exactly like crossbeam's worker/stealer split.
///
/// ## Single-owner contract
///
/// [`push`](Self::push), [`pop_local`](Self::pop_local), and
/// [`drain`](Self::drain) must only be called from the thread the deque
/// is registered to (its worker thread, or the guest thread that
/// created it — see `LocalQueue`): they manipulate `bottom` and the
/// buffer without synchronising against a second owner. Every call site
/// reaches the deque through the thread-local `LOCAL` registration, so
/// the contract holds by construction. [`steal`](Self::steal) is the
/// only cross-thread entry point.
///
/// ## Memory-ordering contract (after Lê et al.)
///
/// * `push`: write the slot `Relaxed`, then publish with a `Release`
///   store of `bottom` — a thief that `Acquire`-loads the new `bottom`
///   sees the slot write.
/// * `pop_local`: speculatively decrement `bottom` (`Relaxed`), then a
///   `SeqCst` fence before reading `top`. The fence pairs with the one
///   in `steal`: either the thief sees the decremented `bottom` and
///   backs off, or the owner sees the advanced `top` and takes the
///   last-element CAS path.
/// * last element (owner) / every element (thief): claim by `SeqCst`
///   CAS on `top`; exactly one contender wins, and the winner takes
///   ownership of the parked job.
/// * buffer growth: the owner copies the live window into a buffer of
///   twice the capacity and publishes it with a `Release` swap; thieves
///   `Acquire`-load the buffer pointer *after* `Acquire`-loading `top`,
///   and a successful CAS on `top` proves the slot they read from the
///   (possibly stale) buffer was still the live one. Retired buffers
///   are only freed when the deque drops, so a lagging thief never
///   reads freed memory — no epoch/hazard machinery needed, and the
///   retained memory is bounded by twice the largest buffer (the sum of
///   the smaller powers of two).
pub(crate) struct WorkerDeque {
    /// Hot end: next logical slot the owner will push into. Only the
    /// owner writes it (a speculative decrement in `pop_local`, restored
    /// on the empty/lost paths).
    bottom: AtomicIsize,
    /// Cold end: logical index of the oldest queued job; advanced by
    /// the claiming CAS of thieves (and of the owner, for the last
    /// element).
    top: AtomicIsize,
    /// Current circular buffer; replaced (never mutated in place, other
    /// than slot stores) on growth.
    buffer: AtomicPtr<DequeBuffer>,
    /// Buffers retired by growth, freed on drop (see the ordering
    /// contract above). A mutex is fine here: growth is rare and
    /// owner-side only.
    retired: Mutex<Vec<*mut DequeBuffer>>,
    /// Owner-local freelist of emptied [`Shell`] allocations. `push`
    /// reuses one instead of allocating; `pop_local` returns the shell
    /// it just emptied. At steady state the owner's push/pop hot path
    /// therefore performs **zero** allocator calls — only stolen jobs
    /// free their shell (on the thief's thread). Plain `UnsafeCell`,
    /// not a lock: the single-owner contract already restricts `push`
    /// and `pop_local` to one thread, and no other method touches it
    /// (`drop` has `&mut self`).
    shells: UnsafeCell<Vec<*mut Shell>>,
}

// SAFETY: the raw buffer pointers make the type neither Send nor Sync
// automatically, but all shared access is synchronised: the live buffer
// is reached through atomics under the ordering contract above,
// `retired` is both mutex-guarded and only touched by the owner (grow)
// and by drop (exclusive `&mut self`), and `shells` is only touched by
// the owner thread (`push`/`pop_local`, per the single-owner contract)
// and by drop. Jobs are `Send` by the `Job` type alias.
#[allow(unsafe_code)]
unsafe impl Send for WorkerDeque {}
#[allow(unsafe_code)]
unsafe impl Sync for WorkerDeque {}

impl Default for WorkerDeque {
    fn default() -> WorkerDeque {
        WorkerDeque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Box::new(DequeBuffer::new(
                INITIAL_DEQUE_CAPACITY,
            )))),
            retired: Mutex::new(Vec::new()),
            shells: UnsafeCell::new(Vec::new()),
        }
    }
}

#[allow(unsafe_code)]
impl WorkerDeque {
    /// Owner-side push at the hot end. Lock-free and CAS-free.
    pub(crate) fn push(&self, job: Job) {
        // Park the job in a shell: `Job` is a fat pointer, the shell
        // makes it thin enough for an `AtomicPtr` slot. Ownership
        // conceptually moves into the deque here and comes back out in
        // exactly one of `pop_local`, `steal`, or `drop`.
        // SAFETY (freelist): owner-side call, per the single-owner
        // contract — no other thread touches `shells`.
        let parked = match unsafe { (*self.shells.get()).pop() } {
            // SAFETY: a recycled shell is a live allocation whose job
            // was moved out; `MaybeUninit` assignment never drops.
            Some(shell) => unsafe {
                *shell = MaybeUninit::new(job);
                shell
            },
            None => Box::into_raw(Box::new(MaybeUninit::new(job))),
        };
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: the buffer pointer is always valid (installed at
        // construction or by `grow`, freed only on drop), and the owner
        // is the only thread that replaces it.
        let mut buffer = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buffer.capacity() as isize {
            buffer = self.grow(buffer, t, b);
        }
        buffer.slot(b).store(parked, Ordering::Relaxed);
        // Publish: pairs with the Acquire load of `bottom` in `steal`.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-side pop at the hot end: newest job first. CAS-free except
    /// when taking the last element, where the owner races thieves.
    pub(crate) fn pop_local(&self) -> Option<Job> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: see `push` — valid until drop, only the owner swaps it.
        let buffer = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        // Speculatively claim the slot by lowering `bottom`…
        self.bottom.store(b, Ordering::Relaxed);
        // …and only then look at `top` (the SeqCst fence pairs with the
        // fence in `steal`: one total order decides who backs off).
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let parked = buffer.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last element: race thieves for it with the same CAS
                // they use. Win or lose, the deque ends empty with
                // `bottom == top == b + 1`.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    // A thief claimed it first and now owns the parked
                    // job; the speculative `bottom` decrement is undone.
                    return None;
                }
            }
            // SAFETY: we won the slot — either `top < b` (thieves can
            // never advance `top` past `bottom`, which we hold at `b`)
            // or the CAS above succeeded. The shell was parked by
            // `push` and its job is moved out exactly once, here; the
            // emptied shell goes back on the owner's freelist instead
            // of to the allocator (owner-side call, single-owner
            // contract).
            unsafe {
                let job = std::ptr::read(parked).assume_init();
                (*self.shells.get()).push(parked);
                Some(job)
            }
        } else {
            // Empty: undo the speculative decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side pop at the cold end: oldest job first. A thief that
    /// loses the claiming CAS reports `None` and simply moves to the
    /// next victim — the same non-blocking behaviour the old
    /// `try_lock`-based steal had.
    pub(crate) fn steal(&self) -> Option<Job> {
        let t = self.top.load(Ordering::Acquire);
        // Pairs with the fence in `pop_local` (see the contract above).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            // SAFETY: valid buffer (freed only on drop, and a deque is
            // never dropped while registered as stealable). The Acquire
            // load orders it after the `top` read; staleness is
            // tolerated because the claiming CAS below fails if the
            // window moved.
            let buffer = unsafe { &*self.buffer.load(Ordering::Acquire) };
            let parked = buffer.slot(t).load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS claimed logical index `t` for this
                // thief exclusively, and proves the slot read above was
                // from the live window (the owner had not recycled index
                // `t`: it only reuses a slot `capacity` indices later,
                // and `push` never catches up to an unclaimed `top`).
                // The thief cannot return the shell to the owner-local
                // freelist, so it frees it: dropping a
                // `Box<MaybeUninit<Job>>` releases the allocation
                // without dropping the (moved-out) job.
                return Some(unsafe {
                    let job = std::ptr::read(parked).assume_init();
                    drop(Box::from_raw(parked));
                    job
                });
            }
        }
        None
    }

    /// Empties the deque (used when a guest deregisters with detached
    /// jobs still queued; they move to the injector). Owner-side, but
    /// drains through [`steal`](Self::steal) so the jobs come out FIFO —
    /// the order the injector should see them in.
    fn drain(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        loop {
            if let Some(job) = self.steal() {
                jobs.push(job);
            } else if self.top.load(Ordering::SeqCst) >= self.bottom.load(Ordering::SeqCst) {
                // `steal` also returns None on a lost race; only an
                // actually-empty window ends the drain. The owner isn't
                // pushing (it is here), so emptiness is stable.
                return jobs;
            }
        }
    }

    /// Owner-side growth: double the capacity, copy the live window,
    /// publish, retire the old buffer.
    fn grow(&self, old: &DequeBuffer, top: isize, bottom: isize) -> &DequeBuffer {
        let grown = Box::new(DequeBuffer::new(old.capacity() * 2));
        for index in top..bottom {
            grown
                .slot(index)
                .store(old.slot(index).load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let grown = Box::into_raw(grown);
        // Release: a thief Acquire-loading the new pointer sees the
        // copied slots.
        let old = self.buffer.swap(grown, Ordering::Release);
        self.retired
            .lock()
            .expect("deque retired-buffer list poisoned")
            .push(old);
        // SAFETY: just installed above; freed only on drop.
        unsafe { &*grown }
    }
}

#[allow(unsafe_code)]
impl Drop for WorkerDeque {
    fn drop(&mut self) {
        // `&mut self`: no other thread can touch the deque any more.
        // Drop still-queued jobs (detached semantics: never-run payloads
        // are simply discarded), then free the live and retired buffers.
        while self.pop_local().is_some() {}
        // SAFETY: exclusive access; these pointers were created by
        // `Box::into_raw` in `Default::default`/`grow` and are freed
        // exactly once, here.
        unsafe {
            drop(Box::from_raw(*self.buffer.get_mut()));
            for retired in self.retired.get_mut().expect("poisoned").drain(..) {
                drop(Box::from_raw(retired));
            }
            // Freelist shells hold no job (each was moved out by
            // `pop_local`); freeing the `MaybeUninit` box drops nothing.
            for shell in self.shells.get_mut().drain(..) {
                drop(Box::from_raw(shell));
            }
        }
    }
}

/// The calling thread's registration with a pool, stored thread-locally.
struct LocalQueue {
    pool_id: u64,
    deque: Arc<WorkerDeque>,
    /// Nested registrations (a scope inside a scope) on this thread.
    depth: usize,
    /// Workers never deregister; guests do when `depth` returns to 0.
    permanent: bool,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalQueue>> = const { RefCell::new(None) };
}

/// Distinguishes pools so a worker of one pool entering a scope on the
/// global pool does not cross-post jobs.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

struct PoolShared {
    id: u64,
    /// Overflow queue for jobs submitted by unregistered threads.
    injector: Mutex<VecDeque<Job>>,
    /// Registry of stealable deques: one permanent entry per worker,
    /// plus transient guest deques of threads currently inside a scope.
    stealable: Mutex<Vec<Arc<WorkerDeque>>>,
    /// Rotates the steal starting point so thieves spread over victims.
    steal_cursor: AtomicUsize,
    /// Push epoch: bumped on every submission (SeqCst) so a worker that
    /// saw an empty pool can detect a push that raced with its decision
    /// to sleep (no lost wakeups) — see [`PoolShared::signal`].
    epoch: AtomicU64,
    /// Workers currently inside the sleep protocol. Gates the push
    /// path: a submitter only touches the sleep mutex when somebody
    /// might actually be asleep, so the busy-pool fast path is
    /// deque-lock + two atomics with no global lock.
    sleepers: AtomicUsize,
    /// Guards the sleep condvar (empty critical section on the push
    /// side; the lock acquisition orders pushes against a worker's
    /// epoch re-check → wait transition).
    sleep: Mutex<()>,
    /// Signalled when a job is pushed; idle workers wait on it.
    ready: Condvar,
    threads: usize,
    threads_spawned: AtomicU64,
    jobs_executed: AtomicU64,
    local_hits: AtomicU64,
    injector_hits: AtomicU64,
    steals: AtomicU64,
}

impl PoolShared {
    /// Finds the next job for the calling thread: own deque (LIFO) →
    /// injector (FIFO) → steal (FIFO from another deque). `local` is the
    /// caller's registered deque, if any.
    fn find_job(&self, local: Option<&Arc<WorkerDeque>>) -> Option<Job> {
        if let Some(deque) = local {
            if let Some(job) = deque.pop_local() {
                self.local_hits.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = self
            .injector
            .lock()
            .expect("pool injector poisoned")
            .pop_front()
        {
            self.injector_hits.fetch_add(1, Ordering::SeqCst);
            return Some(job);
        }
        let victims = self.stealable.lock().expect("pool registry poisoned");
        let n = victims.len();
        if n == 0 {
            return None;
        }
        let start = self.steal_cursor.fetch_add(1, Ordering::Relaxed) % n;
        for offset in 0..n {
            let victim = &victims[(start + offset) % n];
            if let Some(own) = local {
                if Arc::ptr_eq(victim, own) {
                    continue;
                }
            }
            if let Some(job) = victim.steal() {
                self.steals.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Announces new work: bumps the push epoch, then wakes one idle
    /// worker — but only touches the sleep mutex when a worker might be
    /// asleep, so concurrent submitters on a busy pool never serialise
    /// on a global lock.
    ///
    /// No lost wakeups: both the epoch bump here and the sleeper-count
    /// bump in [`worker_loop`] are SeqCst, so either the submitter sees
    /// `sleepers > 0` (and its empty lock/unlock of the sleep mutex
    /// orders it against the worker's epoch re-check → wait transition:
    /// the worker is pre-check and will see the new epoch, or already
    /// waiting and gets the notify), or the worker's sleeper-bump came
    /// later than this load, in which case its epoch re-check — later
    /// still — observes the bump and rescans instead of sleeping.
    fn signal(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.sleep.lock().expect("pool sleep lock poisoned"));
            self.ready.notify_one();
        }
    }

    /// The calling thread's registered deque for this pool, if any.
    fn local_deque(&self) -> Option<Arc<WorkerDeque>> {
        LOCAL.with(|slot| {
            slot.borrow()
                .as_ref()
                .filter(|lq| lq.pool_id == self.id)
                .map(|lq| Arc::clone(&lq.deque))
        })
    }
}

/// RAII registration of a scope-calling thread as a stealing/stealable
/// pool participant (see [`ThreadPool::register_caller`]).
pub(crate) struct CallerSlot {
    shared: Option<Arc<PoolShared>>,
}

impl Drop for CallerSlot {
    fn drop(&mut self) {
        let Some(shared) = self.shared.take() else {
            return;
        };
        let finished = LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            let lq = slot.as_mut().expect("caller slot dropped unregistered");
            debug_assert_eq!(lq.pool_id, shared.id);
            lq.depth -= 1;
            if lq.depth == 0 && !lq.permanent {
                Some(slot.take().expect("checked above").deque)
            } else {
                None
            }
        });
        if let Some(deque) = finished {
            shared
                .stealable
                .lock()
                .expect("pool registry poisoned")
                .retain(|d| !Arc::ptr_eq(d, &deque));
            // Detached `spawn` jobs queued on the guest deque outlive the
            // scope; hand them to the injector so workers still run them.
            let orphans = deque.drain();
            if !orphans.is_empty() {
                let mut injector = shared.injector.lock().expect("pool injector poisoned");
                injector.extend(orphans);
                drop(injector);
                shared.signal();
            }
        }
    }
}

/// A persistent pool of worker threads executing injected jobs.
///
/// Use [`ThreadPool::global`] for the lazily-initialised process-global
/// pool that `scope`, `spawn`, and `join` run on; constructing private
/// pools is possible but only the global one backs the free functions.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.shared.threads)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` detached worker threads (at least
    /// one). The threads live until process exit.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            stealable: Mutex::new(Vec::with_capacity(threads)),
            steal_cursor: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            ready: Condvar::new(),
            threads,
            threads_spawned: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
            injector_hits: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        for i in 0..threads {
            let worker_shared = Arc::clone(&shared);
            let deque = Arc::new(WorkerDeque::default());
            shared
                .stealable
                .lock()
                .expect("pool registry poisoned")
                .push(Arc::clone(&deque));
            shared.threads_spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("rayon-stub-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared, deque))
                .expect("spawn pool worker");
        }
        ThreadPool { shared }
    }

    /// The lazily-initialised process-global pool. Sized by the
    /// `QRM_POOL_THREADS` environment variable when set to a positive
    /// integer (the hook CI's multi-worker job uses to exercise real
    /// parallelism on small runners), otherwise to
    /// `available_parallelism`. The first caller pays the one-time
    /// thread-spawn cost; every later parallel region reuses the same
    /// workers.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("QRM_POOL_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                });
            ThreadPool::new(threads)
        })
    }

    /// Number of worker threads serving the pool.
    pub fn thread_count(&self) -> usize {
        self.shared.threads
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.shared.threads,
            threads_spawned: self.shared.threads_spawned.load(Ordering::Relaxed),
            jobs_executed: self.shared.jobs_executed.load(Ordering::SeqCst),
            local_hits: self.shared.local_hits.load(Ordering::SeqCst),
            injector_hits: self.shared.injector_hits.load(Ordering::SeqCst),
            steals: self.shared.steals.load(Ordering::SeqCst),
        }
    }

    /// Queues a job: onto the calling thread's own deque when the
    /// thread is a worker of (or scope guest on) this pool — the LIFO
    /// fast path — otherwise onto the shared injector.
    pub(crate) fn inject(&self, job: Job) {
        match self.shared.local_deque() {
            Some(deque) => deque.push(job),
            None => self
                .shared
                .injector
                .lock()
                .expect("pool injector poisoned")
                .push_back(job),
        }
        self.shared.signal();
    }

    /// Registers the calling thread as a pool participant for the
    /// duration of the returned guard (a [`crate::scope`] call): its
    /// spawns go to a thread-local deque that pool workers can steal
    /// from, and its help-loop pops that deque LIFO first. Nested calls
    /// on one thread share a single registration; worker threads (and
    /// threads registered with a *different* pool) are left as they are.
    pub(crate) fn register_caller(&self) -> CallerSlot {
        let shared = LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            match slot.as_mut() {
                Some(lq) if lq.pool_id == self.shared.id => {
                    lq.depth += 1;
                    Some(Arc::clone(&self.shared))
                }
                // A worker of another pool: don't disturb its deque; the
                // thread falls back to injector submission.
                Some(_) => None,
                None => {
                    let deque = Arc::new(WorkerDeque::default());
                    self.shared
                        .stealable
                        .lock()
                        .expect("pool registry poisoned")
                        .push(Arc::clone(&deque));
                    *slot = Some(LocalQueue {
                        pool_id: self.shared.id,
                        deque,
                        depth: 1,
                        permanent: false,
                    });
                    Some(Arc::clone(&self.shared))
                }
            }
        });
        CallerSlot { shared }
    }

    /// Runs one job on the calling thread, counting it in the stats.
    /// Jobs carry their own panic capture (see `Scope::spawn`), but the
    /// pool guards anyway so a panicking bare [`crate::spawn`] job can
    /// never kill a shared worker (detached-thread semantics: the
    /// payload is dropped).
    pub(crate) fn run_job(&self, job: Job) {
        self.shared.jobs_executed.fetch_add(1, Ordering::SeqCst);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }

    /// Blocks until `done()` reports true, running queued jobs while
    /// waiting (own deque first, then injector, then stealing).
    /// `wait()` must block until either a job is queued or the
    /// condition may have changed; the 1 ms cap keeps the caller
    /// responsive to jobs queued while it slept on a foreign condvar.
    pub(crate) fn wait_while_helping(
        &self,
        mut done: impl FnMut() -> bool,
        mut wait: impl FnMut(Duration),
    ) {
        let local = self.shared.local_deque();
        loop {
            if done() {
                return;
            }
            if let Some(job) = self.shared.find_job(local.as_ref()) {
                self.run_job(job);
                continue;
            }
            wait(Duration::from_millis(1));
        }
    }
}

fn worker_loop(shared: &Arc<PoolShared>, deque: Arc<WorkerDeque>) {
    LOCAL.with(|slot| {
        *slot.borrow_mut() = Some(LocalQueue {
            pool_id: shared.id,
            deque: Arc::clone(&deque),
            depth: 0,
            permanent: true,
        });
    });
    loop {
        // Epoch-read before the scan: any push after this point bumps
        // the epoch, so the re-check inside the sleep protocol below
        // detects it and rescans instead of missing the wakeup.
        let epoch = shared.epoch.load(Ordering::SeqCst);
        if let Some(job) = shared.find_job(Some(&deque)) {
            shared.jobs_executed.fetch_add(1, Ordering::SeqCst);
            // Jobs capture their own panics (scope jobs stash the payload
            // for the owning scope); a stray panic from a bare `spawn`
            // job is swallowed so the worker survives — same as a
            // detached thread.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            continue;
        }
        // Sleep protocol (see `PoolShared::signal` for the pairing):
        // advertise as a sleeper, then re-check the epoch *under the
        // sleep lock* before waiting.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = shared.sleep.lock().expect("pool sleep lock poisoned");
        if shared.epoch.load(Ordering::SeqCst) == epoch {
            drop(shared.ready.wait(guard).expect("pool sleep lock poisoned"));
        } else {
            drop(guard);
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    //! Counter-accounting tests on **private** pools: unlike the global
    //! pool, a private pool is untouched by concurrently running tests,
    //! so exact equalities on its counters are race-free.

    use super::*;
    use std::sync::atomic::AtomicBool;

    fn wait_for_jobs(pool: &ThreadPool, jobs: u64) {
        while pool.stats().jobs_executed < jobs {
            std::thread::yield_now();
        }
    }

    #[test]
    fn worker_spawns_hit_its_local_deque() {
        // A job running on the single worker injects three more: they
        // land on the worker's own deque (LIFO fast path) and, with no
        // other thread in the pool, must all be popped locally.
        let pool = Arc::new(ThreadPool::new(1));
        let inner = Arc::clone(&pool);
        pool.inject(Box::new(move || {
            for _ in 0..3 {
                inner.inject(Box::new(|| {}));
            }
        }));
        wait_for_jobs(&pool, 4);
        let stats = pool.stats();
        assert_eq!(stats.injector_hits, 1, "the seed job came via the injector");
        assert_eq!(
            stats.local_hits, 3,
            "worker-spawned jobs are popped LIFO locally"
        );
        assert_eq!(stats.steals, 0, "a lone worker has nobody to steal from");
        assert_eq!(
            stats.local_hits + stats.injector_hits + stats.steals,
            stats.jobs_executed,
            "every executed job was taken from exactly one source"
        );
    }

    #[test]
    fn blocked_owner_forces_a_steal() {
        // Worker 1 runs a job that spawns a follower onto its own deque
        // and then spins until the follower has run. Worker 1 cannot run
        // it (it is busy spinning), so worker 2 **must** steal it — the
        // deterministic steal-counter check.
        let pool = Arc::new(ThreadPool::new(2));
        let done = Arc::new(AtomicBool::new(false));
        let inner_pool = Arc::clone(&pool);
        let inner_done = Arc::clone(&done);
        pool.inject(Box::new(move || {
            let flag = Arc::clone(&inner_done);
            inner_pool.inject(Box::new(move || {
                flag.store(true, Ordering::Release);
            }));
            while !inner_done.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }));
        wait_for_jobs(&pool, 2);
        let stats = pool.stats();
        assert_eq!(stats.steals, 1, "the follower can only run via a steal");
        assert_eq!(stats.injector_hits, 1);
        assert_eq!(
            stats.local_hits + stats.injector_hits + stats.steals,
            stats.jobs_executed
        );
        assert_eq!(stats.threads_spawned, 2, "stealing spawned no threads");
    }

    #[test]
    fn empty_deque_yields_to_neither_owner_nor_thief() {
        // Empty-steal race shape: owner pops and thief steals on an
        // empty deque, interleaved with pushes that are consumed again
        // immediately. The speculative bottom decrement in `pop_local`
        // must always be undone, so emptiness is stable and no index
        // drifts.
        let deque = Arc::new(WorkerDeque::default());
        assert!(deque.pop_local().is_none());
        assert!(deque.steal().is_none());
        for _ in 0..100 {
            assert!(deque.pop_local().is_none(), "empty pop must stay empty");
            assert!(deque.steal().is_none(), "empty steal must stay empty");
        }
        let ran = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let r = Arc::clone(&ran);
            deque.push(Box::new(move || {
                r.fetch_add(1, Ordering::SeqCst);
            }));
            deque.pop_local().expect("just pushed")();
            assert!(deque.pop_local().is_none());
            assert!(deque.steal().is_none());
        }
        assert_eq!(ran.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn buffer_grows_under_concurrent_steals_without_losing_jobs() {
        // Push far past the initial capacity while a thief steals
        // concurrently, forcing `grow` to race in-flight steals. Every
        // job must run exactly once: none lost with a retired buffer,
        // none double-claimed across the buffer swap.
        const JOBS: u64 = 10 * INITIAL_DEQUE_CAPACITY as u64;
        let deque = Arc::new(WorkerDeque::default());
        let ran = Arc::new(AtomicU64::new(0));
        let done_pushing = Arc::new(AtomicBool::new(false));

        let thief = {
            let deque = Arc::clone(&deque);
            let done = Arc::clone(&done_pushing);
            std::thread::spawn(move || {
                let mut stolen = 0u64;
                loop {
                    if let Some(job) = deque.steal() {
                        job();
                        stolen += 1;
                    } else if done.load(Ordering::SeqCst) {
                        match deque.steal() {
                            Some(job) => {
                                job();
                                stolen += 1;
                            }
                            None => return stolen,
                        }
                    }
                }
            })
        };

        // Owner: push everything, popping only occasionally so the live
        // window stays wide and growth happens while the thief works.
        let mut popped = 0u64;
        for i in 0..JOBS {
            let r = Arc::clone(&ran);
            deque.push(Box::new(move || {
                r.fetch_add(1, Ordering::SeqCst);
            }));
            if i % 16 == 0 {
                if let Some(job) = deque.pop_local() {
                    job();
                    popped += 1;
                }
            }
        }
        done_pushing.store(true, Ordering::SeqCst);
        // Owner helps finish the backlog, racing the thief for the tail.
        while let Some(job) = deque.pop_local() {
            job();
            popped += 1;
        }
        let stolen = thief.join().expect("thief panicked");
        // The thief may still have been mid-steal when the owner saw
        // empty; wait for its count to land, then check exact totals.
        assert_eq!(
            ran.load(Ordering::SeqCst),
            JOBS,
            "every job ran exactly once across the buffer growths"
        );
        assert_eq!(popped + stolen, JOBS, "every job was claimed exactly once");
        assert!(
            deque.retired.lock().unwrap().len() >= 3,
            "the test must actually have grown the buffer several times"
        );
        assert!(deque.pop_local().is_none());
    }

    #[test]
    fn last_element_is_claimed_exactly_once_under_owner_thief_races() {
        // Owner-vs-thief last-element interleaving, brute-forced: one
        // element in the deque, both sides try to take it at once. The
        // CAS on `top` must hand it to exactly one of them, every time.
        let deque = Arc::new(WorkerDeque::default());
        let ran = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        const ROUNDS: u64 = 2_000;

        let thief = {
            let deque = Arc::clone(&deque);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut stolen = 0u64;
                for _ in 0..ROUNDS {
                    barrier.wait();
                    if let Some(job) = deque.steal() {
                        job();
                        stolen += 1;
                    }
                    barrier.wait();
                }
                stolen
            })
        };

        let mut popped = 0u64;
        for _ in 0..ROUNDS {
            let r = Arc::clone(&ran);
            deque.push(Box::new(move || {
                r.fetch_add(1, Ordering::SeqCst);
            }));
            barrier.wait();
            if let Some(job) = deque.pop_local() {
                job();
                popped += 1;
            }
            // Synchronise before the next round so a slow thief can
            // never see two elements queued.
            barrier.wait();
            // Whoever won, the deque must now be empty.
            assert!(deque.steal().is_none());
        }
        let stolen = thief.join().expect("thief panicked");
        assert_eq!(popped + stolen, ROUNDS, "each element claimed exactly once");
        assert_eq!(ran.load(Ordering::SeqCst), ROUNDS);
        assert!(popped > 0, "owner should win at least sometimes");
    }

    #[test]
    fn dropping_a_deque_frees_queued_jobs_and_retired_buffers() {
        // Jobs still queued at drop are discarded (detached semantics)
        // but their payloads must be freed — including payloads living
        // in slots that were copied across a growth.
        let deque = WorkerDeque::default();
        let payload = Arc::new(());
        for _ in 0..3 * INITIAL_DEQUE_CAPACITY {
            let p = Arc::clone(&payload);
            deque.push(Box::new(move || {
                let _ = &p;
            }));
        }
        assert!(!deque.retired.lock().unwrap().is_empty());
        drop(deque);
        assert_eq!(
            Arc::strong_count(&payload),
            1,
            "all queued job closures were dropped"
        );
    }

    #[test]
    fn global_pool_honours_env_or_parallelism() {
        let threads = ThreadPool::global().thread_count();
        let expected = std::env::var("QRM_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        assert_eq!(threads, expected);
    }
}

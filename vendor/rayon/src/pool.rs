//! The persistent work-stealing worker pool behind this crate's
//! `scope`/`spawn`/`join`.
//!
//! Mirrors the executor/scheduler split of real rayon (and of Block-STM
//! style executors): a fixed set of long-lived worker threads execute
//! type-erased jobs. The pool is created **once** per process (lazily,
//! on first use) and its threads never exit, so repeated parallel
//! regions pay zero thread-spawn cost after initialisation — observable
//! through [`ThreadPool::stats`]: `threads_spawned` stays constant while
//! `jobs_executed` grows.
//!
//! ## Work distribution: per-worker deques + injector overflow
//!
//! Earlier revisions used a single mutex-protected injector queue, which
//! serialises every push and pop on one lock. Work distribution now
//! follows the crossbeam/rayon shape:
//!
//! * every worker thread owns a **local deque**; jobs spawned *from* a
//!   pool thread (or from a thread inside a [`crate::scope`], which
//!   registers a transient *guest* deque) are pushed to that thread's
//!   own deque and popped **LIFO** — the cache-hot order;
//! * idle threads first drain the shared **injector** (jobs submitted
//!   by threads with no registered deque), then **steal FIFO** from the
//!   *cold* end of other threads' deques, round-robin from a rotating
//!   start cursor so victims spread;
//! * blocked scope callers *help*: while a scope waits for its spawned
//!   jobs it pops/steals and runs jobs itself, so nested parallel
//!   regions cannot deadlock the fixed-size pool and a 1-core host
//!   still makes progress.
//!
//! Each distribution path has a dedicated counter (`local_hits`,
//! `injector_hits`, `steals` in [`PoolStats`]); at quiescence their sum
//! equals `jobs_executed`, which the pool stress suite asserts. The
//! deques themselves are small mutex-protected `VecDeque`s rather than
//! lock-free Chase-Lev buffers — per-deque locks already remove the
//! global contention point, and the vendored crate forbids the unsafe
//! code a lock-free deque needs.
//!
//! Results stay deterministic regardless of who runs a job: all
//! workspace consumers write into pre-assigned slots, so stealing
//! changes *where* a job runs, never *what* it computes.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A type-erased unit of pool work.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing a pool's lifetime activity.
///
/// `threads_spawned` is the total number of OS threads the pool has ever
/// created; for the process-global pool it is set once at initialisation
/// and never grows again — the property the planning stack's reuse tests
/// assert. `local_hits + injector_hits + steals` equals `jobs_executed`
/// once the pool is quiescent: every executed job was taken from exactly
/// one of the three sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoolStats {
    /// Worker threads serving the pool.
    pub threads: usize,
    /// OS threads spawned over the pool's lifetime.
    pub threads_spawned: u64,
    /// Jobs executed so far (by workers or by helping callers).
    pub jobs_executed: u64,
    /// Jobs a thread popped from its **own** deque (LIFO, cache-hot).
    pub local_hits: u64,
    /// Jobs taken from the shared overflow injector (FIFO).
    pub injector_hits: u64,
    /// Jobs **stolen** from another thread's deque (FIFO, cold end).
    pub steals: u64,
}

impl PoolStats {
    /// The activity between `baseline` (an earlier snapshot of the same
    /// pool) and `self`: every lifetime counter becomes the delta, while
    /// `threads` — a gauge, not a counter — keeps its current value.
    ///
    /// This is how per-phase attribution works against the process-global
    /// pool: snapshot before a phase, snapshot after, and `since` the
    /// two. Counters are monotonic, so the subtraction saturates only if
    /// the snapshots come from different pools (or are swapped).
    #[must_use]
    pub fn since(&self, baseline: &PoolStats) -> PoolStats {
        PoolStats {
            threads: self.threads,
            threads_spawned: self
                .threads_spawned
                .saturating_sub(baseline.threads_spawned),
            jobs_executed: self.jobs_executed.saturating_sub(baseline.jobs_executed),
            local_hits: self.local_hits.saturating_sub(baseline.local_hits),
            injector_hits: self.injector_hits.saturating_sub(baseline.injector_hits),
            steals: self.steals.saturating_sub(baseline.steals),
        }
    }
}

/// One thread's stealable job deque. The owner pushes and pops at the
/// back (LIFO); thieves take from the front (FIFO), so the oldest —
/// coldest — work migrates first, exactly like crossbeam's worker/
/// stealer split.
#[derive(Default)]
struct WorkerDeque {
    jobs: Mutex<VecDeque<Job>>,
}

impl WorkerDeque {
    fn push(&self, job: Job) {
        self.jobs
            .lock()
            .expect("worker deque poisoned")
            .push_back(job);
    }

    /// Owner-side pop: newest job first.
    fn pop_local(&self) -> Option<Job> {
        self.jobs.lock().expect("worker deque poisoned").pop_back()
    }

    /// Thief-side pop: oldest job first. Uses `try_lock` so a thief
    /// never blocks behind a busy owner — it just moves to the next
    /// victim.
    fn steal(&self) -> Option<Job> {
        self.jobs.try_lock().ok()?.pop_front()
    }

    /// Empties the deque (used when a guest deregisters with detached
    /// jobs still queued; they move to the injector).
    fn drain(&self) -> Vec<Job> {
        self.jobs
            .lock()
            .expect("worker deque poisoned")
            .drain(..)
            .collect()
    }
}

/// The calling thread's registration with a pool, stored thread-locally.
struct LocalQueue {
    pool_id: u64,
    deque: Arc<WorkerDeque>,
    /// Nested registrations (a scope inside a scope) on this thread.
    depth: usize,
    /// Workers never deregister; guests do when `depth` returns to 0.
    permanent: bool,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalQueue>> = const { RefCell::new(None) };
}

/// Distinguishes pools so a worker of one pool entering a scope on the
/// global pool does not cross-post jobs.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(0);

struct PoolShared {
    id: u64,
    /// Overflow queue for jobs submitted by unregistered threads.
    injector: Mutex<VecDeque<Job>>,
    /// Registry of stealable deques: one permanent entry per worker,
    /// plus transient guest deques of threads currently inside a scope.
    stealable: Mutex<Vec<Arc<WorkerDeque>>>,
    /// Rotates the steal starting point so thieves spread over victims.
    steal_cursor: AtomicUsize,
    /// Push epoch: bumped on every submission (SeqCst) so a worker that
    /// saw an empty pool can detect a push that raced with its decision
    /// to sleep (no lost wakeups) — see [`PoolShared::signal`].
    epoch: AtomicU64,
    /// Workers currently inside the sleep protocol. Gates the push
    /// path: a submitter only touches the sleep mutex when somebody
    /// might actually be asleep, so the busy-pool fast path is
    /// deque-lock + two atomics with no global lock.
    sleepers: AtomicUsize,
    /// Guards the sleep condvar (empty critical section on the push
    /// side; the lock acquisition orders pushes against a worker's
    /// epoch re-check → wait transition).
    sleep: Mutex<()>,
    /// Signalled when a job is pushed; idle workers wait on it.
    ready: Condvar,
    threads: usize,
    threads_spawned: AtomicU64,
    jobs_executed: AtomicU64,
    local_hits: AtomicU64,
    injector_hits: AtomicU64,
    steals: AtomicU64,
}

impl PoolShared {
    /// Finds the next job for the calling thread: own deque (LIFO) →
    /// injector (FIFO) → steal (FIFO from another deque). `local` is the
    /// caller's registered deque, if any.
    fn find_job(&self, local: Option<&Arc<WorkerDeque>>) -> Option<Job> {
        if let Some(deque) = local {
            if let Some(job) = deque.pop_local() {
                self.local_hits.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = self
            .injector
            .lock()
            .expect("pool injector poisoned")
            .pop_front()
        {
            self.injector_hits.fetch_add(1, Ordering::SeqCst);
            return Some(job);
        }
        let victims = self.stealable.lock().expect("pool registry poisoned");
        let n = victims.len();
        if n == 0 {
            return None;
        }
        let start = self.steal_cursor.fetch_add(1, Ordering::Relaxed) % n;
        for offset in 0..n {
            let victim = &victims[(start + offset) % n];
            if let Some(own) = local {
                if Arc::ptr_eq(victim, own) {
                    continue;
                }
            }
            if let Some(job) = victim.steal() {
                self.steals.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// Announces new work: bumps the push epoch, then wakes one idle
    /// worker — but only touches the sleep mutex when a worker might be
    /// asleep, so concurrent submitters on a busy pool never serialise
    /// on a global lock.
    ///
    /// No lost wakeups: both the epoch bump here and the sleeper-count
    /// bump in [`worker_loop`] are SeqCst, so either the submitter sees
    /// `sleepers > 0` (and its empty lock/unlock of the sleep mutex
    /// orders it against the worker's epoch re-check → wait transition:
    /// the worker is pre-check and will see the new epoch, or already
    /// waiting and gets the notify), or the worker's sleeper-bump came
    /// later than this load, in which case its epoch re-check — later
    /// still — observes the bump and rescans instead of sleeping.
    fn signal(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.sleep.lock().expect("pool sleep lock poisoned"));
            self.ready.notify_one();
        }
    }

    /// The calling thread's registered deque for this pool, if any.
    fn local_deque(&self) -> Option<Arc<WorkerDeque>> {
        LOCAL.with(|slot| {
            slot.borrow()
                .as_ref()
                .filter(|lq| lq.pool_id == self.id)
                .map(|lq| Arc::clone(&lq.deque))
        })
    }
}

/// RAII registration of a scope-calling thread as a stealing/stealable
/// pool participant (see [`ThreadPool::register_caller`]).
pub(crate) struct CallerSlot {
    shared: Option<Arc<PoolShared>>,
}

impl Drop for CallerSlot {
    fn drop(&mut self) {
        let Some(shared) = self.shared.take() else {
            return;
        };
        let finished = LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            let lq = slot.as_mut().expect("caller slot dropped unregistered");
            debug_assert_eq!(lq.pool_id, shared.id);
            lq.depth -= 1;
            if lq.depth == 0 && !lq.permanent {
                Some(slot.take().expect("checked above").deque)
            } else {
                None
            }
        });
        if let Some(deque) = finished {
            shared
                .stealable
                .lock()
                .expect("pool registry poisoned")
                .retain(|d| !Arc::ptr_eq(d, &deque));
            // Detached `spawn` jobs queued on the guest deque outlive the
            // scope; hand them to the injector so workers still run them.
            let orphans = deque.drain();
            if !orphans.is_empty() {
                let mut injector = shared.injector.lock().expect("pool injector poisoned");
                injector.extend(orphans);
                drop(injector);
                shared.signal();
            }
        }
    }
}

/// A persistent pool of worker threads executing injected jobs.
///
/// Use [`ThreadPool::global`] for the lazily-initialised process-global
/// pool that `scope`, `spawn`, and `join` run on; constructing private
/// pools is possible but only the global one backs the free functions.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.shared.threads)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` detached worker threads (at least
    /// one). The threads live until process exit.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            stealable: Mutex::new(Vec::with_capacity(threads)),
            steal_cursor: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            ready: Condvar::new(),
            threads,
            threads_spawned: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
            local_hits: AtomicU64::new(0),
            injector_hits: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        for i in 0..threads {
            let worker_shared = Arc::clone(&shared);
            let deque = Arc::new(WorkerDeque::default());
            shared
                .stealable
                .lock()
                .expect("pool registry poisoned")
                .push(Arc::clone(&deque));
            shared.threads_spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("rayon-stub-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared, deque))
                .expect("spawn pool worker");
        }
        ThreadPool { shared }
    }

    /// The lazily-initialised process-global pool. Sized by the
    /// `QRM_POOL_THREADS` environment variable when set to a positive
    /// integer (the hook CI's multi-worker job uses to exercise real
    /// parallelism on small runners), otherwise to
    /// `available_parallelism`. The first caller pays the one-time
    /// thread-spawn cost; every later parallel region reuses the same
    /// workers.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("QRM_POOL_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                });
            ThreadPool::new(threads)
        })
    }

    /// Number of worker threads serving the pool.
    pub fn thread_count(&self) -> usize {
        self.shared.threads
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.shared.threads,
            threads_spawned: self.shared.threads_spawned.load(Ordering::Relaxed),
            jobs_executed: self.shared.jobs_executed.load(Ordering::SeqCst),
            local_hits: self.shared.local_hits.load(Ordering::SeqCst),
            injector_hits: self.shared.injector_hits.load(Ordering::SeqCst),
            steals: self.shared.steals.load(Ordering::SeqCst),
        }
    }

    /// Queues a job: onto the calling thread's own deque when the
    /// thread is a worker of (or scope guest on) this pool — the LIFO
    /// fast path — otherwise onto the shared injector.
    pub(crate) fn inject(&self, job: Job) {
        match self.shared.local_deque() {
            Some(deque) => deque.push(job),
            None => self
                .shared
                .injector
                .lock()
                .expect("pool injector poisoned")
                .push_back(job),
        }
        self.shared.signal();
    }

    /// Registers the calling thread as a pool participant for the
    /// duration of the returned guard (a [`crate::scope`] call): its
    /// spawns go to a thread-local deque that pool workers can steal
    /// from, and its help-loop pops that deque LIFO first. Nested calls
    /// on one thread share a single registration; worker threads (and
    /// threads registered with a *different* pool) are left as they are.
    pub(crate) fn register_caller(&self) -> CallerSlot {
        let shared = LOCAL.with(|slot| {
            let mut slot = slot.borrow_mut();
            match slot.as_mut() {
                Some(lq) if lq.pool_id == self.shared.id => {
                    lq.depth += 1;
                    Some(Arc::clone(&self.shared))
                }
                // A worker of another pool: don't disturb its deque; the
                // thread falls back to injector submission.
                Some(_) => None,
                None => {
                    let deque = Arc::new(WorkerDeque::default());
                    self.shared
                        .stealable
                        .lock()
                        .expect("pool registry poisoned")
                        .push(Arc::clone(&deque));
                    *slot = Some(LocalQueue {
                        pool_id: self.shared.id,
                        deque,
                        depth: 1,
                        permanent: false,
                    });
                    Some(Arc::clone(&self.shared))
                }
            }
        });
        CallerSlot { shared }
    }

    /// Runs one job on the calling thread, counting it in the stats.
    /// Jobs carry their own panic capture (see `Scope::spawn`), but the
    /// pool guards anyway so a panicking bare [`crate::spawn`] job can
    /// never kill a shared worker (detached-thread semantics: the
    /// payload is dropped).
    pub(crate) fn run_job(&self, job: Job) {
        self.shared.jobs_executed.fetch_add(1, Ordering::SeqCst);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }

    /// Blocks until `done()` reports true, running queued jobs while
    /// waiting (own deque first, then injector, then stealing).
    /// `wait()` must block until either a job is queued or the
    /// condition may have changed; the 1 ms cap keeps the caller
    /// responsive to jobs queued while it slept on a foreign condvar.
    pub(crate) fn wait_while_helping(
        &self,
        mut done: impl FnMut() -> bool,
        mut wait: impl FnMut(Duration),
    ) {
        let local = self.shared.local_deque();
        loop {
            if done() {
                return;
            }
            if let Some(job) = self.shared.find_job(local.as_ref()) {
                self.run_job(job);
                continue;
            }
            wait(Duration::from_millis(1));
        }
    }
}

fn worker_loop(shared: &Arc<PoolShared>, deque: Arc<WorkerDeque>) {
    LOCAL.with(|slot| {
        *slot.borrow_mut() = Some(LocalQueue {
            pool_id: shared.id,
            deque: Arc::clone(&deque),
            depth: 0,
            permanent: true,
        });
    });
    loop {
        // Epoch-read before the scan: any push after this point bumps
        // the epoch, so the re-check inside the sleep protocol below
        // detects it and rescans instead of missing the wakeup.
        let epoch = shared.epoch.load(Ordering::SeqCst);
        if let Some(job) = shared.find_job(Some(&deque)) {
            shared.jobs_executed.fetch_add(1, Ordering::SeqCst);
            // Jobs capture their own panics (scope jobs stash the payload
            // for the owning scope); a stray panic from a bare `spawn`
            // job is swallowed so the worker survives — same as a
            // detached thread.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            continue;
        }
        // Sleep protocol (see `PoolShared::signal` for the pairing):
        // advertise as a sleeper, then re-check the epoch *under the
        // sleep lock* before waiting.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = shared.sleep.lock().expect("pool sleep lock poisoned");
        if shared.epoch.load(Ordering::SeqCst) == epoch {
            drop(shared.ready.wait(guard).expect("pool sleep lock poisoned"));
        } else {
            drop(guard);
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    //! Counter-accounting tests on **private** pools: unlike the global
    //! pool, a private pool is untouched by concurrently running tests,
    //! so exact equalities on its counters are race-free.

    use super::*;
    use std::sync::atomic::AtomicBool;

    fn wait_for_jobs(pool: &ThreadPool, jobs: u64) {
        while pool.stats().jobs_executed < jobs {
            std::thread::yield_now();
        }
    }

    #[test]
    fn worker_spawns_hit_its_local_deque() {
        // A job running on the single worker injects three more: they
        // land on the worker's own deque (LIFO fast path) and, with no
        // other thread in the pool, must all be popped locally.
        let pool = Arc::new(ThreadPool::new(1));
        let inner = Arc::clone(&pool);
        pool.inject(Box::new(move || {
            for _ in 0..3 {
                inner.inject(Box::new(|| {}));
            }
        }));
        wait_for_jobs(&pool, 4);
        let stats = pool.stats();
        assert_eq!(stats.injector_hits, 1, "the seed job came via the injector");
        assert_eq!(
            stats.local_hits, 3,
            "worker-spawned jobs are popped LIFO locally"
        );
        assert_eq!(stats.steals, 0, "a lone worker has nobody to steal from");
        assert_eq!(
            stats.local_hits + stats.injector_hits + stats.steals,
            stats.jobs_executed,
            "every executed job was taken from exactly one source"
        );
    }

    #[test]
    fn blocked_owner_forces_a_steal() {
        // Worker 1 runs a job that spawns a follower onto its own deque
        // and then spins until the follower has run. Worker 1 cannot run
        // it (it is busy spinning), so worker 2 **must** steal it — the
        // deterministic steal-counter check.
        let pool = Arc::new(ThreadPool::new(2));
        let done = Arc::new(AtomicBool::new(false));
        let inner_pool = Arc::clone(&pool);
        let inner_done = Arc::clone(&done);
        pool.inject(Box::new(move || {
            let flag = Arc::clone(&inner_done);
            inner_pool.inject(Box::new(move || {
                flag.store(true, Ordering::Release);
            }));
            while !inner_done.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        }));
        wait_for_jobs(&pool, 2);
        let stats = pool.stats();
        assert_eq!(stats.steals, 1, "the follower can only run via a steal");
        assert_eq!(stats.injector_hits, 1);
        assert_eq!(
            stats.local_hits + stats.injector_hits + stats.steals,
            stats.jobs_executed
        );
        assert_eq!(stats.threads_spawned, 2, "stealing spawned no threads");
    }

    #[test]
    fn global_pool_honours_env_or_parallelism() {
        let threads = ThreadPool::global().thread_count();
        let expected = std::env::var("QRM_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        assert_eq!(threads, expected);
    }
}

//! The persistent worker pool behind this crate's `scope`/`spawn`/`join`.
//!
//! Mirrors the executor/scheduler split of real rayon (and of Block-STM
//! style executors): a fixed set of long-lived worker threads pull
//! type-erased jobs from a shared injector queue behind an `Arc`. The
//! pool is created **once** per process (lazily, on first use) and its
//! threads never exit, so repeated parallel regions pay zero
//! thread-spawn cost after initialisation — observable through
//! [`ThreadPool::stats`]: `threads_spawned` stays constant while
//! `jobs_executed` grows.
//!
//! Work distribution is a mutex-protected injector deque (offline-stub
//! quality; real rayon uses per-worker stealable deques). Blocked
//! callers *help*: while a scope waits for its spawned jobs it runs
//! queued jobs itself, so nested parallel regions cannot deadlock the
//! fixed-size pool and a 1-core host still makes progress.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A type-erased unit of pool work.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters describing a pool's lifetime activity.
///
/// `threads_spawned` is the total number of OS threads the pool has ever
/// created; for the process-global pool it is set once at initialisation
/// and never grows again — the property the planning stack's reuse tests
/// assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads serving the pool.
    pub threads: usize,
    /// OS threads spawned over the pool's lifetime.
    pub threads_spawned: u64,
    /// Jobs executed so far (by workers or by helping callers).
    pub jobs_executed: u64,
}

struct PoolShared {
    injector: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed; workers wait on it.
    ready: Condvar,
    threads: usize,
    threads_spawned: AtomicU64,
    jobs_executed: AtomicU64,
}

/// A persistent pool of worker threads executing injected jobs.
///
/// Use [`ThreadPool::global`] for the lazily-initialised process-global
/// pool that `scope`, `spawn`, and `join` run on; constructing private
/// pools is possible but only the global one backs the free functions.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.shared.threads)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` detached worker threads (at least
    /// one). The threads live until process exit.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            threads,
            threads_spawned: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
        });
        for i in 0..threads {
            let worker_shared = Arc::clone(&shared);
            shared.threads_spawned.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name(format!("rayon-stub-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))
                .expect("spawn pool worker");
        }
        ThreadPool { shared }
    }

    /// The lazily-initialised process-global pool, sized to
    /// `available_parallelism`. The first caller pays the one-time
    /// thread-spawn cost; every later parallel region reuses the same
    /// workers.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            ThreadPool::new(threads)
        })
    }

    /// Number of worker threads serving the pool.
    pub fn thread_count(&self) -> usize {
        self.shared.threads
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.shared.threads,
            threads_spawned: self.shared.threads_spawned.load(Ordering::Relaxed),
            jobs_executed: self.shared.jobs_executed.load(Ordering::Relaxed),
        }
    }

    /// Queues a job for execution by the pool workers.
    pub(crate) fn inject(&self, job: Job) {
        let mut queue = self.shared.injector.lock().expect("pool injector poisoned");
        queue.push_back(job);
        drop(queue);
        self.shared.ready.notify_one();
    }

    /// Pops one queued job without blocking. Used by waiting callers to
    /// help drain the pool instead of idling.
    pub(crate) fn try_pop(&self) -> Option<Job> {
        self.shared
            .injector
            .lock()
            .expect("pool injector poisoned")
            .pop_front()
    }

    /// Runs one job on the calling thread, counting it in the stats.
    /// Jobs carry their own panic capture (see `Scope::spawn`), but the
    /// pool guards anyway so a panicking bare [`crate::spawn`] job can
    /// never kill a shared worker (detached-thread semantics: the
    /// payload is dropped).
    pub(crate) fn run_job(&self, job: Job) {
        self.shared.jobs_executed.fetch_add(1, Ordering::Relaxed);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }

    /// Blocks until `done()` reports true, running queued jobs while
    /// waiting. `wait()` must block until either a job is queued or the
    /// condition may have changed; the 1 ms cap keeps the caller
    /// responsive to jobs queued while it slept on a foreign condvar.
    pub(crate) fn wait_while_helping(
        &self,
        mut done: impl FnMut() -> bool,
        mut wait: impl FnMut(Duration),
    ) {
        loop {
            if done() {
                return;
            }
            if let Some(job) = self.try_pop() {
                self.run_job(job);
                continue;
            }
            wait(Duration::from_millis(1));
        }
    }
}

fn worker_loop(shared: &Arc<PoolShared>) {
    loop {
        let job = {
            let mut queue = shared.injector.lock().expect("pool injector poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.ready.wait(queue).expect("pool injector poisoned");
            }
        };
        shared.jobs_executed.fetch_add(1, Ordering::Relaxed);
        // Jobs capture their own panics (scope jobs stash the payload for
        // the owning scope); a stray panic from a bare `spawn` job is
        // swallowed so the worker survives — same as a detached thread.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

//! Offline, API-compatible subset of the `rand` crate.
//!
//! Implements exactly the surface the workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`]. See `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] like the real crate does.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits, the standard bits-to-unit-interval construction.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Draws one sample from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.abs_diff(range.start) as u128;
                // Modulo reduction: the bias is < 2^-64 for every span the
                // workspace uses, far below statistical test resolution.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                range.start + unit * (range.end - range.start)
            }
        }
    )*};
}

impl_sample_uniform_float!(f64, f32);

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with a SplitMix64
    /// seed expander. Deterministic for a given seed, `Clone`-able, and
    /// statistically solid for simulation workloads (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-4isize..5);
            assert!((-4..5).contains(&i));
        }
    }

    #[test]
    fn unsized_receiver_works() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0usize..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = draw(&mut rng);
    }
}

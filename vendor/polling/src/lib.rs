//! Offline stand-in for the `polling` crate: a portable readiness
//! notifier over **level-triggered** OS polling, implementing exactly
//! the surface `qrm_net`'s event loop uses.
//!
//! A [`Poller`] watches a set of raw file descriptors, each registered
//! under a caller-chosen `usize` key with a read/write [`Interest`];
//! [`Poller::wait`] blocks until at least one descriptor is ready (or a
//! timeout expires) and reports [`Event`]s. [`Poller::notify`] wakes a
//! concurrent `wait` from any thread — the self-pipe trick, used by the
//! server to push pool-job completions into the loop.
//!
//! Backends:
//!
//! * **Linux** — `epoll` via direct `extern "C"` declarations
//!   (`epoll_create1`/`epoll_ctl`/`epoll_wait`), level-triggered.
//! * **other unix** — `poll(2)` over a mutex-protected registration
//!   map; the same level-triggered semantics at O(n) per wait.
//!
//! Error (`EPOLLERR`) and hang-up (`EPOLLHUP`) conditions are reported
//! as *both* readable and writable, so a state machine that only
//! watches one direction still gets woken to observe the failure on
//! its next `read`/`write`.
//!
//! Like the real crate, a registered descriptor must be explicitly
//! [`delete`](Poller::delete)d before being closed; the key space is
//! the caller's, except [`NOTIFY_KEY`] which the poller reserves for
//! its internal wake pipe.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// The key the poller's internal wake pipe is registered under; never
/// reported from [`Poller::wait`] and rejected by [`Poller::add`].
pub const NOTIFY_KEY: usize = usize::MAX;

/// Which readiness directions a registration asks to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable.
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key the ready descriptor was registered under.
    pub key: usize,
    /// The descriptor is readable (or in error/hang-up).
    pub readable: bool,
    /// The descriptor is writable (or in error/hang-up).
    pub writable: bool,
}

mod sys {
    #![allow(non_camel_case_types)]

    pub type c_int = i32;
    #[cfg(all(unix, not(target_os = "linux")))]
    pub type c_short = i16;
    #[cfg(all(unix, not(target_os = "linux")))]
    pub type c_ulong = u64;
    pub type ssize_t = isize;
    pub type size_t = usize;

    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: size_t) -> ssize_t;
        pub fn write(fd: c_int, buf: *const u8, count: size_t) -> ssize_t;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use super::c_int;

        pub const EPOLL_CLOEXEC: c_int = super::O_CLOEXEC;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;

        /// The kernel's `struct epoll_event`. On x86-64 the C
        /// definition carries `__attribute__((packed))`, so the Rust
        /// mirror must too or `epoll_wait` would scribble past every
        /// other entry of the event array.
        #[cfg(target_arch = "x86_64")]
        #[repr(C, packed)]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        #[cfg(not(target_arch = "x86_64"))]
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct epoll_event {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut epoll_event,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }
    }

    #[cfg(all(unix, not(target_os = "linux")))]
    pub mod poll {
        use super::{c_int, c_short, c_ulong};

        pub const POLLIN: c_short = 0x001;
        pub const POLLOUT: c_short = 0x004;
        pub const POLLERR: c_short = 0x008;
        pub const POLLHUP: c_short = 0x010;

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct pollfd {
            pub fd: c_int,
            pub events: c_short,
            pub revents: c_short,
        }

        extern "C" {
            pub fn poll(fds: *mut pollfd, nfds: c_ulong, timeout: c_int) -> c_int;
        }
    }
}

#[cfg(not(unix))]
compile_error!("vendor/polling implements unix backends only (epoll on Linux, poll elsewhere)");

/// Converts the last OS error into `io::Error`.
fn last_error() -> io::Error {
    io::Error::last_os_error()
}

fn check(ret: sys::c_int) -> io::Result<sys::c_int> {
    if ret < 0 {
        Err(last_error())
    } else {
        Ok(ret)
    }
}

/// Milliseconds for the kernel timeout argument: `None` blocks forever
/// (-1); a nonzero duration rounds **up** so a 300 µs deadline cannot
/// degenerate into a `0` (non-blocking) poll and spin the caller hot.
fn timeout_ms(timeout: Option<Duration>) -> sys::c_int {
    match timeout {
        None => -1,
        Some(t) => {
            let ms = t.as_millis();
            let ms = if ms == 0 && !t.is_zero() { 1 } else { ms };
            ms.min(sys::c_int::MAX as u128) as sys::c_int
        }
    }
}

/// The self-pipe both backends use for [`Poller::notify`]: the read
/// end sits in the watched set under [`NOTIFY_KEY`]; `notify` writes
/// one byte (a full pipe means a wakeup is already pending, which is
/// just as good); `wait` drains it before reporting events.
#[derive(Debug)]
struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as sys::c_int; 2];
        // SAFETY: `fds` is a valid 2-element array for `pipe2` to fill.
        check(unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) })?;
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    fn notify(&self) {
        let byte = [1u8];
        // SAFETY: writing one byte from a valid buffer to an owned fd.
        // EAGAIN (pipe full) is success: a wakeup is already queued.
        let _ = unsafe { sys::write(self.write_fd, byte.as_ptr(), 1) };
    }

    fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a valid owned buffer from an owned
            // non-blocking fd; 0/negative returns end the drain.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: closing fds this struct owns, exactly once.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    use super::sys::epoll::*;
    use super::{check, last_error, sys, timeout_ms, Event, Interest, WakePipe, NOTIFY_KEY};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Level-triggered `epoll` poller.
    #[derive(Debug)]
    pub struct Poller {
        epoll_fd: RawFd,
        wake: WakePipe,
    }

    fn event_bits(interest: Interest) -> u32 {
        let mut bits = 0;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; the returned fd is owned here.
            let epoll_fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wake = WakePipe::new()?;
            let poller = Poller { epoll_fd, wake };
            poller.ctl(EPOLL_CTL_ADD, poller.wake.read_fd, EPOLLIN, NOTIFY_KEY)?;
            Ok(poller)
        }

        fn ctl(&self, op: sys::c_int, fd: RawFd, events: u32, key: usize) -> io::Result<()> {
            let mut event = epoll_event {
                events,
                data: key as u64,
            };
            // SAFETY: `event` is a valid epoll_event for the duration
            // of the call; fds are the caller's responsibility per the
            // crate contract (register while open, delete before close).
            check(unsafe { epoll_ctl(self.epoll_fd, op, fd, &mut event) })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, event_bits(interest), key)
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, event_bits(interest), key)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            const CAPACITY: usize = 256;
            let mut raw = [epoll_event { events: 0, data: 0 }; CAPACITY];
            let n = loop {
                // SAFETY: `raw` is a valid array of CAPACITY entries
                // for the kernel to fill.
                let n = unsafe {
                    epoll_wait(
                        self.epoll_fd,
                        raw.as_mut_ptr(),
                        CAPACITY as sys::c_int,
                        timeout_ms(timeout),
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = last_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR: retry. (The timeout restarts, which over-waits
                // at worst; callers re-derive deadlines per iteration.)
            };
            for entry in raw.iter().take(n) {
                // A packed struct's fields can't be borrowed; copy out.
                let (bits, key) = (entry.events, entry.data as usize);
                if key == NOTIFY_KEY {
                    self.wake.drain();
                    continue;
                }
                let broken = bits & (EPOLLERR | EPOLLHUP) != 0;
                events.push(Event {
                    key,
                    readable: bits & EPOLLIN != 0 || broken,
                    writable: bits & EPOLLOUT != 0 || broken,
                });
            }
            Ok(events.len())
        }

        pub fn notify(&self) {
            self.wake.notify();
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the epoll fd this struct owns.
            unsafe {
                sys::close(self.epoll_fd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod backend {
    use super::sys::poll::*;
    use super::{last_error, sys, timeout_ms, Event, Interest, WakePipe, NOTIFY_KEY};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    /// `poll(2)` fallback: the registration set lives in a mutex map
    /// and is rebuilt into a `pollfd` array on every wait.
    #[derive(Debug)]
    pub struct Poller {
        registrations: Mutex<BTreeMap<RawFd, (usize, Interest)>>,
        wake: WakePipe,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registrations: Mutex::new(BTreeMap::new()),
                wake: WakePipe::new()?,
            })
        }

        pub fn add(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut map = self.registrations.lock().expect("poller map");
            if map.insert(fd, (key, interest)).is_some() {
                return Err(io::ErrorKind::AlreadyExists.into());
            }
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, key: usize, interest: Interest) -> io::Result<()> {
            let mut map = self.registrations.lock().expect("poller map");
            match map.get_mut(&fd) {
                Some(slot) => {
                    *slot = (key, interest);
                    Ok(())
                }
                None => Err(io::ErrorKind::NotFound.into()),
            }
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut map = self.registrations.lock().expect("poller map");
            match map.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::ErrorKind::NotFound.into()),
            }
        }

        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            events.clear();
            let mut fds: Vec<pollfd> = vec![pollfd {
                fd: self.wake.read_fd,
                events: POLLIN,
                revents: 0,
            }];
            let mut keys: Vec<usize> = vec![NOTIFY_KEY];
            {
                let map = self.registrations.lock().expect("poller map");
                for (&fd, &(key, interest)) in map.iter() {
                    let mut bits = 0;
                    if interest.readable {
                        bits |= POLLIN;
                    }
                    if interest.writable {
                        bits |= POLLOUT;
                    }
                    fds.push(pollfd {
                        fd,
                        events: bits,
                        revents: 0,
                    });
                    keys.push(key);
                }
            }
            let n = loop {
                // SAFETY: `fds` is a valid array of pollfd entries.
                let n = unsafe {
                    poll(
                        fds.as_mut_ptr(),
                        fds.len() as sys::c_ulong,
                        timeout_ms(timeout),
                    )
                };
                if n >= 0 {
                    break n;
                }
                let err = last_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(0);
            }
            for (entry, &key) in fds.iter().zip(&keys) {
                if entry.revents == 0 {
                    continue;
                }
                if key == NOTIFY_KEY {
                    self.wake.drain();
                    continue;
                }
                let broken = entry.revents & (POLLERR | POLLHUP) != 0;
                events.push(Event {
                    key,
                    readable: entry.revents & POLLIN != 0 || broken,
                    writable: entry.revents & POLLOUT != 0 || broken,
                });
            }
            Ok(events.len())
        }

        pub fn notify(&self) {
            self.wake.notify();
        }
    }
}

/// A readiness poller over raw file descriptors. See the crate docs
/// for semantics; all methods are callable from any thread.
#[derive(Debug)]
pub struct Poller {
    inner: backend::Poller,
}

impl Poller {
    /// Creates a poller (and its internal wake pipe).
    ///
    /// # Errors
    ///
    /// Propagates fd-allocation failures (e.g. fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: backend::Poller::new()?,
        })
    }

    /// Registers `source` under `key` with the given interest. The
    /// descriptor must outlive the registration (delete before close).
    ///
    /// # Errors
    ///
    /// Fails on a duplicate registration or an invalid descriptor;
    /// [`NOTIFY_KEY`] is reserved and rejected.
    pub fn add(&self, source: &impl AsRawFd, key: usize, interest: Interest) -> io::Result<()> {
        if key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "NOTIFY_KEY is reserved for the poller's wake pipe",
            ));
        }
        self.inner.add(source.as_raw_fd(), key, interest)
    }

    /// Replaces the key/interest of an already-registered descriptor.
    ///
    /// # Errors
    ///
    /// Fails if `source` is not registered.
    pub fn modify(&self, source: &impl AsRawFd, key: usize, interest: Interest) -> io::Result<()> {
        if key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "NOTIFY_KEY is reserved for the poller's wake pipe",
            ));
        }
        self.inner.modify(source.as_raw_fd(), key, interest)
    }

    /// Removes a descriptor from the watched set. Must be called
    /// before the descriptor is closed.
    ///
    /// # Errors
    ///
    /// Fails if `source` is not registered.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.inner.delete(source.as_raw_fd())
    }

    /// Blocks until at least one watched descriptor is ready, `timeout`
    /// expires (`Ok(0)`), or [`notify`](Self::notify) is called
    /// (`Ok(0)` unless real events raced in). `events` is cleared and
    /// refilled; the return value is its final length.
    ///
    /// # Errors
    ///
    /// Propagates backend poll failures (`EINTR` is retried).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.inner.wait(events, timeout)
    }

    /// Wakes a concurrent (or the next) [`wait`](Self::wait). Callable
    /// from any thread; never blocks; coalesces with pending wakeups.
    pub fn notify(&self) {
        self.inner.notify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    /// A connected loopback socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn readability_is_reported_level_triggered() {
        let poller = Poller::new().expect("poller");
        let (mut client, server) = pair();
        poller.add(&server, 7, Interest::READ).expect("add");

        let mut events = Vec::new();
        // Nothing to read yet: a short wait times out.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert_eq!(n, 0);

        client.write_all(b"x").expect("write");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data keeps reporting.
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);

        // ...until drained.
        let mut byte = [0u8; 8];
        let read = {
            let mut s = &server;
            s.read(&mut byte).expect("read")
        };
        assert_eq!(read, 1);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert_eq!(n, 0);
        poller.delete(&server).expect("delete");
    }

    #[test]
    fn writability_and_modify() {
        let poller = Poller::new().expect("poller");
        let (client, _server) = pair();
        poller.add(&client, 3, Interest::READ).expect("add");
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert_eq!(n, 0, "no read interest satisfied");
        // An idle socket's send buffer has room: writable immediately
        // once the interest flips.
        poller.modify(&client, 3, Interest::WRITE).expect("modify");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert!(events[0].writable);
        poller.delete(&client).expect("delete");
    }

    #[test]
    fn peer_close_wakes_a_read_interest() {
        let poller = Poller::new().expect("poller");
        let (client, server) = pair();
        poller.add(&server, 9, Interest::READ).expect("add");
        drop(client);
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1);
        assert!(events[0].readable, "EOF reads as readable");
        poller.delete(&server).expect("delete");
    }

    #[test]
    fn notify_wakes_a_blocked_wait_from_another_thread() {
        let poller = std::sync::Arc::new(Poller::new().expect("poller"));
        let waker = std::sync::Arc::clone(&poller);
        let start = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify();
        });
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .expect("wait");
        handle.join().expect("join");
        assert_eq!(n, 0, "notify is not an event");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "notify must wake the wait long before the timeout"
        );
        // Coalesced notifications don't pile up: the next wait times
        // out instead of waking spuriously.
        poller.notify();
        poller.notify();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn reserved_key_and_double_registration_are_rejected() {
        let poller = Poller::new().expect("poller");
        let (client, _server) = pair();
        assert!(poller.add(&client, NOTIFY_KEY, Interest::READ).is_err());
        poller.add(&client, 1, Interest::READ).expect("add");
        assert!(
            poller.add(&client, 2, Interest::READ).is_err(),
            "one registration per fd"
        );
        poller.delete(&client).expect("delete");
        assert!(poller.delete(&client).is_err(), "already removed");
    }

    #[test]
    fn subsecond_timeouts_round_up_not_down() {
        let poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        let start = Instant::now();
        // 300 µs must not become a 0 ms (non-blocking) poll — that
        // would let a sub-ms connection deadline spin the event loop.
        poller
            .wait(&mut events, Some(Duration::from_micros(300)))
            .expect("wait");
        // No assertion on a lower bound (the kernel may round), just
        // that the call returned without error and without events.
        assert!(events.is_empty());
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}

//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Provides the surface this workspace uses: the `Serialize` /
//! `Deserialize` traits, `#[derive(Serialize, Deserialize)]` for
//! named-field structs and enums (re-exported from the companion
//! `serde_derive` proc-macro crate), and impls for the primitive,
//! container, and array types the derived code needs.
//!
//! **Simplified data model.** Real serde drives a visitor-based
//! `Serializer`/`Deserializer` pair; this subset serializes into (and
//! deserializes from) a self-describing [`Value`] tree instead — the
//! role `serde_json::Value` plays in the real ecosystem. Format crates
//! (the workspace's `qrm-wire` JSON codec) encode and decode `Value`s.
//! The derive layout matches serde's externally-tagged defaults, so
//! JSON produced here has the same shape the real `serde_json` would
//! produce for the same types:
//!
//! * named-field struct → map of field name → value, in declaration
//!   order;
//! * unit enum variant → the variant name as a string;
//! * newtype / tuple / struct enum variant → a single-entry map from
//!   the variant name to the payload (value, sequence, or field map);
//! * `Option` → `Null` or the inner value; missing map keys also
//!   deserialize as `None`.
//!
//! Unknown map keys are ignored on deserialize (serde's default), and
//! derived `Deserialize` does not validate cross-field invariants —
//! a type whose constructor enforces invariants gets them back only if
//! the input came from a matching `Serialize`.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of plain data — the stub's serialization
/// data model (the counterpart of `serde_json::Value`).
///
/// Maps preserve insertion order (`Vec` of pairs, not a hash map), so
/// serializing the same value twice yields byte-identical encodings.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer outside `i64` range.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value's kind, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Builds a map value from `(field name, value)` pairs — the shape
    /// derived struct `Serialize` impls produce.
    pub fn record(pairs: Vec<(&str, Value)>) -> Value {
        Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds the externally-tagged encoding of an enum variant with a
    /// payload: `{ name: payload }`.
    pub fn variant(name: &str, payload: Value) -> Value {
        Value::Map(vec![(name.to_string(), payload)])
    }

    /// The map entries, or a type error mentioning `expected`.
    pub fn as_map(&self, expected: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(pairs) => Ok(pairs),
            other => Err(Error::invalid_type(expected, "map", other)),
        }
    }

    /// The sequence elements, or a type error mentioning `expected`.
    pub fn as_seq(&self, expected: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::invalid_type(expected, "sequence", other)),
        }
    }

    /// Looks up a map key (linear scan; maps here are small).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting any integer representation that
    /// holds it losslessly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, accepting any integer representation that
    /// holds it losslessly.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`. Integer values convert; an integer that
    /// came from [`f64`]'s shortest round-trip formatting (how the
    /// workspace's JSON codec writes integral floats) converts back to
    /// the identical float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable message accumulating field
/// context as it propagates out of nested [`Deserialize`] calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// `expected` needed a `kind` value but `got` something else.
    pub fn invalid_type(expected: &str, kind: &str, got: &Value) -> Self {
        Error::custom(format!(
            "{expected}: expected {kind}, got {}",
            got.type_name()
        ))
    }

    /// A required field was absent from the input map.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("{ty}: missing field `{field}`"))
    }

    /// An enum tag matched none of the type's variants.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        Error::custom(format!("{ty}: unknown variant `{tag}`"))
    }

    /// Wraps the error with the field it occurred in.
    #[must_use]
    pub fn in_field(self, ty: &str, field: &str) -> Self {
        Error::custom(format!("{ty}.{field}: {}", self.message))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into the stub's [`Value`] data model.
///
/// Derivable for named-field structs and enums; the derived layout is
/// documented on the [crate root](crate).
pub trait Serialize {
    /// The value tree representing `self`.
    fn serialize(&self) -> Value;
}

/// Deserialization from the stub's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field's key is absent.
    /// Defaults to an error; `Option<T>` overrides it to `None`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::missing_field`] unless overridden.
    fn deserialize_missing(ty: &str, field: &str) -> Result<Self, Error> {
        Err(Error::missing_field(ty, field))
    }
}

/// Derive-support helper: deserializes struct field `field` of `ty`
/// from `map`, tolerating absence for types (like `Option`) that
/// define a missing-key value.
///
/// # Errors
///
/// Propagates the field's [`Deserialize`] error, wrapped with the
/// field's name.
pub fn field<T: Deserialize>(map: &[(String, Value)], ty: &str, field: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == field) {
        Some((_, value)) => T::deserialize(value).map_err(|e| e.in_field(ty, field)),
        None => T::deserialize_missing(ty, field),
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("String", "string", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ident),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                // Small unsigned values fit i64 (the canonical integer
                // representation); only the u64 overflow range needs U64.
                match i64::try_from(*self) {
                    Ok(v) => Value::I64(v),
                    Err(_) => Value::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .and_then(|v| $ty::try_from(v).ok())
                    .ok_or_else(|| {
                        Error::invalid_type(stringify!($ty), "unsigned integer", value)
                    })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ident),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_i64()
                    .and_then(|v| $ty::try_from(v).ok())
                    .ok_or_else(|| Error::invalid_type(stringify!($ty), "integer", value))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::invalid_type("f64", "number", value))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|v| v as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn deserialize_missing(_ty: &str, _field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_seq("Vec")?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq("array")?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "array: expected {N} elements, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array: length changed during conversion"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value.as_seq("tuple")? {
            [a, b] => Ok((A::deserialize(a)?, B::deserialize(b)?)),
            other => Err(Error::custom(format!(
                "tuple: expected 2 elements, got {}",
                other.len()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_cross_representations() {
        assert_eq!(7u64.serialize(), Value::I64(7));
        assert_eq!(u64::MAX.serialize(), Value::U64(u64::MAX));
        assert_eq!(u64::deserialize(&Value::I64(7)).unwrap(), 7);
        assert_eq!(u64::deserialize(&Value::U64(u64::MAX)).unwrap(), u64::MAX);
        assert!(u64::deserialize(&Value::I64(-1)).is_err());
        assert_eq!(i64::deserialize(&Value::U64(3)).unwrap(), 3);
        assert!(i64::deserialize(&Value::U64(u64::MAX)).is_err());
        assert!(usize::deserialize(&Value::F64(1.5)).is_err());
    }

    #[test]
    fn floats_accept_integer_values() {
        assert_eq!(f64::deserialize(&Value::I64(2)).unwrap(), 2.0);
        assert_eq!(f64::deserialize(&Value::F64(0.55)).unwrap(), 0.55);
        assert!(f64::deserialize(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn options_tolerate_null_and_absence() {
        assert_eq!(Option::<u64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::deserialize(&Value::I64(1)).unwrap(), Some(1));
        let map: &[(String, Value)] = &[];
        assert_eq!(field::<Option<u64>>(map, "T", "x").unwrap(), None);
        assert!(field::<u64>(map, "T", "x").is_err());
    }

    #[test]
    fn arrays_roundtrip_and_check_length() {
        let a = [1u64, 2, 3];
        let v = a.serialize();
        assert_eq!(<[u64; 3]>::deserialize(&v).unwrap(), a);
        assert!(<[u64; 4]>::deserialize(&v).is_err());
    }

    #[test]
    fn record_and_variant_shapes() {
        let v = Value::record(vec![("a", Value::I64(1))]);
        assert_eq!(v.get("a"), Some(&Value::I64(1)));
        assert_eq!(v.get("b"), None);
        let t = Value::variant("Tag", Value::Null);
        assert_eq!(t.as_map("enum").unwrap().len(), 1);
    }
}

//! Derive macros for the vendored `serde` subset (see
//! `vendor/README.md`).
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for named-field
//! structs and enums (unit, newtype, tuple, and struct variants),
//! generating impls of the stub's `Value`-tree traits with serde's
//! externally-tagged layout. The input is parsed directly from the
//! `proc_macro` token stream — the build environment has no `syn` /
//! `quote` — so the supported grammar is intentionally narrow:
//!
//! * no generic parameters, lifetimes, or `where` clauses;
//! * no tuple or unit structs (enum tuple variants are fine);
//! * field/variant attributes (`#[serde(...)]` renames etc.) are
//!   ignored along with all other attributes.
//!
//! Anything outside that grammar fails with a `compile_error!` naming
//! the restriction rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Derives the stub `serde::Serialize` (serialization into the
/// `Value` data model) for a named-field struct or an enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives the stub `serde::Deserialize` (reconstruction from the
/// `Value` data model) for a named-field struct or an enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy)]
enum Trait {
    Serialize,
    Deserialize,
}

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: the field names, in declaration order.
    Struct(Vec<String>),
    /// Enum: the variants, in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Payload {
    Unit,
    /// Tuple variant with this many elements.
    Tuple(usize),
    /// Struct variant: the field names.
    Struct(Vec<String>),
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let source = match parse_input(input) {
        Ok(parsed) => match which {
            Trait::Serialize => generate_serialize(&parsed),
            Trait::Deserialize => generate_deserialize(&parsed),
        },
        Err(message) => format!("::std::compile_error!({message:?});"),
    };
    source
        .parse()
        .expect("serde_derive generated unparseable Rust")
}

// ---------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut tokens: Tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens)?;
    skip_visibility(&mut tokens);
    let keyword = expect_ident(&mut tokens, "`struct` or `enum`")?;
    let name = expect_ident(&mut tokens, "type name")?;
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored subset): generic type `{name}` is not supported"
        ));
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group.stream(),
        _ => {
            return Err(format!(
                "serde_derive (vendored subset): `{name}` must be a braced {keyword} \
                 (tuple/unit structs are not supported)"
            ))
        }
    };
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)?),
        "enum" => Kind::Enum(parse_variants(body)?),
        other => {
            return Err(format!(
                "serde_derive (vendored subset): expected struct or enum, found `{other}`"
            ))
        }
    };
    Ok(Input { name, kind })
}

/// Consumes any number of leading `#[...]` attributes.
fn skip_attributes(tokens: &mut Tokens) -> Result<(), String> {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Bracket => {}
            _ => return Err("serde_derive: malformed attribute".to_string()),
        }
    }
    Ok(())
}

/// Consumes a `pub` / `pub(...)` visibility qualifier if present.
fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn expect_ident(tokens: &mut Tokens, what: &str) -> Result<String, String> {
    match tokens.next() {
        Some(TokenTree::Ident(ident)) => Ok(ident.to_string()),
        other => Err(format!(
            "serde_derive: expected {what}, found {:?}",
            other.map(|t| t.to_string())
        )),
    }
}

/// Consumes a field's type: every token up to (and including) the next
/// comma at angle-bracket depth zero. Parens/brackets/braces are whole
/// token groups, so only `<`/`>` need explicit depth tracking — which
/// is exactly why `->` (whose `>` is not a closing bracket) cannot be
/// tracked with a counter and is rejected outright: silently
/// mis-splitting a field list would drop fields from the wire, and the
/// crate's contract is `compile_error!`, never wrong code.
fn skip_type(tokens: &mut Tokens) -> Result<(), String> {
    let mut angle_depth = 0i64;
    let mut previous_was_dash = false;
    while let Some(token) = tokens.peek() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                ',' if angle_depth == 0 => {
                    tokens.next();
                    return Ok(());
                }
                '<' => angle_depth += 1,
                '>' if previous_was_dash => {
                    return Err(
                        "serde_derive (vendored subset): function pointer types (`->`) \
                         are not supported in derived fields"
                            .to_string(),
                    );
                }
                '>' => {
                    angle_depth -= 1;
                    if angle_depth < 0 {
                        return Err(
                            "serde_derive (vendored subset): unbalanced `>` in field type"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            }
            previous_was_dash = p.as_char() == '-';
        } else {
            previous_was_dash = false;
        }
        tokens.next();
    }
    Ok(())
}

/// Parses `name: Type, ...` named-field lists (struct bodies and
/// struct-variant bodies).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens)?;
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let field = expect_ident(&mut tokens, "field name")?;
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("serde_derive: field `{field}` missing `:`")),
        }
        skip_type(&mut tokens)?;
        fields.push(field);
    }
    Ok(fields)
}

/// Counts the elements of a tuple-variant payload `(A, B, ...)`.
fn count_tuple_elements(body: TokenStream) -> Result<usize, String> {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        skip_type(&mut tokens)?;
        count += 1;
    }
    Ok(count)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens: Tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens)?;
        if tokens.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut tokens, "variant name")?;
        let payload = match tokens.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_elements(group.stream())?;
                tokens.next();
                Payload::Tuple(count)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream())?;
                tokens.next();
                Payload::Struct(fields)
            }
            _ => Payload::Unit,
        };
        match tokens.next() {
            None => {
                variants.push(Variant { name, payload });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, payload });
            }
            Some(other) => {
                return Err(format!(
                    "serde_derive: unexpected token `{other}` after variant `{name}` \
                     (explicit discriminants are not supported)"
                ))
            }
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Code generation (string-built, then reparsed)
// ---------------------------------------------------------------------

fn impl_header(name: &str, trait_name: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all, clippy::pedantic)]\n\
         impl ::serde::{trait_name} for {name} {{\n"
    )
}

fn generate_serialize(input: &Input) -> String {
    let name = &input.name;
    let mut out = impl_header(name, "Serialize");
    out.push_str("fn serialize(&self) -> ::serde::Value {\n");
    match &input.kind {
        Kind::Struct(fields) => {
            out.push_str("::serde::Value::record(::std::vec![\n");
            for field in fields {
                out.push_str(&format!(
                    "({field:?}, ::serde::Serialize::serialize(&self.{field})),\n"
                ));
            }
            out.push_str("])\n");
        }
        Kind::Enum(variants) => {
            out.push_str("match self {\n");
            for variant in variants {
                let tag = &variant.name;
                match &variant.payload {
                    Payload::Unit => out.push_str(&format!(
                        "{name}::{tag} => \
                         ::serde::Value::Str(::std::string::ToString::to_string({tag:?})),\n"
                    )),
                    Payload::Tuple(1) => out.push_str(&format!(
                        "{name}::{tag}(f0) => ::serde::Value::variant({tag:?}, \
                         ::serde::Serialize::serialize(f0)),\n"
                    )),
                    Payload::Tuple(count) => {
                        let bindings = tuple_bindings(*count).join(", ");
                        let items: Vec<String> = tuple_bindings(*count)
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        out.push_str(&format!(
                            "{name}::{tag}({bindings}) => ::serde::Value::variant({tag:?}, \
                             ::serde::Value::Seq(::std::vec![{}])),\n",
                            items.join(", ")
                        ));
                    }
                    Payload::Struct(fields) => {
                        let bindings = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| format!("({f:?}, ::serde::Serialize::serialize({f}))"))
                            .collect();
                        out.push_str(&format!(
                            "{name}::{tag} {{ {bindings} }} => ::serde::Value::variant({tag:?}, \
                             ::serde::Value::record(::std::vec![{}])),\n",
                            pairs.join(", ")
                        ));
                    }
                }
            }
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    out
}

fn generate_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut out = impl_header(name, "Deserialize");
    out.push_str(
        "fn deserialize(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {\n",
    );
    match &input.kind {
        Kind::Struct(fields) => {
            out.push_str(&format!("let map = value.as_map({name:?})?;\n"));
            out.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for field in fields {
                out.push_str(&format!(
                    "{field}: ::serde::field(map, {name:?}, {field:?})?,\n"
                ));
            }
            out.push_str("})\n");
        }
        Kind::Enum(variants) => {
            out.push_str("match value {\n");
            // Unit variants: the bare variant name as a string.
            out.push_str("::serde::Value::Str(tag) => match tag.as_str() {\n");
            for variant in variants {
                if matches!(variant.payload, Payload::Unit) {
                    let tag = &variant.name;
                    out.push_str(&format!(
                        "{tag:?} => ::std::result::Result::Ok({name}::{tag}),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant({name:?}, other)),\n}},\n"
            ));
            // Payload variants: a single-entry `{ tag: payload }` map.
            out.push_str(
                "::serde::Value::Map(pairs) if pairs.len() == 1 => {\n\
                 let (tag, payload) = &pairs[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {\n",
            );
            for variant in variants {
                let tag = &variant.name;
                let ctx = format!("{name}::{tag}");
                match &variant.payload {
                    Payload::Unit => {}
                    Payload::Tuple(1) => out.push_str(&format!(
                        "{tag:?} => ::std::result::Result::Ok({name}::{tag}(\
                         ::serde::Deserialize::deserialize(payload)?)),\n"
                    )),
                    Payload::Tuple(count) => {
                        let bindings = tuple_bindings(*count).join(", ");
                        let items: Vec<String> = tuple_bindings(*count)
                            .iter()
                            .map(|b| format!("::serde::Deserialize::deserialize({b})?"))
                            .collect();
                        out.push_str(&format!(
                            "{tag:?} => match payload.as_seq({ctx:?})? {{\n\
                             [{bindings}] => ::std::result::Result::Ok({name}::{tag}({})),\n\
                             items => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"{ctx}: expected {count} elements, got {{}}\", \
                             items.len()))),\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Payload::Struct(fields) => {
                        let assignments: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(map, {ctx:?}, {f:?})?"))
                            .collect();
                        out.push_str(&format!(
                            "{tag:?} => {{\nlet map = payload.as_map({ctx:?})?;\n\
                             ::std::result::Result::Ok({name}::{tag} {{ {} }})\n}},\n",
                            assignments.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant({name:?}, other)),\n}}\n}},\n"
            ));
            out.push_str(&format!(
                "other => ::std::result::Result::Err(\
                 ::serde::Error::invalid_type({name:?}, \"variant\", other)),\n}}\n"
            ));
        }
    }
    out.push_str("}\n}\n");
    out
}

fn tuple_bindings(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("f{i}")).collect()
}

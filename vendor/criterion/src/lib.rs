//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Measures wall-clock time of `Bencher::iter` closures and prints a
//! `name: median x ns/iter (n samples)` line per benchmark — no HTML
//! reports, outlier analysis, or regression baselines. See
//! `vendor/README.md` for scope and caveats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collects timing samples for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times the closure: a short warm-up, then batched timed runs until
    /// the sample budget or the measurement window is exhausted.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up, also used to size the batch so one sample costs
        // roughly measurement_time / sample_size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let deadline = Instant::now() + self.measurement_time;
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() > deadline && self.samples.len() >= 3 {
                break;
            }
        }
    }

    /// The median of the collected samples, in seconds per iteration
    /// (`None` before the first [`iter`](Self::iter) call). This is the
    /// same statistic the per-benchmark report line prints; harnesses
    /// that persist results (e.g. the repo's `BENCH_<pr>.json`
    /// trajectory) read it from here so printed and recorded numbers
    /// cannot diverge.
    pub fn median(&self) -> Option<f64> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        sorted.get(sorted.len() / 2).copied()
    }

    fn report(&self, name: &str) {
        match self.median() {
            None => println!("{name}: no samples"),
            Some(median) => println!(
                "{name}: median {} ({} samples)",
                HumanTime(median),
                self.samples.len()
            ),
        }
    }
}

/// Pretty-prints seconds with an auto-scaled unit.
struct HumanTime(f64);

impl fmt::Display for HumanTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3} us", s * 1e6)
        } else {
            write!(f, "{:.1} ns", s * 1e9)
        }
    }
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A group of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
    }

    /// Benchmarks a closure under the given name.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b));
        self
    }

    /// Benchmarks a closure under the given name and returns the median
    /// seconds/iteration (the statistic the report line prints; `None`
    /// when the closure never called [`Bencher::iter`]). This is the
    /// programmatic entry point for harnesses that persist medians.
    pub fn bench_median(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> Option<f64> {
        let mut median = None;
        self.run(id.to_string(), |b| {
            f(b);
            median = b.median();
        });
        median
    }

    /// Benchmarks a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let name = name.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run(name, |b| f(b));
        group.finish();
        self
    }
}

/// Bundles benchmark functions into a group runner, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function("add", |b| b.iter(|| count = count.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn bench_median_returns_the_reported_statistic() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("median");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let median = group
            .bench_median("noop", |b| b.iter(|| black_box(1u64) + 1))
            .expect("iter was called");
        assert!(median.is_finite() && median > 0.0);
        assert!(group.bench_median("empty", |_| {}).is_none());
        group.finish();
    }
}

//! # atom-rearrange
//!
//! Rust reproduction of *"Design of an FPGA-Based Neutral Atom
//! Rearrangement Accelerator for Quantum Computing"* (Guo et al., DATE
//! 2025, arXiv:2411.12401): the **QRM** quadrant-based rearrangement
//! scheduler, a cycle-accurate model of its FPGA accelerator, the
//! published baselines it is compared against, and the imaging/control
//! substrates that close the Fig. 1 loop.
//!
//! This crate is the umbrella facade: it re-exports the workspace crates
//! and hosts the runnable examples and cross-crate integration tests.
//!
//! | Crate | Content |
//! |-------|---------|
//! | [`core`](qrm_core) | atom grids, AOD move model, QRM scheduler, parallel planning engine, executor |
//! | [`fpga`](qrm_fpga) | cycle-accurate accelerator model, latency + resource models |
//! | [`baselines`](qrm_baselines) | Tetris, PSCA, MTA1 reimplementations |
//! | [`vision`](qrm_vision) | synthetic fluorescence imaging + atom detection |
//! | [`control`](qrm_control) | AWG tone programs, system budgets, end-to-end pipeline |
//! | [`server`](qrm_server) | long-lived planning service: planner registry, concurrent batch submissions, service stats |
//! | [`wire`](qrm_wire) | dependency-free JSON codec for the service's request/response types (`docs/PROTOCOL.md`) |
//! | [`net`](qrm_net) | HTTP/1.1 front end + blocking client over the planning service |
//!
//! ## Quickstart
//!
//! ```
//! use atom_rearrange::prelude::*;
//!
//! # fn main() -> Result<(), qrm_core::Error> {
//! let mut rng = qrm_core::loading::seeded_rng(7);
//! let grid = AtomGrid::random(50, 50, 0.5, &mut rng);
//! let target = Rect::centered(50, 50, 30, 30)?;
//!
//! // Software QRM...
//! let plan = QrmScheduler::new(QrmConfig::default()).plan(&grid, &target)?;
//! // ...or the cycle-accurate FPGA accelerator model.
//! let report = QrmAccelerator::new(AcceleratorConfig::balanced()).run(&grid, &target)?;
//!
//! let exec = Executor::new().run(&grid, &report.plan.schedule)?;
//! assert_eq!(exec.final_grid, report.plan.predicted);
//! println!("analysis in {:.2} us", report.time_us);
//! # Ok(())
//! # }
//! ```
//!
//! ## Batched planning
//!
//! Multi-shot workloads go through
//! [`Planner::plan_batch`](qrm_core::planner::Planner::plan_batch)
//! — every planner supports it, and QRM (software and FPGA model alike)
//! routes the batch through the parallel task-graph engine in
//! [`qrm_core::engine`], planning all shots' quadrants on a shared work
//! queue served by the **persistent work-stealing worker pool**
//! (threads are spawned once per process, never per batch; jobs fan
//! out via per-worker deques). The end-to-end pipeline goes further:
//! every stage of a `Pipeline::run_batch` round — per-shot imaging +
//! detection, batched planning, per-shot execution — is pool jobs.
//! Results are bit-identical to per-shot
//! [`Planner::plan`](qrm_core::planner::Planner::plan) /
//! `Pipeline::run` calls at any worker count (`tests/determinism.rs`).
//!
//! ```
//! use atom_rearrange::prelude::*;
//!
//! # fn main() -> Result<(), qrm_core::Error> {
//! let mut rng = qrm_core::loading::seeded_rng(7);
//! let target = Rect::centered(20, 20, 12, 12)?;
//! let jobs: Vec<(AtomGrid, Rect)> = (0..8)
//!     .map(|_| (AtomGrid::random(20, 20, 0.5, &mut rng), target))
//!     .collect();
//!
//! // Trait-level batching (parallel for QRM, serial default elsewhere)...
//! let plans = QrmScheduler::new(QrmConfig::default()).plan_batch(&jobs)?;
//! assert_eq!(plans.len(), 8);
//!
//! // ...or the engine directly, with an explicit worker count.
//! let plans2 = PlanEngine::new(QrmConfig::default()).with_workers(4).plan_batch(&jobs)?;
//! assert_eq!(plans, plans2);
//!
//! // The end-to-end pipeline batches whole rounds the same way.
//! let truths: Vec<AtomGrid> = (0..4)
//!     .map(|_| AtomGrid::random(20, 20, 0.55, &mut rng))
//!     .collect();
//! let reports = Pipeline::default().run_batch(&truths, &target, 42)?;
//! assert_eq!(reports.len(), 4);
//! # Ok(())
//! # }
//! ```

pub use qrm_baselines;
pub use qrm_control;
pub use qrm_core;
pub use qrm_fpga;
pub use qrm_net;
pub use qrm_server;
pub use qrm_vision;
pub use qrm_wire;

/// One-stop imports for applications.
pub mod prelude {
    pub use qrm_baselines::{Mta1Scheduler, PscaScheduler, TetrisScheduler};
    pub use qrm_control::awg::{AodCalibration, ToneProgram};
    pub use qrm_control::pipeline::{Pipeline, PipelineConfig, PlannerChoice};
    pub use qrm_control::system::{Architecture, SystemModel};
    pub use qrm_core::prelude::*;
    pub use qrm_fpga::accelerator::{AcceleratorConfig, QrmAccelerator};
    pub use qrm_fpga::latency::LatencyModel;
    pub use qrm_fpga::resources::ResourceModel;
    pub use qrm_net::{Client, NetConfig, Server};
    pub use qrm_server::{BatchSpec, PlanService, SubmitBatch};
    pub use qrm_vision::prelude::*;
    pub use qrm_wire::{FromJson, ToJson};
}

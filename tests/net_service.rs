//! The determinism contract's **network leg**, end to end over
//! loopback HTTP: a `BatchReport` fetched through `qrm_net` is
//! bit-identical to the same submission served in-process by
//! `PlanService::submit`, which is bit-identical to a direct
//! `Pipeline::run_batch` — for all seven planners, at batch workers
//! ∈ {1, 4}, on one connection or many.
//!
//! The suite also exercises every documented endpoint and the HTTP
//! front end's failure surface (`docs/PROTOCOL.md`): malformed JSON,
//! schema violations, unknown planners, oversized bodies, bad
//! methods, unknown routes, missing content-length, unsupported
//! transfer encodings, and over-limit specs all produce the
//! documented status + stable `ErrorReply` code, never a hang or a
//! protocol violation. (Chunked request bodies are *served* — and
//! pinned here — since the event-loop front end.)

use std::sync::Arc;
use std::time::Duration;

use qrm_bench::{build_service, planner_choices, ServeConfig};
use qrm_control::pipeline::{Pipeline, PipelineConfig};
use qrm_net::{raw_roundtrip, Client, NetConfig, Server};
use qrm_server::{BatchSpec, PlanService, SubmitBatch};
use qrm_wire::{ErrorReply, FromJson, ToJson};

/// A service with all seven planners (CLI registry names) at the given
/// batch worker count, behind a freshly bound loopback server.
fn serve_all(workers: usize) -> (Server, Arc<PlanService>) {
    serve_all_with(workers, NetConfig::default())
}

fn serve_all_with(workers: usize, config: NetConfig) -> (Server, Arc<PlanService>) {
    let serve = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    let service = Arc::new(build_service(&serve));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), config).expect("bind loopback");
    (server, service)
}

#[test]
fn http_reports_are_bit_identical_for_all_planners_at_workers_1_and_4() {
    for workers in [1usize, 4] {
        let (server, service) = serve_all(workers);
        let mut client = Client::connect(server.addr().to_string());
        for (name, _) in planner_choices() {
            let request = SubmitBatch::new(name, BatchSpec::new(3, 12, 5000 + workers as u64));

            // Leg 4 (network): HTTP submit through the codec...
            let over_http = client.submit(&request).expect("HTTP submit");
            // ...equals leg 3 (service): in-process submit...
            let in_process = service.submit(&request).expect("in-process submit");
            assert_eq!(
                over_http.reports, in_process.reports,
                "{name} workers={workers}: HTTP != in-process"
            );
            assert_eq!(over_http.planner, request.planner);

            // ...equals legs 1-2 (pipeline): a direct batched run with
            // an identically configured pipeline.
            let truths = request.spec.workload().expect("workload").truths;
            let target = request.spec.target().expect("target");
            let pipeline = Pipeline::new(PipelineConfig {
                workers,
                loss_prob: 0.01,
                max_rounds: ServeConfig::default().rounds,
                planner: planner_choices()
                    .into_iter()
                    .find(|(n, _)| *n == name)
                    .expect("registry covers name")
                    .1,
                ..PipelineConfig::default()
            });
            let direct = pipeline
                .run_batch(&truths, &target, request.spec.seed)
                .expect("direct run");
            assert_eq!(
                over_http.reports, direct,
                "{name} workers={workers}: HTTP != direct pipeline"
            );
        }
    }
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (server, _service) = serve_all(1);
    let mut client = Client::connect(server.addr().to_string());
    let request = SubmitBatch::new("typical", BatchSpec::new(1, 12, 9));
    let first = client.submit(&request).expect("first");
    for _ in 0..4 {
        let again = client.submit(&request).expect("repeat");
        assert_eq!(
            again.reports, first.reports,
            "identical specs, identical reports"
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.batches_served, 5);
    // 6 requests so far (5 submits + stats); the healthz probe makes 7 —
    // all on one connection.
    assert_eq!(client.healthz().expect("healthz").status, "ok");
    assert_eq!(server.requests_served(), 7);
    assert_eq!(server.connections_accepted(), 1);
}

#[test]
fn concurrent_http_clients_get_deterministic_reports() {
    let (server, service) = serve_all(1);
    let addr = server.addr().to_string();
    let request = SubmitBatch::new("qrm", BatchSpec::new(2, 12, 77));
    let expected = service.submit(&request).expect("reference");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let addr = addr.clone();
            let request = request.clone();
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for _ in 0..3 {
                    let report = client.submit(&request).expect("submit");
                    assert_eq!(report.reports, expected.reports);
                }
            });
        }
    });
    assert!(server.connections_accepted() >= 4);
}

#[test]
fn stats_endpoint_reports_served_work() {
    let (server, _service) = serve_all(1);
    let mut client = Client::connect(server.addr().to_string());
    client
        .submit(&SubmitBatch::new("tetris", BatchSpec::new(2, 12, 3)))
        .expect("submit");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.batches_served, 1);
    assert_eq!(stats.shots_served, 2);
    assert_eq!(stats.planners.len(), 7);
    let tetris = stats.planners.iter().find(|p| p.name == "tetris").unwrap();
    assert_eq!(tetris.batches, 1);
    assert_eq!(tetris.latency.count(), 1);
    assert!(tetris.latency.mean_us() > 0.0);
}

/// The dataflow-scheduler counters added in PR 7 survive the wire:
/// `GET /v1/stats` carries a `scheduler` object whose totals reflect
/// the served batch (scheduler lag and queue depth are what makes
/// admission starvation observable remotely — `docs/PROTOCOL.md`).
#[test]
fn stats_endpoint_surfaces_scheduler_totals() {
    let (server, service) = serve_all(2);
    let mut client = Client::connect(server.addr().to_string());
    client
        .submit(&SubmitBatch::new("tetris", BatchSpec::new(3, 12, 9)))
        .expect("submit");
    let stats = client.stats().expect("stats");
    // Every shot was planned at least once and each round is several
    // scheduler tasks, so the counters are visibly nonzero.
    assert!(stats.scheduler.planned_shots >= 3);
    assert!(stats.scheduler.plan_groups >= 1);
    assert!(stats.scheduler.tasks_dispatched > stats.scheduler.planned_shots);
    // The remote snapshot matches the in-process one bit-for-bit.
    assert_eq!(stats.scheduler, service.stats().scheduler);
    // Queue-depth gauges ride alongside for the same observability.
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.inflight, 0);
}

#[test]
fn healthz_lists_the_registered_planners() {
    let (server, _service) = serve_all(1);
    let mut client = Client::connect(server.addr().to_string());
    let health = client.healthz().expect("healthz");
    assert_eq!(health.status, "ok");
    let mut expected: Vec<String> = planner_choices()
        .iter()
        .map(|(n, _)| n.to_string())
        .collect();
    expected.sort();
    assert_eq!(health.planners, expected);
}

/// Expects `client.submit` to fail with the given HTTP status and
/// `ErrorReply` code.
fn assert_http_error(
    result: Result<qrm_server::BatchReport, qrm_net::ClientError>,
    status: u16,
    code: &str,
) {
    match result {
        Err(qrm_net::ClientError::Http {
            status: got,
            reply: Some(reply),
        }) => {
            assert_eq!(got, status, "reply {reply}");
            assert_eq!(reply.code, code, "reply {reply}");
        }
        other => panic!("expected HTTP {status} {code}, got {other:?}"),
    }
}

#[test]
fn unknown_planner_is_a_typed_404() {
    let (server, _service) = serve_all(1);
    let mut client = Client::connect(server.addr().to_string());
    assert_http_error(
        client.submit(&SubmitBatch::new("warp-drive", BatchSpec::new(1, 12, 1))),
        404,
        "unknown_planner",
    );
}

#[test]
fn degenerate_spec_is_a_typed_422() {
    let (server, _service) = serve_all(1);
    let mut client = Client::connect(server.addr().to_string());
    // size 0 passes the wire schema but fails workload expansion.
    assert_http_error(
        client.submit(&SubmitBatch::new("qrm", BatchSpec::new(1, 0, 1))),
        422,
        "planning_failed",
    );
}

#[test]
fn out_of_range_fill_is_a_typed_422_not_a_panic() {
    // `fill` is a probability the workload generator *asserts* on; an
    // unvalidated remote value would panic the connection handler and
    // close the stream with no reply. The server must range-check it.
    let (server, service) = serve_all(1);
    let mut client = Client::connect(server.addr().to_string());
    for fill in [2.0, -1.0] {
        assert_http_error(
            client.submit(&SubmitBatch::new(
                "qrm",
                BatchSpec::new(1, 12, 1).with_fill(fill),
            )),
            422,
            "spec_invalid",
        );
    }
    // Non-finite floats encode as JSON null (the codec's documented
    // lossy mapping), which fails the schema before the range check —
    // still typed, still not a panic.
    for fill in [f64::NAN, f64::INFINITY] {
        assert_http_error(
            client.submit(&SubmitBatch::new(
                "qrm",
                BatchSpec::new(1, 12, 1).with_fill(fill),
            )),
            400,
            "bad_request",
        );
    }
    assert_eq!(service.stats().batches_served, 0);
    // The boundary values are valid.
    for fill in [0.0, 1.0] {
        client
            .submit(&SubmitBatch::new(
                "qrm",
                BatchSpec::new(1, 12, 1).with_fill(fill),
            ))
            .expect("boundary fill serves");
    }
}

#[test]
fn client_does_not_resubmit_after_a_response_timeout() {
    // A read timeout after the request was delivered must NOT retry:
    // the server may still be planning, and resubmitting would execute
    // the batch twice. Fake server: answers the first request (so the
    // second travels the retry-eligible *reused*-connection path),
    // swallows the second, never replies. A retrying client would open
    // a second connection — the counter must stay at one.
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicU64, Ordering};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake");
    let addr = listener.local_addr().expect("addr");
    let connections = Arc::new(AtomicU64::new(0));
    let seen = Arc::clone(&connections);
    let acceptor = std::thread::spawn(move || {
        for stream in listener.incoming().take(2) {
            let Ok(mut stream) = stream else { break };
            if seen.fetch_add(1, Ordering::SeqCst) > 0 {
                continue; // a retry's connection: count it, drop it
            }
            let mut buf = [0u8; 2048];
            let _ = stream.read(&mut buf); // first request (healthz)
            let body = "{\"status\":\"ok\",\"planners\":[]}";
            let _ = write!(
                stream,
                "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.read(&mut buf); // second request: swallow it,
            std::thread::sleep(Duration::from_millis(600)); // reply never
        }
    });

    let mut client =
        Client::connect(addr.to_string()).with_read_timeout(Duration::from_millis(200));
    client.healthz().expect("warm-up on connection 1");
    let second = client.submit(&SubmitBatch::new("typical", BatchSpec::new(1, 12, 1)));
    assert!(
        matches!(second, Err(qrm_net::ClientError::Io(_))),
        "{second:?}"
    );
    std::thread::sleep(Duration::from_millis(300));
    assert_eq!(
        connections.load(Ordering::SeqCst),
        1,
        "a timed-out submission must not be retried on a new connection"
    );
    drop(client);
    let _ = std::net::TcpStream::connect(addr); // unblock take(2)
    acceptor.join().expect("fake server thread");
}

#[test]
fn over_limit_specs_are_refused_before_planning() {
    let config = NetConfig {
        max_shots: 4,
        max_size: 32,
        ..NetConfig::default()
    };
    let (server, service) = serve_all_with(1, config);
    let mut client = Client::connect(server.addr().to_string());
    assert_http_error(
        client.submit(&SubmitBatch::new("qrm", BatchSpec::new(5, 12, 1))),
        422,
        "spec_too_large",
    );
    assert_http_error(
        client.submit(&SubmitBatch::new("qrm", BatchSpec::new(1, 34, 1))),
        422,
        "spec_too_large",
    );
    assert_eq!(
        service.stats().batches_served,
        0,
        "nothing reached the gate"
    );
    // At the limits, the submission is served.
    client
        .submit(&SubmitBatch::new("qrm", BatchSpec::new(4, 32, 1)))
        .expect("within limits");
}

/// Sends raw bytes and returns `(status, body)` split from the
/// response.
fn raw_exchange(server: &Server, payload: &str) -> (u16, String) {
    let response = raw_roundtrip(server.addr(), payload.as_bytes(), &NetConfig::default())
        .expect("raw exchange");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("body after blank line");
    (status, body.to_string())
}

/// Sends raw bytes and returns `(status, ErrorReply)` parsed from the
/// response.
fn raw_error(server: &Server, payload: &str) -> (u16, ErrorReply) {
    let (status, body) = raw_exchange(server, payload);
    let reply = ErrorReply::from_json(&body).expect("typed error body");
    (status, reply)
}

#[test]
fn malformed_json_is_a_typed_400() {
    let (server, _service) = serve_all(1);
    let body = "{\"planner\": \"qrm\", \"spec\": {";
    let (status, reply) = raw_error(
        &server,
        &format!(
            "POST /v1/batch HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status, 400);
    assert_eq!(reply.code, "bad_json");
}

#[test]
fn schema_mismatch_is_a_typed_400() {
    let (server, _service) = serve_all(1);
    let body = "{\"planner\": 7, \"spec\": {\"shots\":1,\"size\":12,\"fill\":0.5,\"seed\":1}}";
    let (status, reply) = raw_error(
        &server,
        &format!(
            "POST /v1/batch HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status, 400);
    assert_eq!(reply.code, "bad_request");
}

#[test]
fn oversized_body_is_a_typed_413_without_reading_the_body() {
    let config = NetConfig {
        max_body_bytes: 256,
        ..NetConfig::default()
    };
    let (server, _service) = serve_all_with(1, config);
    // Declare a body far over the limit; send none of it — the server
    // must refuse from the header alone.
    let (status, reply) = raw_error(
        &server,
        "POST /v1/batch HTTP/1.1\r\nconnection: close\r\ncontent-length: 1000000\r\n\r\n",
    );
    assert_eq!(status, 413);
    assert_eq!(reply.code, "payload_too_large");
}

#[test]
fn bad_method_is_a_typed_405_and_unknown_route_a_404() {
    let (server, _service) = serve_all(1);
    let (status, reply) = raw_error(
        &server,
        "DELETE /v1/batch HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);
    assert_eq!(reply.code, "method_not_allowed");

    let (status, reply) = raw_error(
        &server,
        "GET /v2/everything HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    assert_eq!(reply.code, "not_found");
}

#[test]
fn post_without_content_length_is_a_typed_411() {
    let (server, _service) = serve_all(1);
    let (status, reply) = raw_error(
        &server,
        "POST /v1/batch HTTP/1.1\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 411);
    assert_eq!(reply.code, "length_required");
}

#[test]
fn chunked_request_bodies_are_served() {
    let (server, service) = serve_all(1);
    let body = SubmitBatch::new("typical", BatchSpec::new(1, 12, 4)).to_json();
    let (first, rest) = body.split_at(body.len() / 2);
    let payload = format!(
        "POST /v1/batch HTTP/1.1\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n\
         {:x}\r\n{first}\r\n{:x}\r\n{rest}\r\n0\r\n\r\n",
        first.len(),
        rest.len(),
    );
    let (status, response) = raw_exchange(&server, &payload);
    assert_eq!(status, 200, "chunked submission serves: {response}");
    // The de-chunked submission really reached the service.
    assert_eq!(service.stats().batches_served, 1);
}

#[test]
fn non_chunked_transfer_encodings_are_a_typed_501() {
    let (server, _service) = serve_all(1);
    let (status, reply) = raw_error(
        &server,
        "POST /v1/batch HTTP/1.1\r\ntransfer-encoding: gzip\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 501);
    assert_eq!(reply.code, "unsupported_transfer_encoding");
}

#[test]
fn chunked_body_conflicting_with_content_length_is_refused() {
    // CL + TE on one request is the request-smuggling shape; the
    // server refuses it outright rather than picking a winner.
    let (server, _service) = serve_all(1);
    let (status, reply) = raw_error(
        &server,
        "POST /v1/batch HTTP/1.1\r\ntransfer-encoding: chunked\r\ncontent-length: 5\r\n\
         connection: close\r\n\r\n0\r\n\r\n",
    );
    assert_eq!(status, 400);
    assert_eq!(reply.code, "bad_request");
}

#[test]
fn idle_keep_alive_connections_are_closed_and_clients_reconnect() {
    let config = NetConfig {
        keep_alive: Duration::from_millis(100),
        ..NetConfig::default()
    };
    let (server, _service) = serve_all_with(1, config);
    let mut client = Client::connect(server.addr().to_string());
    let request = SubmitBatch::new("typical", BatchSpec::new(1, 12, 4));
    let first = client.submit(&request).expect("first");
    // Outlive the server's idle timeout, then reuse the (now stale)
    // connection: the client must transparently reconnect.
    std::thread::sleep(Duration::from_millis(300));
    let second = client.submit(&request).expect("after idle close");
    assert_eq!(second.reports, first.reports);
    assert!(server.connections_accepted() >= 2, "a reconnect happened");
}

#[test]
fn trickled_request_bytes_cannot_pin_a_connection_past_the_deadline() {
    // A per-read idle timeout alone would let a peer send one byte per
    // interval forever, pinning server state. Once a request's first
    // byte arrives, the total request deadline must close the
    // connection no matter how steadily bytes trickle in.
    use std::io::{Read, Write};

    let config = NetConfig {
        request_timeout: Duration::from_millis(300),
        keep_alive: Duration::from_secs(5), // far larger: must NOT be the bound
        ..NetConfig::default()
    };
    let (server, _service) = serve_all_with(1, config);
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("timeout");
    let started = std::time::Instant::now();
    let mut closed = false;
    for _ in 0..40 {
        if stream.write_all(b"X").is_err() {
            closed = true;
            break;
        }
        let mut buf = [0u8; 64];
        if matches!(stream.read(&mut buf), Ok(0)) {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(closed, "server never closed the trickling connection");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "closed by the request deadline, not the idle timeout"
    );
    // The pool slot is free again: a healthy request serves promptly.
    let mut client = Client::connect(server.addr().to_string());
    assert_eq!(client.healthz().expect("alive after trickle").status, "ok");
}

#[test]
fn raw_roundtrip_timeout_tracks_the_configured_deadlines() {
    // `raw_roundtrip` used to hardcode a 10 s read timeout, silently
    // disagreeing with whatever deadlines the server was configured
    // with. It now derives its wait from the config: with short
    // configured deadlines, an unanswered (incomplete) request must
    // resolve in roughly keep_alive + request_timeout — not 10 s.
    let config = NetConfig {
        keep_alive: Duration::from_millis(100),
        request_timeout: Duration::from_millis(200),
        ..NetConfig::default()
    };
    let (server, _service) = serve_all_with(1, config.clone());
    let started = std::time::Instant::now();
    // Incomplete head: the server's request deadline closes the
    // connection; the helper's read-to-EOF then returns empty.
    let response = raw_roundtrip(server.addr(), b"POST /v1/batch HTTP/1.1\r\n", &config)
        .expect("deadline close yields clean EOF");
    assert_eq!(response, "", "no reply to an incomplete request");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "bounded by the configured deadlines, not a hardcoded 10 s: {:?}",
        started.elapsed()
    );
}

#[test]
fn shutdown_stops_accepting() {
    let (mut server, _service) = serve_all(1);
    let addr = server.addr().to_string();
    let mut client = Client::connect(addr.clone());
    client.healthz().expect("alive before shutdown");
    server.shutdown();
    let mut fresh = Client::connect(addr);
    assert!(
        fresh.healthz().is_err(),
        "new connections must fail after shutdown"
    );
}

#[test]
fn wire_text_of_a_report_is_stable_across_resubmission() {
    // Byte-level determinism of the full wire pipeline: two identical
    // submissions produce byte-identical JSON payloads (wall_us is the
    // one measured field, so compare with it stripped via decode).
    let (server, service) = serve_all(1);
    let mut client = Client::connect(server.addr().to_string());
    let request = SubmitBatch::new("hybrid", BatchSpec::new(2, 12, 31));
    let a = client.submit(&request).expect("a");
    let b = client.submit(&request).expect("b");
    assert_eq!(a.reports, b.reports);
    // And the codec itself is deterministic: re-encoding the decoded
    // payload gives identical text both times.
    assert_eq!(a.reports.to_json(), b.reports.to_json());
    drop(server);
    // The service outlives its front end (Arc), still serving in-process.
    assert!(service.submit(&request).is_ok());
}

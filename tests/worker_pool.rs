//! Integration tests for the persistent worker pool and the reusable
//! [`PlanContext`]: after one-time pool initialisation, batched planning
//! must never spawn OS threads again, and scratch reuse must be
//! invisible in the results — fresh context, warm context, and the
//! serial path all produce bit-identical plans.

use atom_rearrange::prelude::*;
use qrm_core::scheduler::Plan;

fn workload(n: usize, size: usize, seed: u64) -> Vec<(AtomGrid, Rect)> {
    let mut rng = qrm_core::loading::seeded_rng(seed);
    let side = ((size * 3 / 5) & !1).max(2);
    (0..n)
        .map(|_| {
            (
                AtomGrid::random(size, size, 0.5, &mut rng),
                Rect::centered(size, size, side, side).unwrap(),
            )
        })
        .collect()
}

#[test]
fn pipeline_rounds_spawn_zero_threads_after_pool_init() {
    // Acceptance criterion: two consecutive `Pipeline::run_batch` rounds
    // with `workers >= 2` spawn zero new OS threads after pool init,
    // observable through the pool stats counter.
    let init = rayon::global_pool_stats(); // forces pool initialisation
    assert_eq!(init.threads as u64, init.threads_spawned);

    let mut rng = qrm_core::loading::seeded_rng(60);
    let truths: Vec<AtomGrid> = (0..3)
        .map(|_| AtomGrid::random(16, 16, 0.6, &mut rng))
        .collect();
    let target = Rect::centered(16, 16, 8, 8).unwrap();
    let pipeline = Pipeline::new(PipelineConfig {
        workers: 2,
        ..PipelineConfig::default()
    });

    let first = pipeline.run_batch(&truths, &target, 101).unwrap();
    let before = rayon::global_pool_stats();
    let second = pipeline.run_batch(&truths, &target, 101).unwrap();
    let after = rayon::global_pool_stats();

    assert_eq!(first, second, "same seed, same reports");
    assert_eq!(
        before.threads_spawned, after.threads_spawned,
        "a planning round must only enqueue pool jobs, never spawn threads"
    );
    assert!(
        after.jobs_executed > before.jobs_executed,
        "workers >= 2 must actually schedule engine workers on the pool"
    );
}

#[test]
fn plan_context_reuse_is_bit_identical_and_actually_reuses() {
    let jobs = workload(4, 20, 71);
    let engine = PlanEngine::new(QrmConfig::default()).with_workers(2);

    let mut ctx = PlanContext::new();
    let fresh = engine.plan_batch_in(&mut ctx, &jobs).unwrap();
    assert!(
        ctx.idle_states() > 0,
        "a completed batch must park recycled kernel scratch in the context"
    );
    let warm = engine.plan_batch_in(&mut ctx, &jobs).unwrap();

    // Independent engines (cold contexts) and the serial planner agree.
    let independent = PlanEngine::new(QrmConfig::default())
        .with_workers(2)
        .plan_batch(&jobs)
        .unwrap();
    let serial = QrmScheduler::new(QrmConfig::default());
    let expected: Vec<Plan> = jobs
        .iter()
        .map(|(g, t)| serial.plan(g, t).unwrap())
        .collect();

    assert_eq!(fresh, warm, "warm context changed results");
    assert_eq!(fresh, independent, "context reuse changed results");
    assert_eq!(fresh, expected, "pooled path diverged from serial");
}

#[test]
fn plan_context_reuse_covers_the_inline_serial_path() {
    // workers == 1 takes the inline path; scratch recycling must be
    // bit-identical there too.
    let jobs = workload(3, 16, 72);
    let engine = PlanEngine::new(QrmConfig::default()).with_workers(1);
    let mut ctx = PlanContext::new();
    let first = engine.plan_batch_in(&mut ctx, &jobs).unwrap();
    assert!(ctx.idle_states() > 0);
    let second = engine.plan_batch_in(&mut ctx, &jobs).unwrap();
    assert_eq!(first, second);
}

#[test]
fn scheduler_internal_context_survives_varied_batches() {
    // One long-lived scheduler (the Pipeline usage pattern) planning
    // batches of different sizes and grid dimensions: recycled scratch
    // from a 20x20 round must be correctly resized for a 16x16 round.
    let scheduler = QrmScheduler::new(QrmConfig::default()).with_workers(2);
    for (n, size, seed) in [
        (4usize, 20usize, 80u64),
        (2, 16, 81),
        (5, 20, 82),
        (1, 30, 83),
    ] {
        let jobs = workload(n, size, seed);
        let batched = scheduler.plan_batch(&jobs).unwrap();
        for (i, (grid, target)) in jobs.iter().enumerate() {
            let single = scheduler.plan(grid, target).unwrap();
            assert_eq!(single, batched[i], "size {size}, shot {i}");
        }
    }
}

#[test]
fn concurrent_batches_each_get_a_warm_context() {
    // The engine keeps a *pool* of contexts: a lone batch parks one
    // warm context; concurrent batches each check out their own (the
    // overflow caller gets a fresh context that is then parked too), so
    // a steady stream of concurrent callers stops planning cold. The
    // old behaviour — try_lock with a cold-context fallback — left
    // every loser of the race allocating from scratch.
    let jobs = workload(3, 16, 95);
    let engine = PlanEngine::new(QrmConfig::default()).with_workers(2);
    let expected = engine.plan_batch(&jobs).unwrap();
    assert_eq!(engine.idle_contexts(), 1, "one batch parks one context");
    assert!(
        engine.warm_states() > 0,
        "the parked context must hold recycled kernel scratch"
    );

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| s.spawn(|| engine.plan_batch(&jobs).unwrap()))
            .collect();
        for handle in handles {
            assert_eq!(
                handle.join().unwrap(),
                expected,
                "context checkout must not change plans"
            );
        }
    });
    let idle = engine.idle_contexts();
    assert!(
        (1..=2).contains(&idle),
        "concurrent batches park their contexts back (got {idle})"
    );
    assert!(engine.warm_states() > 0, "parked contexts stay warm");
}

#[test]
fn fpga_batches_reuse_the_pool_too() {
    let jobs = workload(3, 16, 90);
    let accel = QrmAccelerator::new(AcceleratorConfig::balanced()).with_workers(2);
    let first = accel.run_batch(&jobs).unwrap();
    let before = rayon::global_pool_stats();
    let second = accel.run_batch(&jobs).unwrap();
    let after = rayon::global_pool_stats();
    assert_eq!(first, second);
    assert_eq!(before.threads_spawned, after.threads_spawned);
}

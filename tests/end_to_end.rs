//! Cross-crate integration: the full Fig. 1 loop and multi-size
//! assembly runs.

use atom_rearrange::prelude::*;

#[test]
fn image_detect_plan_execute_defect_free() {
    let mut rng = qrm_core::loading::seeded_rng(101);
    let truth = LoadModel::new(0.55)
        .load_at_least(20, 20, 170, 64, &mut rng)
        .unwrap();
    let target = Rect::centered(20, 20, 12, 12).unwrap();

    // Camera + detection.
    let layout = TrapLayout::new(20, 20, 6.0, 4.0);
    let frame = render(&truth, &layout, &ImagingConfig::default(), &mut rng);
    let detection = Detector::default().detect(&frame, &layout).unwrap();
    assert_eq!(detection.grid, truth, "high-SNR detection must be exact");

    // Plan on detected occupancy, execute on the true one.
    let plan = QrmScheduler::new(QrmConfig::default())
        .plan(&detection.grid, &target)
        .unwrap();
    let report = Executor::new().run(&truth, &plan.schedule).unwrap();
    assert_eq!(report.final_grid, plan.predicted);
    assert!(report.target_filled(&target).unwrap());

    // AWG compilation consumes every move.
    let program = ToneProgram::compile(
        &plan.schedule,
        &AodCalibration::default(),
        &MotionModel::typical(),
    )
    .unwrap();
    assert_eq!(program.segments().len(), plan.schedule.len());
    assert!(program.total_duration_us() > 0.0);
}

#[test]
fn assembly_success_across_sizes() {
    // The paper's size sweep: every even size from 10 to 90 with a ~60%
    // centred target must assemble at 50% fill (given enough atoms).
    let mut rng = qrm_core::loading::seeded_rng(102);
    for size in [10usize, 30, 50, 70, 90] {
        let side = (size * 3 / 5) & !1;
        let target = Rect::centered(size, size, side, side).unwrap();
        let need = target.area();
        // QRM never moves atoms across quadrant boundaries, so "enough
        // atoms" means enough in EVERY quadrant (with a supply margin),
        // not just globally — redraw until the instance is feasible.
        // Small quadrants need a larger relative margin because the
        // balanced kernel's parking heuristic is not a complete
        // transportation solver (see tests/properties.rs); at paper
        // scale a ~12% margin is comfortably sufficient.
        let map = qrm_core::quadrant::QuadrantMap::new(size, size).unwrap();
        let quadrant_need = need / 4;
        let (num, den) = if map.quadrant_height() * map.quadrant_width() <= 100 {
            (3, 2) // 50% margin for small quadrants
        } else {
            (9, 8) // ~12% margin at paper scale
        };
        let grid = (0..256)
            .find_map(|_| {
                let g = LoadModel::new(0.5)
                    .load_at_least(size, size, need + need / 8, 64, &mut rng)
                    .unwrap();
                let supplied = map
                    .split(&g)
                    .unwrap()
                    .iter()
                    .all(|q| q.atom_count() * den >= quadrant_need * num);
                supplied.then_some(g)
            })
            .expect("a per-quadrant-feasible instance within 256 draws");
        let plan = QrmScheduler::new(QrmConfig::default())
            .plan(&grid, &target)
            .unwrap();
        let report = Executor::new().run(&grid, &plan.schedule).unwrap();
        assert_eq!(report.final_grid, plan.predicted, "size {size}");
        assert!(
            plan.filled,
            "size {size}: {} defects left",
            plan.defects(&target).unwrap()
        );
        assert_eq!(
            report.final_grid.atom_count(),
            grid.atom_count(),
            "size {size}: atoms not conserved"
        );
    }
}

#[test]
fn pipeline_recovers_from_transport_loss() {
    // High-SNR imaging, 1% per-move transport loss: the multi-round loop
    // must repair the losses and assemble the target.
    let mut rng = qrm_core::loading::seeded_rng(103);
    let truth = LoadModel::new(0.55)
        .load_at_least(20, 20, 180, 64, &mut rng)
        .unwrap();
    let target = Rect::centered(20, 20, 10, 10).unwrap();
    let config = PipelineConfig {
        loss_prob: 0.01,
        max_rounds: 6,
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(config)
        .run(&truth, &target, &mut rng)
        .unwrap();
    assert!(
        report.filled,
        "pipeline failed after {} rounds",
        report.rounds.len()
    );
}

#[test]
fn pipeline_degrades_gracefully_at_low_snr() {
    // Per-trap detection fidelity ~0.97 injects ~10 fresh classification
    // errors per 400-trap frame — physically, assembly cannot converge at
    // that imaging quality. The pipeline must neither crash nor lie: it
    // keeps most of the target filled and reports honest per-round
    // fidelities and collision ejections.
    let mut rng = qrm_core::loading::seeded_rng(103);
    let truth = LoadModel::new(0.55)
        .load_at_least(20, 20, 180, 64, &mut rng)
        .unwrap();
    let target = Rect::centered(20, 20, 10, 10).unwrap();
    let config = PipelineConfig {
        imaging: ImagingConfig::low_snr(),
        loss_prob: 0.01,
        max_rounds: 6,
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(config)
        .run(&truth, &target, &mut rng)
        .unwrap();
    assert_eq!(report.rounds.len(), 6, "no convergence expected");
    for round in &report.rounds {
        assert!(round.detection_fidelity > 0.9);
    }
    let filled_cells = report.final_state.count_in(&target).unwrap();
    assert!(
        filled_cells * 10 >= target.area() * 8,
        "only {filled_cells}/{} target cells held",
        target.area()
    );
}

#[test]
fn bitfield_io_matches_accelerator_contract() {
    // The detection unit hands the accelerator a flat bitfield (paper
    // §IV-A); the round trip through that encoding must be lossless.
    let mut rng = qrm_core::loading::seeded_rng(104);
    let grid = AtomGrid::random(50, 50, 0.5, &mut rng);
    let bytes = grid.to_bitfield();
    assert_eq!(bytes.len(), (50 * 50usize).div_ceil(8));
    let back = AtomGrid::from_bitfield(50, 50, &bytes).unwrap();
    assert_eq!(back, grid);

    let target = Rect::centered(50, 50, 30, 30).unwrap();
    let accel = QrmAccelerator::new(AcceleratorConfig::paper());
    let a = accel.run(&grid, &target).unwrap();
    let b = accel.run(&back, &target).unwrap();
    assert_eq!(a.plan.schedule, b.plan.schedule);
}

#[test]
fn infeasible_instance_reports_not_filled() {
    // Far too few atoms: planners must not panic and must report the
    // shortfall honestly.
    let mut rng = qrm_core::loading::seeded_rng(105);
    let grid = AtomGrid::random(20, 20, 0.15, &mut rng);
    let target = Rect::centered(20, 20, 12, 12).unwrap();
    assert!(matches!(
        TargetSpec::Exact(target).feasible_on(&grid),
        Err(qrm_core::Error::InsufficientAtoms { .. })
    ));
    let plan = QrmScheduler::new(QrmConfig::default())
        .plan(&grid, &target)
        .unwrap();
    assert!(!plan.filled);
    let report = Executor::new().run(&grid, &plan.schedule).unwrap();
    assert_eq!(report.final_grid.atom_count(), grid.atom_count());
}

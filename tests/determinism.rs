//! The cross-worker determinism contract of the fully sharded pipeline.
//!
//! Every stage of a `Pipeline::run_batch` round — per-shot imaging and
//! detection, batched planning, per-shot schedule execution — runs as
//! jobs on the persistent work-stealing pool, with each shot driven by
//! its own derived RNG (`Pipeline::shot_rng`). This suite pins the
//! resulting contract for **all seven planners**:
//!
//! * reports are **bit-identical** for workers ∈ {1, 2, 4, 8} (the
//!   acceptance criterion of the sharding work) and equal to running
//!   each shot alone through `Pipeline::run`;
//! * consecutive rounds at `workers >= 2` spawn **zero** OS threads
//!   (jobs only), while the pool's steal counter is live.
//!
//! Stats note: the global pool's counters are process-wide and tests in
//! this binary run concurrently, so counter assertions here are
//! monotone (strict increase / exact non-increase of spawns), never
//! equalities between deltas.

use std::sync::atomic::{AtomicBool, Ordering};

use atom_rearrange::prelude::*;
use proptest::prelude::*;
use qrm_bench::planner_choices;

fn truths(shots: usize, size: usize, fill: f64, seed: u64) -> Vec<AtomGrid> {
    let mut rng = qrm_core::loading::seeded_rng(seed);
    (0..shots)
        .map(|_| AtomGrid::random(size, size, fill, &mut rng))
        .collect()
}

fn pipeline_for(choice: &PlannerChoice, workers: usize) -> Pipeline {
    Pipeline::new(PipelineConfig {
        planner: choice.clone(),
        workers,
        // Transport loss exercises the executor's RNG draws, the part
        // of a round most sensitive to per-shot stream mixups.
        loss_prob: 0.01,
        max_rounds: 3,
        ..PipelineConfig::default()
    })
}

/// Forces at least one deterministic steal on the global pool: job A
/// spawns job B onto the deque of whichever thread runs A (worker or
/// helping caller alike own one) and then spins in the scope *body*
/// until B has run. A's thread is busy spinning, so B can only execute
/// via a **steal** by another pool participant — and one always exists
/// (the pool has >= 1 worker and the outermost caller helps). On
/// multi-core hosts the sharded rounds steal on their own; this makes
/// the counter assertion below deterministic on a 1-core runner too.
fn force_one_steal() {
    rayon::scope(|outer| {
        outer.spawn(|_| {
            let done = AtomicBool::new(false);
            rayon::scope(|inner| {
                inner.spawn(|_| done.store(true, Ordering::Release));
                while !done.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            });
        });
    });
}

/// Acceptance criterion: `run_batch` output is bit-identical across
/// workers ∈ {1, 2, 4, 8} for all seven planners, and equal to per-shot
/// `run` with the derived RNG.
#[test]
fn run_batch_is_bit_identical_across_worker_counts_for_all_planners() {
    let truths = truths(3, 12, 0.6, 501);
    let target = Rect::centered(12, 12, 6, 6).unwrap();
    let base_seed = 4242;
    for (name, choice) in planner_choices() {
        let baseline = pipeline_for(&choice, 1)
            .run_batch(&truths, &target, base_seed)
            .unwrap();
        for (i, truth) in truths.iter().enumerate() {
            let mut rng = Pipeline::shot_rng(base_seed, i);
            let single = pipeline_for(&choice, 1)
                .run(truth, &target, &mut rng)
                .unwrap();
            assert_eq!(single, baseline[i], "{name}: shot {i} != batched shot");
        }
        for workers in [2usize, 4, 8] {
            let batched = pipeline_for(&choice, workers)
                .run_batch(&truths, &target, base_seed)
                .unwrap();
            assert_eq!(batched, baseline, "{name}: workers={workers} diverged");
        }
    }
}

/// Batch composition must not leak between shots: a shot's report is
/// the same whether its neighbours finish early, fail to fill, or are
/// absent entirely.
#[test]
fn shot_reports_are_independent_of_batch_composition() {
    let all = truths(4, 12, 0.6, 777);
    let target = Rect::centered(12, 12, 6, 6).unwrap();
    let (_, choice) = planner_choices().remove(0);
    let pipeline = pipeline_for(&choice, 4);
    let full = pipeline.run_batch(&all, &target, 99).unwrap();
    // Same truth at the same index, different neighbours.
    let trimmed = pipeline.run_batch(&all[..2], &target, 99).unwrap();
    assert_eq!(
        full[..2],
        trimmed[..],
        "dropping later shots changed earlier reports"
    );
}

/// Acceptance criterion: consecutive sharded rounds at `workers >= 2`
/// spawn zero extra OS threads while `global_pool_stats()` shows
/// nonzero steals.
#[test]
fn sharded_rounds_spawn_no_threads_and_stealing_is_live() {
    let init = rayon::global_pool_stats(); // forces pool initialisation
    let truths = truths(3, 16, 0.6, 600);
    let target = Rect::centered(16, 16, 8, 8).unwrap();
    let (_, choice) = planner_choices().remove(0);
    let pipeline = pipeline_for(&choice, 2);

    let first = pipeline.run_batch(&truths, &target, 314).unwrap();
    force_one_steal();
    let mid = rayon::global_pool_stats();
    let second = pipeline.run_batch(&truths, &target, 314).unwrap();
    let after = rayon::global_pool_stats();

    assert_eq!(first, second, "same seed, same reports");
    assert_eq!(
        init.threads_spawned, after.threads_spawned,
        "sharded rounds must only enqueue pool jobs, never spawn threads"
    );
    assert!(
        after.jobs_executed > mid.jobs_executed,
        "workers >= 2 must schedule imaging/planning/execution as pool jobs"
    );
    assert!(
        after.steals > 0,
        "work stealing must be live while rounds run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the worker-count contract: for random array
    /// sizes, fills, seeds, and batch sizes, `run_batch` reports
    /// (plans, fidelities, round counts, final grids) are bit-identical
    /// across workers ∈ {1, 2, 4} and equal to per-shot `run`, for all
    /// seven planners of `qrm_bench::planner_choices()` (the config
    /// twin of `planner_matrix()`).
    #[test]
    fn run_batch_reports_match_run_for_every_planner(
        half in 6usize..9,
        fill in 0.45f64..0.65,
        seed in any::<u64>(),
        shots in 1usize..4,
    ) {
        let size = half * 2;
        let side = ((size * 3 / 5) & !1).max(2);
        let target = Rect::centered(size, size, side, side).unwrap();
        let truths = truths(shots, size, fill, seed);
        let base_seed = seed ^ 0xa5a5;
        for (name, choice) in planner_choices() {
            let baseline = pipeline_for(&choice, 1)
                .run_batch(&truths, &target, base_seed)
                .unwrap();
            for (i, truth) in truths.iter().enumerate() {
                let mut rng = Pipeline::shot_rng(base_seed, i);
                let single = pipeline_for(&choice, 1).run(truth, &target, &mut rng).unwrap();
                prop_assert_eq!(&single, &baseline[i], "{}: shot {}", name, i);
            }
            for workers in [2usize, 4] {
                let batched = pipeline_for(&choice, workers)
                    .run_batch(&truths, &target, base_seed)
                    .unwrap();
                prop_assert_eq!(&batched, &baseline, "{}: workers={}", name, workers);
            }
        }
    }
}

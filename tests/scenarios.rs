//! The determinism contract's **seventh leg**: hostile-array
//! scenarios.
//!
//! Every [`Scenario`] variant — uniform fill, defect maps, elevated
//! atom loss, multi-zone target lattices, spatially correlated fills —
//! must produce **bit-identical** reports across batch worker counts
//! {1, 2, 4, 8}, across the shot-level dataflow scheduler vs the
//! preserved stage-barrier baseline, and across HTTP vs in-process
//! submission, for all seven planners. (CI runs this suite under
//! `QRM_POOL_THREADS ∈ {1, 8}`, covering the pool dimension too.)
//!
//! The move-trace export is the leg's independent witness: replaying a
//! shot's exported trace through [`TraceReplayer`] — plain data, no
//! planner, no RNG — must land on the same final occupancy the
//! pipeline reported, proving the reports describe physically
//! realisable move sequences rather than merely agreeing with each
//! other.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use qrm_bench::planner_choices;
use qrm_control::pipeline::{BatchRun, Pipeline, PipelineConfig, PlannerChoice};
use qrm_core::trace::TraceReplayer;
use qrm_server::{BatchSpec, Scenario, SubmitBatch};

/// One representative of every scenario variant, tuned hostile enough
/// to perturb planning (dead sites, forced re-plan rounds, four zones)
/// while staying feasible at the suite's array sizes.
fn variants() -> Vec<(&'static str, Scenario)> {
    vec![
        ("uniform", Scenario::UniformFill),
        (
            "defects",
            Scenario::DefectMap {
                dead_fraction: 0.15,
            },
        ),
        ("loss", Scenario::AtomLoss { loss_prob: 0.08 }),
        ("zones", Scenario::Zones { rows: 2, cols: 2 }),
        (
            "correlated",
            Scenario::CorrelatedFill {
                grain: 2,
                flip_prob: 0.1,
            },
        ),
    ]
}

/// The base pipeline configuration of the suite — loss and multi-round
/// repair on, so reports have nontrivial per-round structure. Scenario
/// overrides (loss probability, round budget) are applied on top by
/// [`qrm_server::Workload::configure`], exactly as the service does.
fn base_config(choice: PlannerChoice, workers: usize) -> PipelineConfig {
    PipelineConfig {
        planner: choice,
        workers,
        loss_prob: 0.01,
        max_rounds: 2,
        ..PipelineConfig::default()
    }
}

/// Runs a scenario spec directly through the pipeline, mirroring the
/// service path: expand the workload, apply its config overrides, run
/// the zone-aware batch entry point.
fn direct(choice: &PlannerChoice, workers: usize, spec: &BatchSpec, trace: bool) -> BatchRun {
    let workload = spec.workload().expect("scenario workload");
    let mut config = workload.configure(&base_config(choice.clone(), workers));
    config.record_trace = trace;
    let planner = config.planner.resolve(config.workers);
    Pipeline::new(config)
        .run_batch_zones_tracked(&*planner, &workload.truths, &workload.zones, spec.seed)
        .expect("scenario batch")
}

/// Same spec, same overrides, through the stage-barrier baseline.
fn barriered(choice: &PlannerChoice, workers: usize, spec: &BatchSpec) -> BatchRun {
    let workload = spec.workload().expect("scenario workload");
    let config = workload.configure(&base_config(choice.clone(), workers));
    let planner = config.planner.resolve(config.workers);
    Pipeline::new(config)
        .run_batch_zones_barriered(&*planner, &workload.truths, &workload.zones, spec.seed)
        .expect("barriered scenario batch")
}

/// The leg's core claim: for every scenario variant and every planner,
/// reports are bit-identical across workers ∈ {1, 2, 4, 8} and across
/// the dataflow vs barriered schedules.
#[test]
fn every_scenario_is_bit_identical_across_workers_and_schedules() {
    for (label, scenario) in variants() {
        let spec = BatchSpec::new(2, 16, 1001).with_scenario(scenario);
        for (name, choice) in planner_choices() {
            let baseline = direct(&choice, 1, &spec, false);
            for workers in [2usize, 4, 8] {
                let run = direct(&choice, workers, &spec, false);
                assert_eq!(
                    run.reports, baseline.reports,
                    "{name}/{label}: workers={workers} diverged from serial"
                );
            }
            for workers in [1usize, 4] {
                let run = barriered(&choice, workers, &spec);
                assert_eq!(
                    run.reports, baseline.reports,
                    "{name}/{label}: barriered workers={workers} diverged"
                );
            }
        }
    }
}

/// The independent witness: for every scenario variant and every
/// planner, replaying the exported move trace on the initial grid —
/// with no planner and no RNG in the loop — reproduces the reported
/// final occupancy bit-exactly, and recording the trace does not
/// perturb the reports themselves.
#[test]
fn trace_replay_reproduces_the_final_grid_for_every_planner_and_scenario() {
    for (label, scenario) in variants() {
        let spec = BatchSpec::new(2, 16, 2002).with_scenario(scenario);
        let truths = spec.workload().expect("scenario workload").truths;
        for (name, choice) in planner_choices() {
            let untraced = direct(&choice, 2, &spec, false);
            let traced = direct(&choice, 2, &spec, true);
            assert_eq!(
                traced.reports, untraced.reports,
                "{name}/{label}: recording the trace changed the reports"
            );
            let traces = traced.traces.expect("record_trace produces traces");
            assert_eq!(traces.len(), truths.len());
            for (i, trace) in traces.iter().enumerate() {
                let replayed =
                    TraceReplayer::replay(&truths[i], trace).expect("trace must replay cleanly");
                assert_eq!(
                    replayed, traced.reports[i].final_state,
                    "{name}/{label}: shot {i} replay != reported final grid"
                );
            }
        }
    }
}

/// HTTP vs in-process: the same scenario submission through a loopback
/// `qrm_net::Server` (JSON encode, TCP, HTTP parse, JSON decode) must
/// return reports bit-identical to an in-process `PlanService::submit`
/// of a separately built, identically configured service.
#[test]
fn http_submissions_match_in_process_for_every_scenario() {
    let serve = qrm_bench::ServeConfig {
        workers: 1,
        rounds: 2,
        ..qrm_bench::ServeConfig::default()
    };
    let local = qrm_bench::build_service(&serve);
    let remote = Arc::new(qrm_bench::build_service(&serve));
    let mut server = qrm_net::Server::bind("127.0.0.1:0", remote, qrm_net::NetConfig::default())
        .expect("bind loopback server");
    let addr = server.addr().to_string();
    assert!(
        qrm_bench::wait_for_server(&addr, Duration::from_secs(5)),
        "loopback server never came up"
    );
    let mut client = qrm_net::Client::connect(addr);

    for (label, scenario) in variants() {
        let spec = BatchSpec::new(2, 16, 3003).with_scenario(scenario);
        for (name, _) in planner_choices() {
            let request = SubmitBatch::new(name, spec.clone());
            let expected = local.submit(&request).expect("in-process submission");
            let routed = client.submit(&request).expect("HTTP submission");
            assert_eq!(
                routed.reports, expected.reports,
                "{name}/{label}: HTTP reports diverged from in-process"
            );
            assert!(routed.trace.is_none(), "trace must stay opt-in");
        }
        // The traced form of the same submission travels the wire too,
        // and the decoded trace still replays to the reported grids.
        let traced_request = SubmitBatch::new("qrm", spec.clone()).with_trace(true);
        let traced = client.submit(&traced_request).expect("traced submission");
        let truths = spec.workload().expect("scenario workload").truths;
        let traces = traced.trace.expect("trace requested");
        assert_eq!(traces.len(), truths.len());
        for (i, trace) in traces.iter().enumerate() {
            let replayed =
                TraceReplayer::replay(&truths[i], trace).expect("wire trace must replay");
            assert_eq!(
                replayed, traced.reports[i].final_state,
                "{label}: shot {i} wire-decoded trace replay diverged"
            );
        }
    }
    server.shutdown();
}

/// Builds the proptest case's scenario from its drawn parameters:
/// `kind` picks the variant, the remaining draws parameterise it.
/// Zone geometry stays within what size-12 arrays admit (every
/// divisor lattice of 12 has even tiles of at least 4 sites).
fn drawn_scenario(
    kind: usize,
    dead: f64,
    loss: f64,
    rows: usize,
    cols: usize,
    grain: usize,
    flip: f64,
) -> Scenario {
    match kind {
        0 => Scenario::DefectMap {
            dead_fraction: dead,
        },
        1 => Scenario::AtomLoss { loss_prob: loss },
        2 => Scenario::Zones { rows, cols },
        _ => Scenario::CorrelatedFill {
            grain,
            flip_prob: flip,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the seventh leg: random defect densities, loss
    /// probabilities, zone lattices, and correlation grains all stay
    /// bit-identical between the serial baseline and workers = 4, and
    /// every shot's exported trace replays to the reported final grid.
    #[test]
    fn random_scenarios_match_the_serial_baseline_and_replay(
        kind in 0usize..4,
        dead in 0.0f64..0.4,
        loss in 0.0f64..0.2,
        rows in 1usize..4,
        cols in 1usize..4,
        grain in 1usize..4,
        flip in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let scenario = drawn_scenario(kind, dead, loss, rows, cols, grain, flip);
        let spec = BatchSpec::new(2, 12, seed).with_scenario(scenario);
        let truths = spec.workload().expect("drawn workload").truths;
        for (name, choice) in planner_choices() {
            let baseline = direct(&choice, 1, &spec, true);
            let sharded = direct(&choice, 4, &spec, true);
            prop_assert_eq!(
                &sharded.reports, &baseline.reports,
                "{}: workers=4 diverged from serial", name
            );
            prop_assert_eq!(
                &sharded.traces, &baseline.traces,
                "{}: traces diverged across worker counts", name
            );
            let traces = baseline.traces.as_ref().expect("traced run");
            for (i, trace) in traces.iter().enumerate() {
                let replayed = TraceReplayer::replay(&truths[i], trace)
                    .expect("drawn trace must replay cleanly");
                prop_assert_eq!(
                    &replayed, &baseline.reports[i].final_state,
                    "{}: shot {} replay diverged", name, i
                );
            }
        }
    }
}

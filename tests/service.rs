//! Service-vs-direct equivalence: the planning service (`qrm_server`)
//! must be a pure throughput/observability layer — every concurrent
//! [`SubmitBatch`] response bit-identical to running the same workload
//! directly through [`Pipeline::run_batch`], for all seven planners, at
//! batch worker counts 1 and 4. (CI runs this suite under both the
//! default pool and `QRM_POOL_THREADS=4`, so both pool sizes are
//! covered.)

use qrm_bench::planner_choices;
use qrm_control::pipeline::{Pipeline, PipelineConfig, PipelineReport, PlannerChoice};
use qrm_server::{BatchSpec, PlanService, ServiceError, SubmitBatch};

/// The pipeline configuration under test — loss and multi-round repair
/// on, so reports have nontrivial per-round structure to disagree on.
fn config_for(choice: PlannerChoice, workers: usize) -> PipelineConfig {
    PipelineConfig {
        planner: choice,
        workers,
        loss_prob: 0.01,
        max_rounds: 3,
        ..PipelineConfig::default()
    }
}

/// A service with all seven planners registered at `workers`.
fn service_for(workers: usize) -> PlanService {
    let mut builder = PlanService::builder().max_inflight(3);
    for (name, choice) in planner_choices() {
        builder = builder.register(name, choice.clone(), config_for(choice, workers));
    }
    builder.build()
}

/// The reference: a fresh pipeline (fresh planner, cold contexts)
/// running the spec's workload directly.
fn direct(choice: PlannerChoice, workers: usize, spec: &BatchSpec) -> Vec<PipelineReport> {
    let truths = spec.workload().expect("valid spec").truths;
    let target = spec.target().expect("valid spec");
    Pipeline::new(config_for(choice, workers))
        .run_batch(&truths, &target, spec.seed)
        .expect("direct run")
}

#[test]
fn concurrent_mixed_submissions_match_direct_runs_for_all_planners() {
    for workers in [1usize, 4] {
        let service = service_for(workers);
        let spec = BatchSpec::new(2, 12, 9100 + workers as u64);
        let expected: Vec<(&'static str, Vec<PipelineReport>)> = planner_choices()
            .into_iter()
            .map(|(name, choice)| (name, direct(choice, workers, &spec)))
            .collect();

        // All seven planners submitted concurrently, twice each, through
        // a gate narrower than the submission count — so submissions
        // queue, interleave, and share each registration's warm planner.
        std::thread::scope(|scope| {
            for (name, want) in &expected {
                for _ in 0..2 {
                    let service = &service;
                    let spec = spec.clone();
                    scope.spawn(move || {
                        let got = service
                            .submit(&SubmitBatch::new(*name, spec))
                            .expect("service submission");
                        assert_eq!(
                            &got.reports, want,
                            "{name} (workers = {workers}): service response \
                             diverged from direct Pipeline::run_batch"
                        );
                    });
                }
            }
        });

        let stats = service.stats();
        assert_eq!(stats.batches_served, 14, "workers = {workers}");
        assert_eq!(stats.shots_served, 28, "workers = {workers}");
        assert!(stats.peak_inflight <= 3, "admission gate must hold");
        assert_eq!(stats.inflight, 0);
        assert_eq!(stats.queued, 0);
    }
}

#[test]
fn repeated_identical_requests_stay_bit_identical_as_contexts_warm() {
    // The same request served cold (first call), warm (after context
    // pooling kicks in), and concurrently must produce one answer.
    // QRM exercises the engine's context pool; FPGA the accelerator's
    // batched path.
    for (name, choice) in [
        ("qrm", planner_choices()[0].1.clone()),
        ("fpga", planner_choices()[6].1.clone()),
    ] {
        let service = PlanService::builder()
            .register(name, choice.clone(), config_for(choice.clone(), 4))
            .build();
        let request = SubmitBatch::new(name, BatchSpec::new(3, 12, 4242));
        let first = service.submit(&request).expect("cold submission");
        let reference = direct(choice, 4, &request.spec);
        assert_eq!(first.reports, reference, "{name}: cold response");

        std::thread::scope(|scope| {
            for _ in 0..3 {
                let service = &service;
                let request = &request;
                let reference = &reference;
                scope.spawn(move || {
                    let warm = service.submit(request).expect("warm submission");
                    assert_eq!(&warm.reports, reference, "{name}: warm response");
                });
            }
        });
    }
}

#[test]
fn service_reports_warm_contexts_and_latencies_after_load() {
    let service = service_for(2);
    let spec = BatchSpec::new(2, 12, 31);
    for _ in 0..2 {
        service
            .submit(&SubmitBatch::new("qrm", spec.clone()))
            .expect("qrm submission");
    }
    let stats = service.stats();
    let qrm = stats.planners.iter().find(|p| p.name == "qrm").unwrap();
    assert_eq!(qrm.batches, 2);
    assert_eq!(qrm.latency.count(), 2);
    assert!(qrm.latency.mean_us() > 0.0);
    let contexts = qrm
        .contexts
        .expect("QRM registration exposes context stats");
    assert!(
        contexts.idle_contexts >= 1,
        "after serving, the planner's context pool must be warm"
    );
    // Unused registrations stay untouched.
    let tetris = stats.planners.iter().find(|p| p.name == "tetris").unwrap();
    assert_eq!(tetris.batches, 0);
    assert_eq!(tetris.latency.count(), 0);
}

#[test]
fn unknown_planner_and_bad_spec_fail_cleanly_without_counting() {
    let service = service_for(1);
    assert!(matches!(
        service.submit(&SubmitBatch::new("nope", BatchSpec::new(1, 12, 1))),
        Err(ServiceError::UnknownPlanner(_))
    ));
    // Odd-sized arrays are invalid for QRM's quadrant decomposition.
    let odd = SubmitBatch::new("qrm", BatchSpec::new(1, 9, 1).with_fill(0.5));
    assert!(matches!(
        service.submit(&odd),
        Err(ServiceError::Planning(_))
    ));
    let stats = service.stats();
    assert_eq!(stats.batches_served, 0);
    assert_eq!(stats.inflight, 0);
}

//! Hardware/software equivalence: the cycle-accurate FPGA model and the
//! software kernel in static-iterations mode must be bit-exact, and the
//! closed-form latency model must match the simulator.

use atom_rearrange::prelude::*;
use qrm_core::kernel::{KernelConfig, KernelStrategy, ShiftKernel};
use qrm_core::quadrant::QuadrantMap;
use qrm_fpga::qpm::{QpmConfig, QuadrantProcessor};

#[test]
fn qpm_outcome_equals_static_software_kernel() {
    let mut rng = qrm_core::loading::seeded_rng(7001);
    for strategy in [KernelStrategy::Greedy, KernelStrategy::Balanced] {
        for iterations in [2usize, 4, 8] {
            for _ in 0..4 {
                let quadrant = AtomGrid::random(15, 15, 0.5, &mut rng);
                let hw = QuadrantProcessor::new(QpmConfig {
                    target_height: 9,
                    target_width: 9,
                    iterations,
                    strategy,
                })
                .process(&quadrant)
                .unwrap();
                let sw = ShiftKernel::new(
                    KernelConfig::new(9, 9)
                        .with_strategy(strategy)
                        .with_max_iterations(iterations)
                        .with_static_iterations(true),
                )
                .run(&quadrant)
                .unwrap();
                assert_eq!(hw.outcome.passes, sw.passes, "{strategy:?} x{iterations}");
                assert_eq!(hw.outcome.final_grid, sw.final_grid);
                assert_eq!(hw.outcome.filled, sw.filled);
            }
        }
    }
}

#[test]
fn accelerator_schedule_equals_software_static_schedule() {
    // Build the software plan with the same static pass schedule the
    // hardware uses and compare the merged move streams move-by-move.
    let mut rng = qrm_core::loading::seeded_rng(7002);
    for _ in 0..3 {
        let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
        let target = Rect::centered(20, 20, 12, 12).unwrap();

        let accel = QrmAccelerator::new(AcceleratorConfig::paper());
        let hw = accel.run(&grid, &target).unwrap();

        // Software reference: identical kernel configuration.
        let map = QuadrantMap::new(20, 20).unwrap();
        let (th, tw) = map.quadrant_target(&target).unwrap();
        let kernel = ShiftKernel::new(
            KernelConfig::new(th, tw)
                .with_strategy(KernelStrategy::Greedy)
                .with_max_iterations(4)
                .with_static_iterations(true),
        );
        let quads = map.split(&grid).unwrap();
        let outcomes: Vec<_> = quads.iter().map(|q| kernel.run(q).unwrap()).collect();
        let merged = qrm_core::merge::merge_outcomes(
            &grid,
            &map,
            &outcomes.try_into().unwrap(),
            &qrm_core::merge::MergeConfig::default(),
        )
        .unwrap();

        assert_eq!(hw.plan.schedule, merged.schedule);
        assert_eq!(hw.plan.predicted, merged.final_grid);
    }
}

#[test]
fn latency_model_matches_simulator_over_sweep() {
    let mut rng = qrm_core::loading::seeded_rng(7003);
    for cfg in [AcceleratorConfig::paper(), AcceleratorConfig::balanced()] {
        let model = LatencyModel::new(cfg);
        let accel = QrmAccelerator::new(cfg);
        for size in [10usize, 30, 50, 70, 90] {
            let side = (size * 3 / 5) & !1;
            let grid = AtomGrid::random(size, size, 0.5, &mut rng);
            let target = Rect::centered(size, size, side, side).unwrap();
            let report = accel.run(&grid, &target).unwrap();
            assert_eq!(
                model.analysis_cycles(size, side),
                report.cycles.analysis(),
                "size {size}"
            );
        }
    }
}

#[test]
fn fpga_latency_is_content_independent_but_writeback_is_not() {
    let target = Rect::centered(40, 40, 24, 24).unwrap();
    let accel = QrmAccelerator::new(AcceleratorConfig::paper());
    let mut rng = qrm_core::loading::seeded_rng(7004);
    let a = accel.run(&AtomGrid::new(40, 40).unwrap(), &target).unwrap();
    let b = accel
        .run(&AtomGrid::random(40, 40, 0.5, &mut rng), &target)
        .unwrap();
    assert_eq!(a.cycles.analysis(), b.cycles.analysis());
    assert!(a.cycles.writeback <= b.cycles.writeback);
    assert!(b.plan.schedule.len() > a.plan.schedule.len());
}

#[test]
fn resource_model_tracks_paper_figure8() {
    let model = ResourceModel::new();
    let sizes = [10usize, 30, 50, 70, 90];
    let mut last_lut = 0.0;
    for &s in &sizes {
        let u = model.utilization(s);
        assert!(u.lut.percent > last_lut, "LUT% must grow");
        last_lut = u.lut.percent;
        assert!(
            u.lut.percent < 7.0 && u.ff.percent < 7.0,
            "size {s} too big"
        );
    }
    // flat BRAM across 30..90
    let b = model.utilization(30).bram.used;
    for &s in &[50usize, 70, 90] {
        assert_eq!(model.utilization(s).bram.used, b);
    }
    // paper anchors at 90
    let u90 = model.utilization(90);
    assert!((u90.lut.percent - 6.31).abs() < 0.35);
    assert!((u90.ff.percent - 6.19).abs() < 0.35);
}

//! Integration coverage for the library extensions: the hybrid
//! QRM+repair scheduler, the movement-record codec as the accelerator's
//! output contract, rectangular arrays/targets, and non-uniform loading.

use atom_rearrange::prelude::*;
use qrm_baselines::hybrid::{hybrid_executor, HybridScheduler};
use qrm_core::codec;
use qrm_core::loading::FillProfile;

#[test]
fn hybrid_reaches_full_assembly_at_headline_scale() {
    let mut rng = qrm_core::loading::seeded_rng(700);
    let mut filled = 0;
    let mut tried = 0;
    let hybrid = HybridScheduler::paper_qrm();
    for _ in 0..6 {
        let grid = LoadModel::new(0.5)
            .load_at_least(50, 50, 990, 64, &mut rng)
            .unwrap();
        tried += 1;
        let target = Rect::centered(50, 50, 30, 30).unwrap();
        let plan = hybrid.plan(&grid, &target).unwrap();
        let report = hybrid_executor().run(&grid, &plan.schedule).unwrap();
        assert_eq!(report.final_grid, plan.predicted);
        filled += usize::from(plan.filled);
    }
    assert!(
        filled * 10 >= tried * 9,
        "hybrid filled only {filled}/{tried} at 50x50"
    );
}

#[test]
fn codec_stream_drives_the_awg_end_to_end() {
    // The accelerator's output contract: plan -> encoded record stream ->
    // decoded schedule -> AWG program -> execution. Everything downstream
    // must see exactly the planner's moves.
    let mut rng = qrm_core::loading::seeded_rng(701);
    let grid = AtomGrid::random(30, 30, 0.5, &mut rng);
    let target = Rect::centered(30, 30, 18, 18).unwrap();
    let report = QrmAccelerator::new(AcceleratorConfig::balanced())
        .run(&grid, &target)
        .unwrap();

    let stream = codec::encode(&report.plan.schedule).unwrap();
    // the FPGA write-back cost model and the codec agree on the size
    assert_eq!(
        stream.len(),
        codec::encoded_bits(30, 30, report.plan.schedule.len()).div_ceil(8)
    );
    let decoded = codec::decode(&stream).unwrap();
    assert_eq!(decoded, report.plan.schedule);

    let program = ToneProgram::compile(
        &decoded,
        &AodCalibration::default(),
        &MotionModel::typical(),
    )
    .unwrap();
    assert_eq!(program.segments().len(), decoded.len());

    let exec = Executor::new().run(&grid, &decoded).unwrap();
    assert_eq!(exec.final_grid, report.plan.predicted);
}

#[test]
fn rectangular_arrays_and_targets() {
    // QRM supports rectangular arrays and rectangular centred targets as
    // long as everything splits evenly across quadrants.
    let mut rng = qrm_core::loading::seeded_rng(702);
    let grid = LoadModel::new(0.55)
        .load_at_least(24, 40, 400, 64, &mut rng)
        .unwrap();
    let target = Rect::centered(24, 40, 14, 24).unwrap();
    let plan = QrmScheduler::new(QrmConfig::default())
        .plan(&grid, &target)
        .unwrap();
    let report = Executor::new().run(&grid, &plan.schedule).unwrap();
    assert_eq!(report.final_grid, plan.predicted);
    assert!(plan.filled, "{} defects", plan.defects(&target).unwrap());

    // The cycle-accurate accelerator handles the same instance.
    let accel = QrmAccelerator::new(AcceleratorConfig::balanced());
    let hw = accel.run(&grid, &target).unwrap();
    let exec = Executor::new().run(&grid, &hw.plan.schedule).unwrap();
    assert_eq!(exec.final_grid, hw.plan.predicted);
    assert!(hw.time_us > 0.0);
}

#[test]
fn radial_falloff_loading_still_assembles() {
    // Beam-intensity roll-off concentrates atoms near the centre — the
    // favourable case for a centred target; QRM must handle the
    // non-uniform distribution.
    let mut rng = qrm_core::loading::seeded_rng(703);
    let model = LoadModel::new(0.6).with_profile(FillProfile::RadialFalloff { edge_factor: 0.5 });
    let mut filled = 0;
    for _ in 0..5 {
        let grid = model.load(30, 30, &mut rng).unwrap();
        let target = Rect::centered(30, 30, 16, 16).unwrap();
        if grid
            .count_in(&Rect::centered(30, 30, 30, 30).unwrap())
            .unwrap()
            < target.area() + 40
        {
            continue;
        }
        let plan = QrmScheduler::new(QrmConfig::default())
            .plan(&grid, &target)
            .unwrap();
        filled += usize::from(plan.filled);
        let report = Executor::new().run(&grid, &plan.schedule).unwrap();
        assert_eq!(report.final_grid, plan.predicted);
    }
    assert!(filled >= 3, "filled only {filled}/5 under radial falloff");
}

#[test]
fn sen_masking_blocks_selected_lines_globally() {
    // The paper's manual-control mechanism: masked rows never shift in
    // row passes; their atoms may still move vertically.
    use qrm_core::geometry::Position;
    use qrm_core::kernel::{KernelConfig, KernelStrategy, ShiftKernel};
    let mut rng = qrm_core::loading::seeded_rng(704);
    let quadrant = AtomGrid::random(10, 10, 0.5, &mut rng);
    let mut cfg = KernelConfig::new(6, 6).with_strategy(KernelStrategy::Greedy);
    cfg.row_enable = Some(vec![false; 10]); // block every row
    cfg.col_enable = Some(vec![false; 10]); // and every column
    let out = ShiftKernel::new(cfg).run(&quadrant).unwrap();
    assert_eq!(out.shift_count(), 0, "fully masked kernel must not move");
    assert_eq!(out.final_grid, quadrant);
    // partially masked: only unmasked rows fire in row passes
    let mut cfg = KernelConfig::new(6, 6).with_strategy(KernelStrategy::Greedy);
    let mask: Vec<bool> = (0..10).map(|r| r % 2 == 0).collect();
    cfg.row_enable = Some(mask.clone());
    cfg.col_enable = Some(vec![false; 10]);
    let out = ShiftKernel::new(cfg).run(&quadrant).unwrap();
    for pass in &out.passes {
        for wave in &pass.waves {
            for shift in &wave.shifts {
                assert!(mask[shift.line], "masked line {} fired", shift.line);
            }
        }
    }
    // masked rows' atoms did not move at all (columns disabled too)
    for p in quadrant.occupied() {
        if !mask[p.row] {
            let still_there = out.final_grid.get(Position::new(p.row, p.col)).unwrap();
            // the atom may have been *received* sideways? no: its row is
            // masked and columns are disabled, and unmasked rows only
            // move their own atoms within their row.
            assert!(still_there, "atom at {p} moved despite masking");
        }
    }
}

#[test]
fn loss_and_ejection_accounting_is_consistent() {
    use qrm_core::executor::CollisionPolicy;
    let mut rng = qrm_core::loading::seeded_rng(705);
    let grid = AtomGrid::random(20, 20, 0.55, &mut rng);
    let target = Rect::centered(20, 20, 12, 12).unwrap();
    let plan = QrmScheduler::new(QrmConfig::default())
        .plan(&grid, &target)
        .unwrap();
    let exec = Executor::new()
        .with_collision_policy(CollisionPolicy::Eject)
        .run_with_loss(&grid, &plan.schedule, 0.05, &mut rng)
        .unwrap();
    // conservation: initial = final + lost + ejected
    assert_eq!(
        grid.atom_count(),
        exec.final_grid.atom_count() + exec.lost_atoms + exec.ejected_atoms
    );
    assert!(exec.lost_atoms > 0, "5% loss over hundreds of moves");
}

//! Hostile-client torture suite for the readiness-driven HTTP front
//! end — the pin that keeps the event loop honest.
//!
//! Every case here is a peer a pool-job-per-connection server handles
//! badly (each hostile socket used to pin a pool worker for its whole
//! timeout) and the event loop must handle well: slowloris trickles,
//! byte-at-a-time bodies, half-closes mid-request, oversized heads,
//! pipelining, mid-response resets, and keep-alive churn storms. The
//! contract under attack is always the same:
//!
//! 1. every malformed request is answered with the documented
//!    `(status, ErrorReply.code)` pair or the connection closes
//!    cleanly — never a hang, never an unframed byte; and
//! 2. **the sixth determinism leg**: while the abuse is in flight,
//!    well-behaved submissions on the same server return reports
//!    bit-identical to an in-process `PlanService::submit` — hostile
//!    load may cost latency, never bytes.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qrm_bench::{build_service, ServeConfig};
use qrm_net::{Client, NetConfig, Server};
use qrm_server::{BatchSpec, PlanService, SubmitBatch};
use qrm_wire::ToJson;

/// A served planner registry behind a loopback event-loop server.
fn serve(config: NetConfig) -> (Server, Arc<PlanService>) {
    let serve = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let service = Arc::new(build_service(&serve));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), config).expect("bind loopback");
    (server, service)
}

/// A config with deadlines short enough to torture in test time.
fn short_deadlines() -> NetConfig {
    NetConfig {
        keep_alive: Duration::from_millis(200),
        request_timeout: Duration::from_millis(400),
        ..NetConfig::default()
    }
}

/// The sixth-leg probe: submits on a fresh connection and asserts the
/// report is bit-identical to the in-process reference.
fn assert_digest_unchanged(server: &Server, service: &PlanService, tag: &str) {
    let request = SubmitBatch::new("qrm", BatchSpec::new(2, 12, 4242));
    let expected = service.submit(&request).expect("in-process reference");
    let mut client = Client::connect(server.addr().to_string());
    let over_http = client.submit(&request).expect("submit during abuse");
    assert_eq!(
        over_http.reports, expected.reports,
        "{tag}: hostile load changed served bytes"
    );
}

/// Reads to EOF with a hard cap on patience; returns what arrived.
fn read_to_eof(stream: &mut TcpStream, patience: Duration) -> String {
    stream
        .set_read_timeout(Some(patience))
        .expect("read timeout");
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&response).into_owned()
}

/// Splits an HTTP response into `(status, body)`.
fn parse_response(response: &str) -> (u16, &str) {
    let status = response
        .split(' ')
        .nth(1)
        .unwrap_or("0")
        .parse()
        .unwrap_or(0);
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    (status, body)
}

#[test]
fn slowloris_header_trickle_is_closed_at_the_request_deadline() {
    let (server, service) = serve(short_deadlines());
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let started = Instant::now();
    // Trickle a plausible head one byte at a time, forever (as far as
    // the peer is concerned). The request deadline must cut it off.
    let head = b"POST /v1/batch HTTP/1.1\r\nhost: x\r\ncontent-length: 10\r\n";
    let mut closed = false;
    'outer: for _ in 0..50 {
        for byte in head {
            if stream.write_all(&[*byte]).is_err() {
                closed = true;
                break 'outer;
            }
            std::thread::sleep(Duration::from_millis(20));
            let mut buf = [0u8; 64];
            stream
                .set_read_timeout(Some(Duration::from_millis(1)))
                .expect("timeout");
            if matches!(stream.read(&mut buf), Ok(0)) {
                closed = true;
                break 'outer;
            }
        }
    }
    assert!(closed, "slowloris connection never closed");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "closed by the request deadline, not peer patience: {elapsed:?}"
    );
    assert_digest_unchanged(&server, &service, "slowloris");
}

#[test]
fn byte_at_a_time_body_is_served_within_the_deadline() {
    // A slow-but-legal peer: the whole request fits inside the request
    // deadline even at one byte per write. It must be *served*, not
    // shed — the deadline is a bound, not a speed requirement.
    let (server, service) = serve(NetConfig {
        request_timeout: Duration::from_secs(30),
        ..NetConfig::default()
    });
    let body = SubmitBatch::new("typical", BatchSpec::new(1, 12, 7)).to_json();
    let payload = format!(
        "POST /v1/batch HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    for chunk in payload.as_bytes().chunks(1) {
        stream.write_all(chunk).expect("trickle byte");
    }
    let response = read_to_eof(&mut stream, Duration::from_secs(40));
    let (status, _) = parse_response(&response);
    assert_eq!(status, 200, "trickled-but-complete request serves");
    assert_digest_unchanged(&server, &service, "byte-at-a-time");
}

#[test]
fn half_close_mid_request_is_reaped() {
    // The peer sends half a request then shuts down its write side.
    // The server must reap the connection (EOF mid-request) without
    // waiting out the full deadline budget times anything.
    let (server, service) = serve(short_deadlines());
    let before = server.net_stats();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"POST /v1/batch HTTP/1.1\r\ncontent-length: 100\r\n\r\nhalf")
        .expect("partial request");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let response = read_to_eof(&mut stream, Duration::from_secs(5));
    assert_eq!(response, "", "no reply to an abandoned request");
    // The close is visible in the gauges (cause: peer).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = server.net_stats();
        if now.closed_peer > before.closed_peer {
            break;
        }
        assert!(Instant::now() < deadline, "half-closed conn never reaped");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_digest_unchanged(&server, &service, "half-close");
}

#[test]
fn oversized_request_line_headers_and_bodies_get_typed_refusals() {
    let (server, service) = serve(NetConfig {
        max_body_bytes: 1024,
        ..NetConfig::default()
    });

    // Request line far over MAX_LINE_BYTES: refused as soon as the
    // overflow is proven, well before any terminator arrives.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let long_line = format!("GET /{} HTTP/1.1", "a".repeat(64 << 10));
    let _ = stream.write_all(long_line.as_bytes());
    let response = read_to_eof(&mut stream, Duration::from_secs(5));
    let (status, body) = parse_response(&response);
    assert_eq!(status, 400, "oversized request line: {response:?}");
    assert!(body.contains("headers_too_large"), "{body:?}");

    // Unbounded header section: one header line over the limit.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let _ = stream.write_all(
        format!(
            "GET /v1/healthz HTTP/1.1\r\nx-padding: {}",
            "b".repeat(64 << 10)
        )
        .as_bytes(),
    );
    let response = read_to_eof(&mut stream, Duration::from_secs(5));
    let (status, body) = parse_response(&response);
    assert_eq!(status, 400, "oversized header: {response:?}");
    assert!(body.contains("headers_too_large"), "{body:?}");

    // Declared body over the configured cap: refused from the header
    // alone (no body bytes were sent).
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"POST /v1/batch HTTP/1.1\r\ncontent-length: 10000\r\n\r\n")
        .expect("oversized declaration");
    let response = read_to_eof(&mut stream, Duration::from_secs(5));
    let (status, body) = parse_response(&response);
    assert_eq!(status, 413, "oversized body: {response:?}");
    assert!(body.contains("payload_too_large"), "{body:?}");

    // Chunk-accumulated overflow: no single header lies, but the
    // chunks keep coming past the cap.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let chunk = "c".repeat(512);
    let mut payload = String::from("POST /v1/batch HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
    for _ in 0..4 {
        payload.push_str(&format!("{:x}\r\n{chunk}\r\n", chunk.len()));
    }
    let _ = stream.write_all(payload.as_bytes());
    let response = read_to_eof(&mut stream, Duration::from_secs(5));
    let (status, body) = parse_response(&response);
    assert_eq!(status, 413, "chunk overflow: {response:?}");
    assert!(body.contains("payload_too_large"), "{body:?}");

    assert_digest_unchanged(&server, &service, "oversized");
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (server, service) = serve(NetConfig::default());
    // Three back-to-back requests in one write: two healthz probes
    // around a stats fetch. Responses must come back in order, each
    // well-framed.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(
            b"GET /v1/healthz HTTP/1.1\r\nhost: x\r\n\r\n\
              GET /v1/stats HTTP/1.1\r\nhost: x\r\n\r\n\
              GET /v1/healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .expect("pipelined burst");
    let response = read_to_eof(&mut stream, Duration::from_secs(10));
    let statuses: Vec<&str> = response
        .split("HTTP/1.1 ")
        .skip(1)
        .map(|r| r.split(' ').next().unwrap_or(""))
        .collect();
    assert_eq!(statuses, ["200", "200", "200"], "{response:?}");
    // In-order framing: healthz body, then the stats body, then the
    // closing healthz body.
    let first_health = response.find("\"status\":\"ok\"").expect("first healthz");
    let stats_body = response.find("\"batches_served\"").expect("stats body");
    let last_health = response.rfind("\"status\":\"ok\"").expect("last healthz");
    assert!(
        first_health < stats_body && stats_body < last_health,
        "responses out of order: {response:?}"
    );
    // Pipelining POSTs through the planning pool keeps ordering too.
    let body = SubmitBatch::new("typical", BatchSpec::new(1, 12, 11)).to_json();
    let one = format!(
        "POST /v1/batch HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(format!("{one}{one}").as_bytes())
        .expect("pipelined posts");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("finish sending");
    let response = read_to_eof(&mut stream, Duration::from_secs(30));
    let served = response.matches("HTTP/1.1 200").count();
    assert_eq!(served, 2, "both pipelined submissions served: {response:?}");
    assert_digest_unchanged(&server, &service, "pipelined");
}

#[test]
fn abrupt_reset_during_response_write_only_costs_that_connection() {
    let (server, service) = serve(NetConfig::default());
    for _ in 0..8 {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /v1/stats HTTP/1.1\r\nhost: x\r\n\r\n")
            .expect("request");
        // Read one byte (the response is in flight), then RST the
        // connection by dropping with lingering data unread + SO_LINGER
        // semantics approximated by immediate drop.
        let mut one = [0u8; 1];
        let _ = stream.read(&mut one);
        drop(stream);
    }
    // The server shrugged: a well-behaved exchange still serves, and
    // the loop thread never died.
    assert_digest_unchanged(&server, &service, "mid-write reset");
}

#[test]
fn keep_alive_churn_storm_leaves_the_server_consistent() {
    // Hundreds of connect → one request → close cycles, as fast as
    // loopback allows. Gauges must stay consistent (accepted == open +
    // closed) and the digest unchanged throughout.
    let (server, service) = serve(NetConfig::default());
    for round in 0..300 {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n")
            .expect("churn request");
        let response = read_to_eof(&mut stream, Duration::from_secs(5));
        let (status, _) = parse_response(&response);
        assert_eq!(status, 200, "churn round {round}: {response:?}");
    }
    let stats = server.net_stats();
    assert!(stats.accepted_total >= 300);
    assert_eq!(
        stats.accepted_total,
        stats.open_connections + stats.closed_total,
        "gauge invariant broke under churn: {stats:?}"
    );
    assert_eq!(
        stats.closed_total,
        stats.closed_idle
            + stats.closed_request_timeout
            + stats.closed_write_stalled
            + stats.closed_peer
            + stats.closed_framing
            + stats.closed_shutdown
            + stats.closed_over_capacity,
        "per-cause close counters do not sum: {stats:?}"
    );
    assert_digest_unchanged(&server, &service, "churn storm");
}

#[test]
fn hostile_mix_under_concurrent_load_keeps_reports_bit_identical() {
    // The sixth leg under fire: every hostile shape at once, while a
    // well-behaved client hammers submissions. All reports must be
    // byte-identical to the in-process reference for the whole run.
    let (server, service) = serve(short_deadlines());
    let addr = server.addr();
    let request = SubmitBatch::new("qrm", BatchSpec::new(2, 12, 999));
    let expected = service.submit(&request).expect("reference");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Abuser: cycles through hostile shapes until told to stop.
        let abuser_stop = Arc::clone(&stop);
        scope.spawn(move || {
            let mut shape = 0usize;
            while !abuser_stop.load(std::sync::atomic::Ordering::Relaxed) {
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    continue;
                };
                match shape % 4 {
                    0 => {
                        // Trickle a head fragment, abandon it.
                        let _ = stream.write_all(b"POST /v1/batch HT");
                        std::thread::sleep(Duration::from_millis(30));
                    }
                    1 => {
                        // Garbage request line.
                        let _ = stream.write_all(b"\x16\x03\x01 junk\r\n\r\n");
                        let _ = read_to_eof(&mut stream, Duration::from_millis(200));
                    }
                    2 => {
                        // Half-close mid-body.
                        let _ = stream
                            .write_all(b"POST /v1/batch HTTP/1.1\r\ncontent-length: 50\r\n\r\nxx");
                        let _ = stream.shutdown(std::net::Shutdown::Write);
                    }
                    _ => {
                        // Reset right after the request goes out.
                        let _ = stream.write_all(b"GET /v1/stats HTTP/1.1\r\n\r\n");
                    }
                }
                shape += 1;
            }
        });

        // Two well-behaved clients, 10 submissions each, all digests
        // checked against the in-process reference.
        let mut handles = Vec::new();
        for _ in 0..2 {
            let request = request.clone();
            let expected = &expected;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr.to_string());
                for _ in 0..10 {
                    let report = client.submit(&request).expect("submit under abuse");
                    assert_eq!(
                        report.reports, expected.reports,
                        "hostile mix changed served bytes"
                    );
                }
            }));
        }
        for handle in handles {
            handle.join().expect("well-behaved client");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}

//! Stress tests for the work-stealing worker pool (`vendor/rayon`):
//! nested scopes, uneven job sizes, and panicking jobs must never
//! deadlock the fixed-size pool or kill a worker, and after one-time
//! initialisation `threads_spawned` must stay flat no matter how much
//! work is thrown at it.
//!
//! Stats note: the global pool is process-wide and tests in this binary
//! run concurrently, so every counter assertion is monotone (strict
//! increase, or exact non-increase for the spawn counter) rather than
//! an equality between deltas. Exact accounting equalities live in the
//! vendored crate's unit tests, which use isolated private pools.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

/// Spin-wait work whose cost scales with `units`, opaque to the
/// optimiser.
fn busy_work(units: usize) -> u64 {
    let mut acc = 0x9e37_79b9u64;
    for i in 0..units * 50 {
        acc = std::hint::black_box(acc.rotate_left(7) ^ i as u64);
    }
    acc
}

#[test]
fn deep_nesting_with_fanout_terminates_and_spawns_nothing() {
    let init = rayon::global_pool_stats();
    let hits = AtomicUsize::new(0);
    // 3 levels of nesting, fan-out 3 at each: 3 + 9 + 27 = 39 jobs, far
    // more concurrent scopes than pool workers on any host — waiting
    // scopes must help (and steal) instead of deadlocking.
    rayon::scope(|a| {
        for _ in 0..3 {
            a.spawn(|_| {
                rayon::scope(|b| {
                    for _ in 0..3 {
                        b.spawn(|_| {
                            rayon::scope(|c| {
                                for _ in 0..3 {
                                    c.spawn(|_| {
                                        hits.fetch_add(1, Ordering::SeqCst);
                                    });
                                }
                            });
                            hits.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(hits.load(Ordering::SeqCst), 39);
    let after = rayon::global_pool_stats();
    assert_eq!(
        init.threads_spawned, after.threads_spawned,
        "nested scopes run on the fixed pool, never on new threads"
    );
}

#[test]
fn uneven_job_sizes_fill_every_slot_in_order() {
    // One huge job up front, a tail of tiny ones: with LIFO local
    // deques + FIFO stealing the tiny jobs migrate while the big one
    // runs, and slot-indexed results keep the output order exact.
    let sizes: Vec<usize> = (0..64).map(|i| if i == 0 { 2000 } else { i % 7 }).collect();
    let results: Vec<(usize, u64)> = sizes
        .clone()
        .into_par_iter()
        .map(|units| (units, busy_work(units)))
        .collect();
    assert_eq!(results.len(), sizes.len());
    for (slot, (units, value)) in results.iter().enumerate() {
        assert_eq!(*units, sizes[slot], "slot {slot} out of order");
        assert_eq!(
            *value,
            busy_work(*units),
            "slot {slot} computed wrong value"
        );
    }
}

#[test]
fn panicking_jobs_neither_deadlock_nor_kill_workers() {
    let init = rayon::global_pool_stats();
    // Several rounds of scopes where one job panics among many that
    // don't: the panic must propagate to the scope caller each time,
    // the surviving jobs must all have run, and the pool must keep
    // executing afterwards with the same worker threads.
    for round in 0..3 {
        let survivors = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rayon::scope(|s| {
                for i in 0..8 {
                    s.spawn(|_| {
                        busy_work(5);
                        survivors.fetch_add(1, Ordering::SeqCst);
                    });
                    if i == 3 {
                        s.spawn(|_| panic!("round {round}: job explosion"));
                    }
                }
            });
        }));
        assert!(
            result.is_err(),
            "round {round}: job panic must reach the caller"
        );
        assert_eq!(
            survivors.load(Ordering::SeqCst),
            8,
            "round {round}: non-panicking jobs must all complete"
        );
    }
    // Workers survived: the pool still runs jobs, on the same threads.
    let check: Vec<usize> = (0..32usize).into_par_iter().map(|x| x * 3).collect();
    assert_eq!(check, (0..32usize).map(|x| x * 3).collect::<Vec<_>>());
    let after = rayon::global_pool_stats();
    assert_eq!(
        init.threads_spawned, after.threads_spawned,
        "panics must not cost worker threads (no respawns, no deaths)"
    );
    assert!(after.jobs_executed > init.jobs_executed);
}

#[test]
fn steal_counter_sees_the_forced_handoff() {
    // Deterministic steal at >= 2 participants (the pool's >= 1 worker
    // plus the helping caller): job A spawns B onto the deque of
    // whichever thread runs A, then spins in the scope body until B has
    // executed. A's thread cannot run B (it is spinning, not helping),
    // so B is only reachable by another thread stealing it.
    let before = rayon::global_pool_stats();
    for _ in 0..4 {
        rayon::scope(|outer| {
            outer.spawn(|_| {
                let done = AtomicBool::new(false);
                rayon::scope(|inner| {
                    inner.spawn(|_| done.store(true, Ordering::Release));
                    while !done.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                });
            });
        });
    }
    let after = rayon::global_pool_stats();
    assert!(
        after.steals >= before.steals + 4,
        "each forced handoff must be a steal: {} -> {}",
        before.steals,
        after.steals
    );
    assert_eq!(before.threads_spawned, after.threads_spawned);
}

#[test]
fn stealing_preserves_slot_indexed_determinism_under_load() {
    // A mixed workload re-run repeatedly must produce the same results
    // every time regardless of which threads steal what, and local
    // pops + steals + injector takes all feed the same executed-jobs
    // counter (monotone view). Spawned through `scope` directly — one
    // pool job per slot — so the pool is exercised even on a 1-core
    // host where the parallel iterators fall back to inline execution.
    let expected: Vec<u64> = (0..48usize).map(|i| busy_work(i % 11)).collect();
    let baseline = rayon::global_pool_stats();
    for _ in 0..5 {
        let got: Vec<Mutex<u64>> = (0..48usize).map(|_| Mutex::new(0)).collect();
        rayon::scope(|s| {
            for (i, slot) in got.iter().enumerate() {
                s.spawn(move |_| {
                    *slot.lock().unwrap() = busy_work(i % 11);
                });
            }
        });
        let got: Vec<u64> = got.into_iter().map(|m| m.into_inner().unwrap()).collect();
        assert_eq!(got, expected);
    }
    let after = rayon::global_pool_stats();
    assert!(after.jobs_executed > baseline.jobs_executed);
    assert!(
        after.local_hits + after.injector_hits + after.steals >= after.jobs_executed,
        "every executed job was popped from some queue"
    );
    assert_eq!(baseline.threads_spawned, after.threads_spawned);
}

#[test]
fn detached_spawns_from_scope_guests_still_run() {
    // A detached `rayon::spawn` issued *inside* a scope lands on the
    // caller's transient guest deque; when the scope ends before the
    // job runs, deregistration must hand it to the injector, not drop
    // it.
    static RAN: AtomicUsize = AtomicUsize::new(0);
    let before = RAN.load(Ordering::SeqCst);
    rayon::scope(|s| {
        s.spawn(|_| {
            // Keep pool threads busy enough that the detached job can
            // plausibly still be queued when the scope exits.
            busy_work(50);
        });
        rayon::spawn(|| {
            RAN.fetch_add(1, Ordering::SeqCst);
        });
    });
    // The detached job has no completion handle; poll with a timeout.
    for _ in 0..10_000 {
        if RAN.load(Ordering::SeqCst) > before {
            return;
        }
        std::thread::yield_now();
    }
    panic!("detached spawn from inside a scope was lost");
}

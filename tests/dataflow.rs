//! Adversarial-schedule determinism of the shot-level dataflow
//! scheduler (`qrm_core::engine::dataflow` driving
//! `Pipeline::run_batch`).
//!
//! The scheduler replaces the old stage barriers: each shot advances
//! through its own observe → plan → execute task chain, planning is
//! group-formation on readiness, and a fast shot may run round `k + 1`
//! while a slow shot is still planning round `k`. The determinism
//! argument (docs/ARCHITECTURE.md, "Shot-level dataflow") is that
//! per-shot RNG streams and the `plan_batch == mapped plan` planner
//! contract make the schedule unobservable in the reports. This suite
//! attacks that argument directly: it *injects stragglers* — forced
//! stalls of chosen shots at chosen stages of chosen rounds, via the
//! `test-hooks`-only `PipelineConfig::debug_stage_delay` — and asserts
//! the reports stay bit-identical to the serial inline path for any
//! delay placement and any worker count, for every planner.
//!
//! Run under `QRM_POOL_THREADS ∈ {2, 8}` by the CI `dataflow-stress`
//! job, so real preemption gets a chance to reorder tasks too.

use atom_rearrange::prelude::*;
use proptest::prelude::*;
use qrm_bench::planner_choices;
use qrm_control::pipeline::{BatchRun, DelayStage, StageDelay};

fn truths(shots: usize, size: usize, fill: f64, seed: u64) -> Vec<AtomGrid> {
    let mut rng = qrm_core::loading::seeded_rng(seed);
    (0..shots)
        .map(|_| AtomGrid::random(size, size, fill, &mut rng))
        .collect()
}

fn pipeline_for(choice: &PlannerChoice, workers: usize, delays: Vec<StageDelay>) -> Pipeline {
    Pipeline::new(PipelineConfig {
        planner: choice.clone(),
        workers,
        // Transport loss exercises the executor's RNG draws — the part
        // of a round most sensitive to a cross-shot stream mixup under
        // a reordered schedule.
        loss_prob: 0.01,
        max_rounds: 3,
        debug_stage_delay: delays,
        ..PipelineConfig::default()
    })
}

/// One adversarial placement: every (shot, stage) pair of round `round`
/// is a candidate straggler; `mask` picks a subset.
fn delays_from_mask(shots: usize, round: usize, mask: u32, millis: u64) -> Vec<StageDelay> {
    let stages = [DelayStage::Observe, DelayStage::Plan, DelayStage::Execute];
    let mut delays = Vec::new();
    for shot in 0..shots {
        for (j, &stage) in stages.iter().enumerate() {
            if mask & (1 << (shot * stages.len() + j)) != 0 {
                delays.push(StageDelay {
                    shot,
                    round,
                    stage,
                    millis,
                });
            }
        }
    }
    delays
}

/// The four determinism legs' straggler extension, all seven planners:
/// a fixed adversarial placement (the batch's *first* shot stalls at
/// every stage of every round, so every other shot runs ahead) must
/// leave reports bit-identical to the undelayed single-worker run at
/// workers ∈ {1, 2, 4, 8}.
#[test]
fn straggling_lead_shot_never_changes_reports_for_any_planner() {
    let truths = truths(3, 12, 0.6, 1501);
    let target = Rect::centered(12, 12, 6, 6).unwrap();
    let straggler: Vec<StageDelay> = (0..3)
        .flat_map(|round| {
            [DelayStage::Observe, DelayStage::Plan, DelayStage::Execute]
                .into_iter()
                .map(move |stage| StageDelay {
                    shot: 0,
                    round,
                    stage,
                    millis: 2,
                })
        })
        .collect();
    for (name, choice) in planner_choices() {
        let baseline = pipeline_for(&choice, 1, Vec::new())
            .run_batch(&truths, &target, 271)
            .unwrap();
        for workers in [1usize, 2, 4, 8] {
            let delayed = pipeline_for(&choice, workers, straggler.clone())
                .run_batch(&truths, &target, 271)
                .unwrap();
            assert_eq!(
                delayed, baseline,
                "{name}: straggling shot 0 at workers={workers} changed reports"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any delay placement (subset of (shot, stage) pairs in a random
    /// round, random stall length) at any worker count reports
    /// bit-identically to the serial inline path with no delays.
    #[test]
    fn any_straggler_schedule_is_bit_identical_to_serial(
        mask in 0u32..512,          // 3 shots x 3 stages = 9 candidate bits
        round in 0usize..3,
        millis in 1u64..3,
        workers_idx in 0usize..4,
    ) {
        let workers = [1usize, 2, 4, 8][workers_idx];
        let truths = truths(3, 12, 0.6, 1502);
        let target = Rect::centered(12, 12, 6, 6).unwrap();
        let (_, choice) = planner_choices().remove(0);
        let baseline = pipeline_for(&choice, 1, Vec::new())
            .run_batch(&truths, &target, 626)
            .unwrap();
        let delays = delays_from_mask(3, round, mask, millis);
        let delayed = pipeline_for(&choice, workers, delays)
            .run_batch(&truths, &target, 626)
            .unwrap();
        prop_assert_eq!(delayed, baseline);
    }
}

/// The preserved stage-barrier baseline and the dataflow scheduler
/// agree bit-for-bit on heterogeneous per-shot targets (`run_shots`),
/// the workload shape the skewed benchmark uses.
#[test]
fn barriered_and_dataflow_paths_agree_on_heterogeneous_shots() {
    let mut rng = qrm_core::loading::seeded_rng(88);
    let jobs: Vec<(AtomGrid, Rect)> = [(16usize, 8usize), (12, 6), (16, 10), (12, 4)]
        .iter()
        .map(|&(size, side)| {
            (
                AtomGrid::random(size, size, 0.65, &mut rng),
                Rect::centered(size, size, side, side).unwrap(),
            )
        })
        .collect();
    let (_, choice) = planner_choices().remove(0);
    let planner = choice.resolve(4);
    let pipeline = pipeline_for(&choice, 4, Vec::new());

    let dataflow: BatchRun = pipeline.run_shots_with(&*planner, &jobs, 909).unwrap();
    let barriered: BatchRun = pipeline.run_shots_barriered(&*planner, &jobs, 909).unwrap();
    assert_eq!(
        dataflow.reports, barriered.reports,
        "scheduler choice leaked into reports"
    );
    assert_eq!(dataflow.reports, pipeline.run_shots(&jobs, 909).unwrap());

    // Counter sanity: every shot was planned at least once, the task
    // count covers each shot's observe/plan/execute chain plus its
    // terminal observe, and completion stamps exist for every shot.
    let stats = dataflow.stats;
    assert!(stats.planned_shots >= jobs.len() as u64);
    assert!(stats.plan_groups >= 1);
    assert!(stats.tasks_dispatched > 2 * stats.planned_shots);
    assert_eq!(dataflow.completion_us.len(), jobs.len());
    assert!(dataflow.completion_us.iter().all(|&us| us > 0.0));
    // The barriered baseline reports no scheduler activity.
    assert_eq!(barriered.stats.tasks_dispatched, 0);
}

/// At one worker the scheduler takes the inline path: singleton plan
/// groups, in shot order — `plan_groups == planned_shots`.
#[test]
fn inline_path_plans_singleton_groups() {
    let truths = truths(2, 12, 0.6, 1601);
    let target = Rect::centered(12, 12, 6, 6).unwrap();
    let (_, choice) = planner_choices().remove(0);
    let pipeline = pipeline_for(&choice, 1, Vec::new());
    let planner = choice.resolve(1);
    let run = pipeline
        .run_batch_tracked(&*planner, &truths, &target, 33)
        .unwrap();
    assert_eq!(run.stats.plan_groups, run.stats.planned_shots);
    assert!(run.stats.plan_groups >= truths.len() as u64);
    assert_eq!(run.stats.rounds_overlapped, 0);
    assert_eq!(run.stats.max_shot_lag, 0);
}

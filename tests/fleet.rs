//! The determinism contract's **fleet leg**: a consistent-hash router
//! fanning the load over three backend servers produces byte-identical
//! reports to a single in-process service — even when a backend dies
//! mid-load.
//!
//! The fault injection uses `Server::debug_sever` (behind the
//! `test-hooks` feature): the severed backend closes every connection
//! *between* reading a request and executing it, the bytes-free close
//! that proves to the router the request was never taken. The router
//! must fail the work over to the surviving ring candidates, and —
//! because the close is provably pre-execution — no submission may
//! execute twice; the suite pins that with the fleet-wide
//! `batches_served` sum.

use std::sync::Arc;
use std::time::Duration;

use qrm_bench::{build_service, route_load, service_load, DigestRow, ServeConfig};
use qrm_net::{Client, NetConfig, Router, RouterConfig};
use qrm_server::{BatchSpec, PlanService, SubmitBatch};

/// Spins up `count` backend servers (each its own [`PlanService`] with
/// the response cache enabled) plus a router over all of them, with the
/// health re-probe interval pushed out to one minute: the immediate
/// first sweep marks live backends up, and afterwards a severed backend
/// stays *nominally healthy* — forcing requests through the failover
/// path instead of letting a health probe quietly hide the corpse.
fn fleet(
    count: usize,
    serve: &ServeConfig,
) -> (Vec<qrm_net::Server>, Vec<Arc<PlanService>>, Router) {
    let mut servers = Vec::new();
    let mut services = Vec::new();
    for _ in 0..count {
        let service = Arc::new(build_service(serve));
        let server =
            qrm_net::Server::bind("127.0.0.1:0", Arc::clone(&service), NetConfig::default())
                .expect("bind backend");
        servers.push(server);
        services.push(service);
    }
    let backends: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();
    let config = RouterConfig {
        health_interval: Duration::from_secs(60),
        ..RouterConfig::default()
    };
    let router = Router::bind("127.0.0.1:0", backends, config).expect("bind router");
    assert!(
        qrm_bench::wait_for_server(&router.addr().to_string(), Duration::from_secs(5)),
        "router healthz never came up"
    );
    (servers, services, router)
}

#[test]
fn routed_fleet_digest_matches_in_process_run() {
    // clients=3 x batches=4 x repeat=2 = 24 submissions; the second
    // pass repeats the first's specs, so with caching on it exercises
    // the cached path on whichever backend each spec homed to.
    let serve = ServeConfig {
        clients: 3,
        batches: 4,
        shots: 1,
        size: 12,
        workers: 1,
        cache_bytes: 1 << 20,
        repeat: 2,
        ..ServeConfig::default()
    };
    let local = service_load(&serve);

    let (_servers, services, router) = fleet(3, &serve);
    let (routed, router_stats) = route_load(&router.addr().to_string(), &serve);

    assert_eq!(routed.digest, local.digest, "fleet digest != in-process");
    let lines: Vec<String> = local.digest.iter().map(DigestRow::line).collect();
    assert_eq!(
        routed
            .digest
            .iter()
            .map(DigestRow::line)
            .collect::<Vec<_>>(),
        lines,
        "digest lines are byte-identical"
    );

    // Every submission was relayed exactly once, none were refused.
    assert_eq!(router_stats.requests, 24);
    assert_eq!(router_stats.relayed, 24);
    assert_eq!(router_stats.no_backend, 0);
    assert_eq!(router_stats.failovers, 0, "no failure, no failover");
    let routed_total: u64 = router_stats.backends.iter().map(|b| b.routed).sum();
    assert_eq!(routed_total, 24);
    assert!(router_stats.backends.iter().all(|b| b.healthy));

    // No double execution: across the fleet, exactly one service call
    // (cached or planned) per submission.
    let served: u64 = services.iter().map(|s| s.stats().batches_served).sum();
    assert_eq!(served, 24);
    // The repeat pass hit warm caches: placement is spec-keyed, so a
    // spec's second submission landed on the backend whose cache its
    // first submission filled.
    let hits: u64 = services.iter().map(|s| s.stats().cache.hits).sum();
    assert_eq!(hits, 12, "every second-pass spec was a cache hit");
}

#[test]
fn authed_fleet_relays_credentials_to_backends() {
    let serve = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let token = "fleet-secret";
    // Backends demand a bearer token; the router holds no credential of
    // its own and must forward each caller's `Authorization` verbatim.
    let mut servers = Vec::new();
    let mut services = Vec::new();
    for _ in 0..3 {
        let service = Arc::new(build_service(&serve));
        let config = NetConfig {
            auth_token: Some(token.to_string()),
            ..NetConfig::default()
        };
        servers.push(
            qrm_net::Server::bind("127.0.0.1:0", Arc::clone(&service), config)
                .expect("bind backend"),
        );
        services.push(service);
    }
    let backends: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();
    let router = Router::bind("127.0.0.1:0", backends, RouterConfig::default()).expect("bind");
    assert!(
        qrm_bench::wait_for_server(&router.addr().to_string(), Duration::from_secs(5)),
        "router healthz never came up (health probes are auth-exempt)"
    );

    let request = SubmitBatch::new("qrm", BatchSpec::new(2, 12, 7700));
    let expected = build_service(&serve)
        .submit(&request)
        .expect("in-process baseline");

    // With the credential, the routed report matches in-process.
    let mut authed = Client::connect(router.addr().to_string()).with_auth_token(token);
    let report = authed
        .submit(&request)
        .expect("authed submit through the router");
    assert_eq!(report.reports, expected.reports, "authed fleet != baseline");

    // Without it, the backend's 401 travels back through the router
    // untouched — the router neither strips nor supplies credentials.
    let mut anon = Client::connect(router.addr().to_string());
    match anon.submit(&request).unwrap_err() {
        qrm_net::ClientError::Http { status, reply } => {
            assert_eq!(status, 401);
            assert_eq!(reply.expect("typed error").code, "unauthorized");
        }
        other => panic!("expected HTTP 401 through the router, got {other}"),
    }
    let served: u64 = services.iter().map(|s| s.stats().batches_served).sum();
    assert_eq!(served, 1, "only the authed submission executed");
}

/// The deterministic request stream of the fault-injection scenario:
/// request `i` and request `i + n/2` are identical, so the second half
/// re-submits the first half's specs after the fleet has lost a node.
fn fleet_request(i: usize, n: usize) -> SubmitBatch {
    let base = i % (n / 2);
    let planner = ["qrm", "typical", "tetris"][base % 3];
    SubmitBatch::new(planner, BatchSpec::new(1, 12, 4400 + base as u64))
}

#[test]
fn backend_killed_mid_load_fails_over_without_double_execution() {
    let n = 24;
    let serve = ServeConfig {
        workers: 1,
        cache_bytes: 1 << 20,
        ..ServeConfig::default()
    };

    // Baseline: the same stream through one in-process service.
    let baseline_service = build_service(&serve);
    let baseline: Vec<_> = (0..n)
        .map(|i| {
            baseline_service
                .submit(&fleet_request(i, n))
                .expect("baseline submit")
        })
        .collect();

    let (mut servers, services, router) = fleet(3, &serve);
    let mut client = Client::connect(router.addr().to_string());

    // First half: the fleet is whole.
    for (i, expected) in baseline.iter().enumerate().take(n / 2) {
        let report = client
            .submit(&fleet_request(i, n))
            .expect("pre-failure submit");
        assert_eq!(
            report.reports, expected.reports,
            "request {i}: fleet != baseline"
        );
    }

    // Kill the busiest backend — the one whose cache the most first-half
    // specs warmed — so the second half *must* fail over. The health
    // thread won't re-probe for a minute (see `fleet`), so the router
    // still believes the corpse is healthy: every re-submitted spec
    // homed there hits the sever, observes the bytes-free close, and
    // moves to the next ring candidate.
    let stats = router.stats();
    let victim = (0..servers.len())
        .max_by_key(|&i| {
            stats
                .backends
                .iter()
                .find(|b| b.addr == servers[i].addr().to_string())
                .expect("backend in stats")
                .routed
        })
        .expect("non-empty fleet");
    let victim_routed = stats
        .backends
        .iter()
        .map(|b| b.routed)
        .max()
        .expect("stats");
    assert!(
        victim_routed > 0,
        "victim served nothing; sever would be vacuous"
    );
    servers[victim].debug_sever();

    // Second half: identical specs, one backend down, all must serve —
    // byte-identically.
    for (i, expected) in baseline.iter().enumerate().skip(n / 2) {
        let report = client
            .submit(&fleet_request(i, n))
            .expect("post-failure submit");
        assert_eq!(
            report.reports, expected.reports,
            "request {i}: fleet != baseline"
        );
    }

    let stats = router.stats();
    assert_eq!(stats.relayed, n as u64, "every submission served");
    assert_eq!(stats.no_backend, 0);
    // The first re-submitted spec homed on the victim observes the
    // bytes-free close and fails over; that failure also demotes the
    // victim in the candidate order, so later specs skip it outright —
    // failovers stay at one, not one per spec.
    assert!(
        stats.failovers >= 1,
        "the dead backend's specs must fail over"
    );
    let victim_addr = servers[victim].addr().to_string();
    let victim_row = stats
        .backends
        .iter()
        .find(|b| b.addr == victim_addr)
        .expect("victim in stats");
    assert!(!victim_row.healthy, "failover marks the victim unhealthy");
    assert_eq!(
        victim_row.failed_over, stats.failovers,
        "only the victim failed over"
    );

    // No double execution anywhere: the sever happens strictly before
    // execution, so across the whole fleet exactly `n` submissions were
    // served (first-half work on the victim included).
    let served: u64 = services.iter().map(|s| s.stats().batches_served).sum();
    assert_eq!(served, n as u64);
}

//! Cross-crate integration: the parallel planning engine must be
//! **bit-identical** to the serial path — schedule, predicted grid,
//! fill flag, and iteration count — for every worker count, every
//! planner that overrides `plan_batch`, and across the full pipeline.

use atom_rearrange::prelude::*;
use proptest::prelude::*;
use qrm_core::scheduler::Plan;
use rand::SeedableRng;

fn workload(n: usize, size: usize, seed: u64) -> Vec<(AtomGrid, Rect)> {
    let mut rng = qrm_core::loading::seeded_rng(seed);
    let side = ((size * 3 / 5) & !1).max(2);
    (0..n)
        .map(|_| {
            (
                AtomGrid::random(size, size, 0.5, &mut rng),
                Rect::centered(size, size, side, side).unwrap(),
            )
        })
        .collect()
}

/// Field-by-field comparison so a mismatch names the differing field
/// instead of dumping two full plans.
fn assert_plans_identical(expected: &Plan, got: &Plan, context: &str) {
    assert_eq!(expected.schedule, got.schedule, "{context}: schedule");
    assert_eq!(
        expected.predicted, got.predicted,
        "{context}: predicted grid"
    );
    assert_eq!(expected.filled, got.filled, "{context}: fill flag");
    assert_eq!(expected.iterations, got.iterations, "{context}: iterations");
}

#[test]
fn parallel_engine_is_bit_identical_across_sizes_and_workers() {
    for (size, shots, seed) in [(10usize, 8usize, 1u64), (20, 6, 2), (50, 4, 3)] {
        let jobs = workload(shots, size, seed);
        let serial = QrmScheduler::new(QrmConfig::default());
        let expected: Vec<Plan> = jobs
            .iter()
            .map(|(g, t)| serial.plan(g, t).unwrap())
            .collect();
        for workers in [1usize, 2, 4, 16] {
            let engine = PlanEngine::new(QrmConfig::default()).with_workers(workers);
            let got = engine.plan_batch(&jobs).unwrap();
            assert_eq!(got.len(), expected.len());
            for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
                assert_plans_identical(e, g, &format!("size {size}, workers {workers}, shot {i}"));
            }
        }
    }
}

#[test]
fn engine_covers_every_qrm_configuration() {
    use qrm_core::kernel::KernelStrategy;
    let jobs = workload(4, 20, 11);
    for strategy in [
        KernelStrategy::Greedy,
        KernelStrategy::GreedyTargetOnly,
        KernelStrategy::Balanced,
    ] {
        for merge in [true, false] {
            let config = QrmConfig::default()
                .with_strategy(strategy)
                .with_merge_quadrants(merge);
            let serial = QrmScheduler::new(config.clone());
            let engine = PlanEngine::new(config).with_workers(4);
            let got = engine.plan_batch(&jobs).unwrap();
            for (i, ((g, t), plan)) in jobs.iter().zip(&got).enumerate() {
                assert_plans_identical(
                    &serial.plan(g, t).unwrap(),
                    plan,
                    &format!("{strategy:?} merge={merge} shot {i}"),
                );
            }
        }
    }
}

#[test]
fn accelerator_batch_matches_serial_model() {
    let jobs = workload(4, 20, 21);
    for cfg in [AcceleratorConfig::paper(), AcceleratorConfig::balanced()] {
        let accel = QrmAccelerator::new(cfg);
        let reports = accel.run_batch(&jobs).unwrap();
        for (i, ((g, t), report)) in jobs.iter().zip(&reports).enumerate() {
            let single = accel.run(g, t).unwrap();
            assert_plans_identical(&single.plan, &report.plan, &format!("fpga shot {i}"));
            assert_eq!(
                single.cycles, report.cycles,
                "fpga shot {i}: modelled cycles must not depend on host parallelism"
            );
        }
    }
}

#[test]
fn batched_plans_execute_exactly_as_predicted() {
    let jobs = workload(6, 20, 31);
    let engine = PlanEngine::new(QrmConfig::default()).with_workers(4);
    let plans = engine.plan_batch(&jobs).unwrap();
    for ((grid, _), plan) in jobs.iter().zip(&plans) {
        let report = Executor::new().run(grid, &plan.schedule).unwrap();
        assert_eq!(report.final_grid, plan.predicted);
        assert_eq!(report.final_grid.atom_count(), grid.atom_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `plan_batch` equals mapped `plan` for every planner in the
    /// workspace — the trait-level contract the engine overrides must
    /// honour (serial-default baselines included).
    #[test]
    fn plan_batch_equals_mapped_plan(
        half in 2usize..10,
        fill in 0.3f64..0.7,
        seed in any::<u64>(),
        shots in 1usize..5,
    ) {
        let size = half * 2;
        let side = ((size * 3 / 5) & !1).max(2);
        let target = Rect::centered(size, size, side, side).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs: Vec<(AtomGrid, Rect)> = (0..shots)
            .map(|_| (AtomGrid::random(size, size, fill, &mut rng), target))
            .collect();

        let qrm = QrmScheduler::new(QrmConfig::default());
        let fpga = QrmAccelerator::new(AcceleratorConfig::paper());
        let tetris = TetrisScheduler::default();
        let planners: [&dyn Planner; 3] = [&qrm, &fpga, &tetris];
        for planner in planners {
            let mapped: Result<Vec<Plan>, _> =
                jobs.iter().map(|(g, t)| planner.plan(g, t)).collect();
            let batched = planner.plan_batch(&jobs);
            match (mapped, batched) {
                (Ok(m), Ok(b)) => prop_assert_eq!(m, b, "{} diverged", planner.name()),
                (Err(_), Err(_)) => {}
                (m, b) => prop_assert!(
                    false,
                    "{}: mapped {:?} vs batched {:?}",
                    planner.name(),
                    m.map(|v| v.len()),
                    b.map(|v| v.len())
                ),
            }
        }
    }
}

//! Contract tests every planner in the workspace must satisfy on shared
//! instances: schedules execute exactly as predicted, atoms are
//! conserved, motion respects each planner's execution policy, and
//! `plan_batch` is observationally equal to mapping `plan` — for all
//! seven `Planner` implementations (QRM, typical, the four baselines,
//! the FPGA model).

use atom_rearrange::prelude::*;
use qrm_baselines::mta1::mta1_executor;
use qrm_bench::planner_matrix;
use qrm_core::executor::Executor as StrictExecutor;
use qrm_core::scheduler::Plan;
use qrm_core::typical::TypicalScheduler;

/// All seven planner implementations behind the unified trait — the
/// canonical registry (`qrm_bench::planner_matrix`) shared with the
/// benchmark harness, so a new planner joins contract coverage by being
/// added in exactly one place.
fn all_seven() -> Vec<Box<dyn Planner>> {
    planner_matrix()
}

/// Multi-worker variants of the two engine-backed planners, so the
/// batch contract also exercises the pooled task-graph path (the matrix
/// uses the automatic worker policy, which is inline on a 1-core host).
fn pooled_variants() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(QrmScheduler::new(QrmConfig::default()).with_workers(3)),
        Box::new(QrmAccelerator::new(AcceleratorConfig::balanced()).with_workers(3)),
    ]
}

fn instances(n: usize, size: usize, min_atoms: usize) -> Vec<AtomGrid> {
    let mut rng = qrm_core::loading::seeded_rng(4242);
    let loader = LoadModel::new(0.5);
    (0..n)
        .map(|_| {
            loader
                .load_at_least(size, size, min_atoms, 64, &mut rng)
                .unwrap()
        })
        .collect()
}

fn check_strict(planner: &dyn Planner, grids: &[AtomGrid], target: &Rect) {
    for (i, grid) in grids.iter().enumerate() {
        let plan = planner
            .plan(grid, target)
            .unwrap_or_else(|e| panic!("{} failed on instance {i}: {e}", planner.name()));
        let report = StrictExecutor::new()
            .run(grid, &plan.schedule)
            .unwrap_or_else(|e| panic!("{} schedule invalid on {i}: {e}", planner.name()));
        assert_eq!(
            report.final_grid,
            plan.predicted,
            "{} prediction mismatch on {i}",
            planner.name()
        );
        assert_eq!(
            report.final_grid.atom_count(),
            grid.atom_count(),
            "{} lost atoms on {i}",
            planner.name()
        );
        assert_eq!(
            plan.filled,
            report.target_filled(target).unwrap(),
            "{} fill flag wrong on {i}",
            planner.name()
        );
    }
}

#[test]
fn qrm_balanced_contract() {
    let grids = instances(8, 20, 160);
    let target = Rect::centered(20, 20, 12, 12).unwrap();
    check_strict(&QrmScheduler::new(QrmConfig::default()), &grids, &target);
}

#[test]
fn qrm_greedy_contract() {
    let grids = instances(8, 20, 160);
    let target = Rect::centered(20, 20, 12, 12).unwrap();
    check_strict(&QrmScheduler::new(QrmConfig::paper()), &grids, &target);
}

#[test]
fn typical_contract() {
    let grids = instances(6, 20, 160);
    let target = Rect::centered(20, 20, 12, 12).unwrap();
    check_strict(&TypicalScheduler::default(), &grids, &target);
}

#[test]
fn tetris_contract() {
    let grids = instances(6, 20, 160);
    let target = Rect::centered(20, 20, 12, 12).unwrap();
    check_strict(&TetrisScheduler::default(), &grids, &target);
}

#[test]
fn psca_contract() {
    let grids = instances(6, 20, 160);
    let target = Rect::centered(20, 20, 12, 12).unwrap();
    check_strict(&PscaScheduler::default(), &grids, &target);
}

#[test]
fn fpga_accelerator_contract() {
    let grids = instances(6, 20, 160);
    let target = Rect::centered(20, 20, 12, 12).unwrap();
    check_strict(
        &QrmAccelerator::new(AcceleratorConfig::balanced()),
        &grids,
        &target,
    );
}

#[test]
fn plan_batch_equals_mapped_plan_for_all_seven_planners() {
    // The trait-level batching contract on a seeded workload: batched
    // plans equal per-shot plans, for every implementation — including
    // the two that route batches through the pooled task-graph engine
    // (QRM software, FPGA model) — and a second batch through the same
    // (now warm) planner instance is identical to the first.
    let grids = instances(4, 16, 100);
    let target = Rect::centered(16, 16, 10, 10).unwrap();
    let jobs: Vec<(AtomGrid, Rect)> = grids.iter().map(|g| (g.clone(), target)).collect();
    let mut planners = all_seven();
    assert_eq!(planners.len(), 7);
    planners.extend(pooled_variants());
    for planner in &planners {
        let mapped: Vec<Plan> = jobs
            .iter()
            .map(|(g, t)| planner.plan(g, t).unwrap())
            .collect();
        let batched = planner.plan_batch(&jobs).unwrap();
        assert_eq!(batched, mapped, "{} batch != mapped plan", planner.name());
        let warm = planner.plan_batch(&jobs).unwrap();
        assert_eq!(warm, batched, "{} warm batch diverged", planner.name());
    }
}

#[test]
fn every_planner_schedule_executes_under_its_own_contract() {
    // `Planner::executor` must supply a policy that validates the
    // planner's own schedules — no caller-side algorithm sniffing.
    let grids = instances(3, 16, 100);
    let target = Rect::centered(16, 16, 8, 8).unwrap();
    for planner in &all_seven() {
        let executor = planner.executor();
        for (i, grid) in grids.iter().enumerate() {
            let plan = planner.plan(grid, &target).unwrap();
            let report = executor
                .run(grid, &plan.schedule)
                .unwrap_or_else(|e| panic!("{} schedule invalid on {i}: {e}", planner.name()));
            assert_eq!(
                report.final_grid,
                plan.predicted,
                "{} prediction mismatch on {i}",
                planner.name()
            );
        }
    }
}

#[test]
fn mta1_contract_under_flyover_policy() {
    // MTA1's documented execution contract uses endpoints-only paths.
    let grids = instances(6, 20, 160);
    let target = Rect::centered(20, 20, 12, 12).unwrap();
    let planner = Mta1Scheduler::default();
    for (i, grid) in grids.iter().enumerate() {
        let plan = planner.plan(grid, &target).unwrap();
        let report = mta1_executor().run(grid, &plan.schedule).unwrap();
        assert_eq!(report.final_grid, plan.predicted, "instance {i}");
        assert_eq!(report.final_grid.atom_count(), grid.atom_count());
    }
}

#[test]
fn all_aod_planners_emit_unit_steps() {
    // AOD row/column shift planners produce unit-step axis-aligned moves
    // (MTA1 is exempt: single-tweezer transport uses long legs).
    let grids = instances(3, 16, 100);
    let target = Rect::centered(16, 16, 10, 10).unwrap();
    let qrm = QrmScheduler::new(QrmConfig::default());
    let typical = TypicalScheduler::default();
    let tetris = TetrisScheduler::default();
    let psca = PscaScheduler::default();
    let planners: Vec<&dyn Planner> = vec![&qrm, &typical, &tetris, &psca];
    for planner in planners {
        for grid in &grids {
            let plan = planner.plan(grid, &target).unwrap();
            for mv in &plan.schedule {
                assert!(mv.is_axis_aligned(), "{}: {mv}", planner.name());
                assert_eq!(mv.step(), 1, "{}: {mv}", planner.name());
            }
        }
    }
}

#[test]
fn quadrant_starvation_is_a_qrm_limitation_not_a_tetris_one() {
    // QRM's 4-way decomposition never moves atoms across quadrant
    // boundaries; whole-array planners can. Build an instance where one
    // quadrant is starved but the global supply is ample.
    let mut grid = AtomGrid::new(12, 12).unwrap();
    // NW quadrant (rows 0..6, cols 0..6) almost empty: 2 atoms.
    grid.set_unchecked(0, 0, true);
    grid.set_unchecked(5, 5, true);
    // The other three quadrants dense.
    for r in 0..12 {
        for c in 0..12 {
            if (r < 6 && c < 6) || (r + c) % 5 == 4 {
                continue;
            }
            grid.set_unchecked(r, c, true);
        }
    }
    let target = Rect::centered(12, 12, 8, 8).unwrap();
    // target needs 64; NW quadrant owns 16 of them but has only 2 atoms.
    let qrm = QrmScheduler::new(QrmConfig::default())
        .plan(&grid, &target)
        .unwrap();
    assert!(
        !qrm.filled,
        "QRM cannot import atoms into a starved quadrant"
    );
    assert!(qrm.defects(&target).unwrap() >= 10);

    // Whole-array planners can import atoms across the boundary and do
    // strictly better here (Tetris fully, MTA1 fully).
    let tetris = TetrisScheduler::default().plan(&grid, &target).unwrap();
    let tetris_defects = target.area() - tetris.predicted.count_in(&target).unwrap();
    assert!(
        tetris_defects + 8 <= qrm.defects(&target).unwrap(),
        "tetris {tetris_defects} vs qrm {}",
        qrm.defects(&target).unwrap()
    );
    let mta1 = Mta1Scheduler::default().plan(&grid, &target).unwrap();
    assert!(mta1.filled, "single-tweezer routing should fill");
}

#[test]
fn fill_quality_ordering_is_sane() {
    // On generously-supplied instances every planner should assemble
    // most of the target; QRM-balanced should be (weakly) best.
    let grids = instances(6, 16, 140);
    let target = Rect::centered(16, 16, 8, 8).unwrap();
    let qrm = QrmScheduler::new(QrmConfig::default());
    let tetris = TetrisScheduler::default();
    let mut qrm_filled = 0;
    let mut tetris_filled = 0;
    for grid in &grids {
        qrm_filled += usize::from(qrm.plan(grid, &target).unwrap().filled);
        tetris_filled += usize::from(tetris.plan(grid, &target).unwrap().filled);
    }
    assert!(qrm_filled >= 5, "qrm filled only {qrm_filled}/6");
    assert!(tetris_filled >= 4, "tetris filled only {tetris_filled}/6");
}

//! Property-based integration tests (proptest) over randomly generated
//! instances: planner invariants, hardware/software equivalence, and
//! encoding round trips.

use atom_rearrange::prelude::*;
use proptest::prelude::*;
use qrm_core::kernel::KernelStrategy;
use rand::SeedableRng;

/// Strategy: an even-sized square grid with independent per-site fill.
fn arb_grid() -> impl Strategy<Value = AtomGrid> {
    (2usize..12, 0.2f64..0.8, any::<u64>()).prop_map(|(half, fill, seed)| {
        let size = half * 2;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        AtomGrid::random(size, size, fill, &mut rng)
    })
}

/// A centred even target at the paper's ~60% linear fraction (the
/// evaluated operating regime: the target claims ~36% of the sites at
/// ~50% fill).
fn target_for(grid: &AtomGrid) -> Rect {
    let side = ((grid.height() * 3 / 5) & !1).max(2);
    Rect::centered(grid.height(), grid.width(), side, side).expect("fits")
}

/// Regression corpus pinning the balanced planner's *current* fill
/// behaviour on tight-supply instances (minimum per-quadrant margin
/// 1.17x–1.33x — well below the 1.5x margin the probabilistic property
/// below guarantees). The property's 50% margin reflects the parking
/// heuristic's worst case, but these specific instances fill today; a
/// planner regression anywhere in the 1.125x–1.5x band breaks this
/// test even though the property above stays green.
#[test]
fn tight_supply_corpus_still_fills() {
    let corpus: [(usize, u64); 15] = [
        (8, 5),
        (8, 9),
        (8, 10),
        (12, 0),
        (12, 3),
        (12, 6),
        (16, 39),
        (16, 242),
        (16, 293),
        (20, 0),
        (20, 1),
        (20, 2),
        (30, 0),
        (30, 1),
        (30, 2),
    ];
    for (size, seed) in corpus {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let grid = AtomGrid::random(size, size, 0.5, &mut rng);
        let target = target_for(&grid);
        let plan = QrmScheduler::new(QrmConfig::default())
            .plan(&grid, &target)
            .unwrap();
        assert!(
            plan.filled,
            "regression: tight-supply instance (size {size}, seed {seed}) no longer fills \
             ({:?} defects)",
            plan.defects(&target)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qrm_plan_always_executes_and_conserves(grid in arb_grid()) {
        let target = target_for(&grid);
        let plan = QrmScheduler::new(QrmConfig::default()).plan(&grid, &target).unwrap();
        let report = Executor::new().run(&grid, &plan.schedule).unwrap();
        prop_assert_eq!(&report.final_grid, &plan.predicted);
        prop_assert_eq!(report.final_grid.atom_count(), grid.atom_count());
        for mv in &plan.schedule {
            prop_assert!(mv.is_axis_aligned());
            prop_assert_eq!(mv.step(), 1);
        }
        // Enough atoms in EVERY quadrant -> defect-free. (QRM never moves
        // atoms across quadrant boundaries — the price of the 4-way
        // decomposition — so feasibility is per-quadrant, not global.)
        // The balanced kernel's parking heuristic is not a complete
        // transportation solver: with tight supply it can flush atoms
        // west past a column whose deficit only materialises later. A
        // 50% surplus absorbs every such mis-parking in practice
        // (0 failures in ~70k sampled instances at >=1.45x supply).
        let map = qrm_core::quadrant::QuadrantMap::new(grid.height(), grid.width()).unwrap();
        let per_quadrant_need = target.area() / 4;
        let supplied = map.split(&grid).unwrap().iter().all(|q| {
            q.atom_count() * 2 >= per_quadrant_need * 3 // 50% margin
        });
        if supplied {
            prop_assert!(plan.filled, "defects {:?}", plan.defects(&target));
        }
    }

    #[test]
    fn fpga_equals_software_on_random_instances(grid in arb_grid()) {
        let target = target_for(&grid);
        for (strategy, iters) in [(KernelStrategy::Greedy, 4usize), (KernelStrategy::Balanced, 8)] {
            let accel = QrmAccelerator::new(
                AcceleratorConfig::paper()
                    .with_strategy(strategy)
                    .with_iterations(iters),
            );
            let hw = accel.run(&grid, &target).unwrap();
            let exec = Executor::new().run(&grid, &hw.plan.schedule).unwrap();
            prop_assert_eq!(&exec.final_grid, &hw.plan.predicted);
            // analysis latency equals the closed form
            let model = LatencyModel::new(*accel.config());
            prop_assert_eq!(
                model.analysis_cycles(grid.height(), target.height),
                hw.cycles.analysis()
            );
        }
    }

    #[test]
    fn kernel_moves_atoms_only_toward_centre(grid in arb_grid()) {
        // Global invariant: QRM never increases any atom's distance to
        // the array centre along either axis.
        let target = target_for(&grid);
        let plan = QrmScheduler::new(QrmConfig::default()).plan(&grid, &target).unwrap();
        let h = grid.height() as f64;
        let centre = (h - 1.0) / 2.0;
        let spread = |g: &AtomGrid| -> f64 {
            g.occupied()
                .map(|p| (p.row as f64 - centre).abs() + (p.col as f64 - centre).abs())
                .sum()
        };
        prop_assert!(spread(&plan.predicted) <= spread(&grid) + 1e-9);
    }

    #[test]
    fn bitfield_roundtrip(grid in arb_grid()) {
        let bytes = grid.to_bitfield();
        let back = AtomGrid::from_bitfield(grid.height(), grid.width(), &bytes).unwrap();
        prop_assert_eq!(back, grid);
    }

    #[test]
    fn tetris_plan_always_executes(grid in arb_grid()) {
        let target = target_for(&grid);
        let plan = TetrisScheduler::default().plan(&grid, &target).unwrap();
        let report = Executor::new().run(&grid, &plan.schedule).unwrap();
        prop_assert_eq!(&report.final_grid, &plan.predicted);
        prop_assert_eq!(report.final_grid.atom_count(), grid.atom_count());
    }

    #[test]
    fn awg_program_covers_every_move(grid in arb_grid()) {
        let target = target_for(&grid);
        let plan = QrmScheduler::new(QrmConfig::default()).plan(&grid, &target).unwrap();
        let program = ToneProgram::compile(
            &plan.schedule,
            &AodCalibration::default(),
            &MotionModel::typical(),
        ).unwrap();
        prop_assert_eq!(program.segments().len(), plan.schedule.len());
        // per-segment duration follows the motion model exactly
        for (seg, mv) in program.segments().iter().zip(&plan.schedule) {
            let expect = MotionModel::typical().move_duration_us(mv);
            prop_assert!((seg.duration_us - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn detection_is_exact_at_high_snr(grid in arb_grid()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let layout = TrapLayout::new(grid.height(), grid.width(), 6.0, 4.0);
        let frame = render(&grid, &layout, &ImagingConfig::default(), &mut rng);
        let report = Detector::default().detect(&frame, &layout).unwrap();
        // Otsu needs both classes present; skip degenerate frames.
        if grid.atom_count() > 0 && grid.atom_count() < grid.area() {
            prop_assert_eq!(&report.grid, &grid);
        }
    }
}

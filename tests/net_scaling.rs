//! Connection-scaling acceptance: the C10k decoupling, pinned.
//!
//! Hundreds of mostly-idle keep-alive connections are held open while
//! a deliberately tiny planning pool (`QRM_POOL_THREADS=2`) serves
//! real submissions at full throughput — with reports bit-identical
//! to an in-process run (the sixth determinism leg's scaling half).
//!
//! ## Regression note — why this fails on the old design
//!
//! The pre-event-loop front end ran **one pool job per connection**:
//! `rayon::spawn(handle_connection)` parked a worker inside a blocking
//! `read()` for the whole life of each keep-alive session. With 512
//! open connections and a 2-thread pool, both workers are pinned
//! inside idle connection handlers the moment the third connection
//! arrives; submissions queue behind hundreds of idle handlers and
//! this test times out (the vendored pool's helping scheduler lets a
//! *blocked scope* help execute, but an idle socket read helps
//! no one). The readiness event loop holds every idle connection in
//! one poller registration on one loop thread, so the pool's two
//! workers only ever see actual planning jobs.
//!
//! The suite lives in its own integration-test binary because it must
//! set `QRM_POOL_THREADS` before the process's global pool first
//! spins up.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qrm_bench::{build_service, ServeConfig};
use qrm_net::{Client, NetConfig, Server};
use qrm_server::{BatchSpec, SubmitBatch};

/// Mostly-idle connections held open across the planning load.
const IDLE_CONNECTIONS: usize = 512;

#[test]
fn hundreds_of_idle_connections_do_not_steal_planning_throughput() {
    // Must precede any use of the global pool (first touch sizes it).
    std::env::set_var("QRM_POOL_THREADS", "2");

    let serve_config = ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    };
    let service = Arc::new(build_service(&serve_config));
    let config = NetConfig {
        // Idle connections must stay open for the entire test.
        keep_alive: Duration::from_secs(120),
        ..NetConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service), config).expect("bind loopback");

    // Open the idle herd. Each connection completes one healthz probe
    // (so it is provably established and served, not just SYN-queued)
    // and then sits idle, still registered with the event loop.
    let mut herd = Vec::with_capacity(IDLE_CONNECTIONS);
    for i in 0..IDLE_CONNECTIONS {
        let mut stream = TcpStream::connect(server.addr()).expect("connect idle conn");
        use std::io::{Read, Write};
        stream
            .write_all(b"GET /v1/healthz HTTP/1.1\r\nhost: x\r\n\r\n")
            .expect("probe");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut buf = [0u8; 1024];
        let n = stream.read(&mut buf).expect("probe response");
        assert!(
            String::from_utf8_lossy(&buf[..n]).starts_with("HTTP/1.1 200"),
            "idle conn {i} probe failed"
        );
        herd.push(stream);
    }
    let stats = server.net_stats();
    assert!(
        stats.open_connections >= IDLE_CONNECTIONS as u64,
        "herd not fully open: {stats:?}"
    );
    assert!(stats.peak_open >= IDLE_CONNECTIONS as u64);

    // With all 512 connections idle-open, planning load must run at
    // full throughput on the 2-thread pool — and byte-identically.
    let request = SubmitBatch::new("qrm", BatchSpec::new(2, 12, 31337));
    let expected = service.submit(&request).expect("in-process reference");
    let started = Instant::now();
    let mut client = Client::connect(server.addr().to_string());
    for round in 0..10 {
        let report = client.submit(&request).expect("submit with idle herd open");
        assert_eq!(
            report.reports, expected.reports,
            "round {round}: idle herd changed served bytes"
        );
    }
    let elapsed = started.elapsed();
    // Generous real-time bound: the old design does not finish at all
    // (both workers pinned in idle reads); the event loop finishes in
    // milliseconds-to-seconds. The bound only guards against a silent
    // reintroduction of connection-pinned workers.
    assert!(
        elapsed < Duration::from_secs(60),
        "planning load starved by idle connections: {elapsed:?}"
    );

    // The herd is still alive and served after the load.
    let final_stats = server.net_stats();
    assert!(
        final_stats.open_connections >= IDLE_CONNECTIONS as u64,
        "herd was shed during load: {final_stats:?}"
    );
    drop(herd);
}

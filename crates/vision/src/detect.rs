//! Atom detection: per-trap photometry and thresholding.

use qrm_core::error::Error;
use qrm_core::grid::AtomGrid;

use crate::image::FluorescenceImage;
use crate::layout::TrapLayout;

/// How the occupied/empty decision threshold is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// Fixed threshold on the background-subtracted ROI sum.
    Fixed(f64),
    /// Otsu's method over the per-trap signal histogram — exploits the
    /// bimodal occupied/empty distribution and needs no calibration.
    Otsu,
}

/// Per-trap detection output.
#[derive(Debug, Clone)]
pub struct DetectionReport {
    /// Detected occupancy.
    pub grid: AtomGrid,
    /// Background-subtracted ROI signal per trap (row-major).
    pub signals: Vec<f64>,
    /// Threshold actually applied.
    pub threshold: f64,
}

impl DetectionReport {
    /// Confusion counts against a ground-truth grid:
    /// `(true_pos, false_pos, false_neg, true_neg)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for differing dimensions.
    pub fn confusion(&self, truth: &AtomGrid) -> Result<(usize, usize, usize, usize), Error> {
        if truth.dims() != self.grid.dims() {
            return Err(Error::DimensionMismatch {
                left: self.grid.dims(),
                right: truth.dims(),
            });
        }
        let (mut tp, mut fp, mut fal_n, mut tn) = (0, 0, 0, 0);
        for r in 0..truth.dims().0 {
            for c in 0..truth.dims().1 {
                match (self.grid.get_unchecked(r, c), truth.get_unchecked(r, c)) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fal_n += 1,
                    (false, false) => tn += 1,
                }
            }
        }
        Ok((tp, fp, fal_n, tn))
    }

    /// Fraction of traps classified correctly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for differing dimensions.
    pub fn fidelity(&self, truth: &AtomGrid) -> Result<f64, Error> {
        let (tp, fp, fal_n, tn) = self.confusion(truth)?;
        Ok((tp + tn) as f64 / (tp + fp + fal_n + tn) as f64)
    }
}

/// ROI-photometry detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detector {
    /// Half-width of the square region of interest around each trap
    /// centre, in pixels.
    pub roi_radius_px: usize,
    /// Threshold policy.
    pub policy: ThresholdPolicy,
}

impl Default for Detector {
    fn default() -> Self {
        Detector {
            roi_radius_px: 2,
            policy: ThresholdPolicy::Otsu,
        }
    }
}

impl Detector {
    /// Detects occupancy in `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyGrid`] for a degenerate layout (cannot
    /// happen for layouts built through [`TrapLayout::new`]).
    pub fn detect(
        &self,
        frame: &FluorescenceImage,
        layout: &TrapLayout,
    ) -> Result<DetectionReport, Error> {
        let (rows, cols) = (layout.rows(), layout.cols());
        // Background estimate: median of ROI-corner samples is overkill;
        // a global per-pixel mean over non-ROI pixels suffices at these
        // SNRs. Use the frame's lower percentile as a robust estimate.
        let mut sorted: Vec<f32> = frame.pixels().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in frames"));
        let background = sorted[sorted.len() / 4] as f64;

        let r = self.roi_radius_px as isize;
        let roi_area = ((2 * r + 1) * (2 * r + 1)) as f64;
        let mut signals = Vec::with_capacity(rows * cols);
        for row in 0..rows {
            for col in 0..cols {
                let (cy, cx) = layout.center(row, col);
                let (iy, ix) = (cy.round() as isize, cx.round() as isize);
                let mut sum = 0.0f64;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let (y, x) = (iy + dy, ix + dx);
                        if y >= 0 && x >= 0 {
                            sum += frame.at(y as usize, x as usize) as f64;
                        }
                    }
                }
                signals.push(sum - background * roi_area);
            }
        }

        let threshold = match self.policy {
            ThresholdPolicy::Fixed(t) => t,
            ThresholdPolicy::Otsu => otsu_threshold(&signals),
        };

        let mut grid = AtomGrid::new(rows, cols)?;
        for (i, &s) in signals.iter().enumerate() {
            if s > threshold {
                grid.set_unchecked(i / cols, i % cols, true);
            }
        }
        Ok(DetectionReport {
            grid,
            signals,
            threshold,
        })
    }
}

/// Otsu's threshold over a 256-bin histogram of the signals.
fn otsu_threshold(signals: &[f64]) -> f64 {
    if signals.is_empty() {
        return 0.0;
    }
    let lo = signals.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = signals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi <= lo {
        return lo;
    }
    const BINS: usize = 256;
    let scale = BINS as f64 / (hi - lo);
    let mut hist = [0usize; BINS];
    for &s in signals {
        let b = (((s - lo) * scale) as usize).min(BINS - 1);
        hist[b] += 1;
    }
    let total = signals.len() as f64;
    let sum_all: f64 = hist
        .iter()
        .enumerate()
        .map(|(i, &c)| i as f64 * c as f64)
        .sum();
    let (mut sum_b, mut w_b) = (0.0f64, 0.0f64);
    let (mut best_var, mut first_best, mut last_best) = (0.0f64, 0usize, 0usize);
    for (i, &c) in hist.iter().enumerate() {
        w_b += c as f64;
        if w_b == 0.0 {
            continue;
        }
        let w_f = total - w_b;
        if w_f == 0.0 {
            break;
        }
        sum_b += i as f64 * c as f64;
        let m_b = sum_b / w_b;
        let m_f = (sum_all - sum_b) / w_f;
        let var = w_b * w_f * (m_b - m_f) * (m_b - m_f);
        if var > best_var * (1.0 + 1e-12) {
            best_var = var;
            first_best = i;
            last_best = i;
        } else if var >= best_var * (1.0 - 1e-12) {
            // Plateau: empty histogram bins between the two clusters keep
            // the between-class variance constant; take the midpoint so
            // the threshold sits mid-gap rather than hugging a cluster.
            last_best = i;
        }
    }
    let best_bin = (first_best + last_best) / 2;
    lo + (best_bin as f64 + 0.5) / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{render, ImagingConfig};
    use qrm_core::loading::seeded_rng;

    #[test]
    fn perfect_recovery_at_high_snr() {
        let mut rng = seeded_rng(10);
        for _ in 0..5 {
            let truth = AtomGrid::random(12, 12, 0.5, &mut rng);
            let layout = TrapLayout::new(12, 12, 6.0, 4.0);
            let frame = render(&truth, &layout, &ImagingConfig::default(), &mut rng);
            let report = Detector::default().detect(&frame, &layout).unwrap();
            assert_eq!(report.grid, truth);
            assert_eq!(report.fidelity(&truth).unwrap(), 1.0);
        }
    }

    #[test]
    fn low_snr_degrades_gracefully() {
        let mut rng = seeded_rng(11);
        let truth = AtomGrid::random(14, 14, 0.5, &mut rng);
        let layout = TrapLayout::new(14, 14, 6.0, 4.0);
        let frame = render(&truth, &layout, &ImagingConfig::low_snr(), &mut rng);
        let report = Detector::default().detect(&frame, &layout).unwrap();
        let fidelity = report.fidelity(&truth).unwrap();
        assert!(fidelity > 0.85, "fidelity {fidelity}");
    }

    #[test]
    fn fixed_threshold_policy() {
        let mut rng = seeded_rng(12);
        let truth = AtomGrid::random(8, 8, 0.5, &mut rng);
        let layout = TrapLayout::new(8, 8, 6.0, 4.0);
        let frame = render(&truth, &layout, &ImagingConfig::default(), &mut rng);
        let detector = Detector {
            roi_radius_px: 2,
            policy: ThresholdPolicy::Fixed(150.0),
        };
        let report = detector.detect(&frame, &layout).unwrap();
        assert_eq!(report.threshold, 150.0);
        assert_eq!(report.grid, truth);
    }

    #[test]
    fn confusion_counts_add_up() {
        let mut rng = seeded_rng(13);
        let truth = AtomGrid::random(10, 10, 0.5, &mut rng);
        let layout = TrapLayout::new(10, 10, 6.0, 4.0);
        let frame = render(&truth, &layout, &ImagingConfig::low_snr(), &mut rng);
        let report = Detector::default().detect(&frame, &layout).unwrap();
        let (tp, fp, fal_n, tn) = report.confusion(&truth).unwrap();
        assert_eq!(tp + fp + fal_n + tn, 100);
    }

    #[test]
    fn confusion_dimension_mismatch() {
        let mut rng = seeded_rng(14);
        let truth = AtomGrid::random(6, 6, 0.5, &mut rng);
        let layout = TrapLayout::new(6, 6, 6.0, 4.0);
        let frame = render(&truth, &layout, &ImagingConfig::default(), &mut rng);
        let report = Detector::default().detect(&frame, &layout).unwrap();
        let other = AtomGrid::new(5, 5).unwrap();
        assert!(report.confusion(&other).is_err());
    }

    #[test]
    fn otsu_on_degenerate_inputs() {
        assert_eq!(otsu_threshold(&[]), 0.0);
        assert_eq!(otsu_threshold(&[5.0, 5.0, 5.0]), 5.0);
    }

    #[test]
    fn empty_and_full_arrays() {
        let mut rng = seeded_rng(15);
        let layout = TrapLayout::new(6, 6, 6.0, 4.0);
        // all empty: Otsu on pure noise may fire arbitrarily, so use a
        // fixed threshold scaled to the photon budget
        let empty = AtomGrid::new(6, 6).unwrap();
        let frame = render(&empty, &layout, &ImagingConfig::default(), &mut rng);
        let det = Detector {
            roi_radius_px: 2,
            policy: ThresholdPolicy::Fixed(150.0),
        };
        assert_eq!(det.detect(&frame, &layout).unwrap().grid.atom_count(), 0);
    }
}

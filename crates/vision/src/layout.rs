//! Trap-array to camera-pixel geometry.

/// Maps trap indices to pixel coordinates on the camera sensor.
///
/// Traps form a regular grid with `pitch_px` pixels between neighbouring
/// trap centres and `margin_px` padding around the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrapLayout {
    rows: usize,
    cols: usize,
    pitch_px: f64,
    margin_px: f64,
}

impl TrapLayout {
    /// Creates a layout for `rows x cols` traps.
    ///
    /// # Panics
    ///
    /// Panics for zero dimensions or non-positive pitch.
    pub fn new(rows: usize, cols: usize, pitch_px: f64, margin_px: f64) -> Self {
        assert!(rows > 0 && cols > 0, "trap grid must be non-empty");
        assert!(pitch_px > 0.0, "pitch must be positive");
        assert!(margin_px >= 0.0, "margin must be non-negative");
        TrapLayout {
            rows,
            cols,
            pitch_px,
            margin_px,
        }
    }

    /// Number of trap rows.
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of trap columns.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Pixel pitch between trap centres.
    pub const fn pitch_px(&self) -> f64 {
        self.pitch_px
    }

    /// Pixel centre of trap `(row, col)` as `(y, x)`.
    ///
    /// ```
    /// use qrm_vision::layout::TrapLayout;
    /// let l = TrapLayout::new(4, 4, 10.0, 5.0);
    /// assert_eq!(l.center(0, 0), (5.0, 5.0));
    /// assert_eq!(l.center(1, 2), (15.0, 25.0));
    /// ```
    pub fn center(&self, row: usize, col: usize) -> (f64, f64) {
        (
            self.margin_px + row as f64 * self.pitch_px,
            self.margin_px + col as f64 * self.pitch_px,
        )
    }

    /// Sensor size in pixels as `(height, width)`.
    pub fn image_dims(&self) -> (usize, usize) {
        let h = (2.0 * self.margin_px + (self.rows - 1) as f64 * self.pitch_px).ceil() as usize + 1;
        let w = (2.0 * self.margin_px + (self.cols - 1) as f64 * self.pitch_px).ceil() as usize + 1;
        (h, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centers_and_dims() {
        let l = TrapLayout::new(3, 5, 8.0, 4.0);
        assert_eq!(l.center(0, 0), (4.0, 4.0));
        assert_eq!(l.center(2, 4), (20.0, 36.0));
        let (h, w) = l.image_dims();
        assert!(h >= 25 && w >= 41);
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_rejected() {
        let _ = TrapLayout::new(2, 2, 0.0, 1.0);
    }
}

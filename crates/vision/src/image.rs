//! Synthetic fluorescence-frame rendering.

use rand::Rng;

use qrm_core::grid::AtomGrid;

use crate::layout::TrapLayout;
use crate::noise::{poisson, standard_normal};

/// Physical parameters of the imaging model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImagingConfig {
    /// Mean detected photons per occupied trap during the exposure.
    pub photons_per_atom: f64,
    /// Mean background photons per pixel.
    pub background_per_px: f64,
    /// Gaussian point-spread-function sigma, in pixels.
    pub psf_sigma_px: f64,
    /// Camera read noise sigma, in counts per pixel.
    pub read_noise: f64,
}

impl Default for ImagingConfig {
    /// A comfortable-SNR regime (hundreds of photons per atom, modest
    /// background), typical of site-resolved fluorescence imaging.
    fn default() -> Self {
        ImagingConfig {
            photons_per_atom: 400.0,
            background_per_px: 2.0,
            psf_sigma_px: 1.2,
            read_noise: 1.5,
        }
    }
}

impl ImagingConfig {
    /// A deliberately poor-SNR regime for robustness experiments
    /// (roughly 3 sigma of separation at the ROI level).
    pub fn low_snr() -> Self {
        ImagingConfig {
            photons_per_atom: 90.0,
            background_per_px: 4.0,
            psf_sigma_px: 1.5,
            read_noise: 3.0,
        }
    }
}

/// A single grey-scale camera frame (row-major `f32` counts).
#[derive(Debug, Clone, PartialEq)]
pub struct FluorescenceImage {
    height: usize,
    width: usize,
    pixels: Vec<f32>,
}

impl FluorescenceImage {
    /// Creates a zeroed frame.
    pub fn new(height: usize, width: usize) -> Self {
        FluorescenceImage {
            height,
            width,
            pixels: vec![0.0; height * width],
        }
    }

    /// Frame height in pixels.
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Frame width in pixels.
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Pixel value at `(y, x)`; 0.0 outside the frame.
    pub fn at(&self, y: usize, x: usize) -> f32 {
        if y < self.height && x < self.width {
            self.pixels[y * self.width + x]
        } else {
            0.0
        }
    }

    /// Mutable pixel access.
    ///
    /// # Panics
    ///
    /// Panics outside the frame.
    pub fn at_mut(&mut self, y: usize, x: usize) -> &mut f32 {
        assert!(y < self.height && x < self.width, "pixel out of frame");
        &mut self.pixels[y * self.width + x]
    }

    /// Raw pixel buffer (row-major).
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Sum of all counts.
    pub fn total(&self) -> f64 {
        self.pixels.iter().map(|&p| p as f64).sum()
    }
}

/// Renders a fluorescence frame from ground-truth occupancy.
///
/// Every occupied trap emits a Poisson-distributed photon count spread
/// over a Gaussian PSF; background photons and Gaussian read noise are
/// added per pixel.
pub fn render<R: Rng + ?Sized>(
    truth: &AtomGrid,
    layout: &TrapLayout,
    config: &ImagingConfig,
    rng: &mut R,
) -> FluorescenceImage {
    assert_eq!(
        (layout.rows(), layout.cols()),
        truth.dims(),
        "layout does not match grid"
    );
    let (h, w) = layout.image_dims();
    let mut img = FluorescenceImage::new(h, w);

    // Atom spots.
    let reach = (4.0 * config.psf_sigma_px).ceil() as isize;
    let sigma2 = config.psf_sigma_px * config.psf_sigma_px;
    let norm = 1.0 / (2.0 * std::f64::consts::PI * sigma2);
    for p in truth.occupied() {
        let (cy, cx) = layout.center(p.row, p.col);
        let photons = poisson(config.photons_per_atom, rng) as f64;
        let iy = cy.round() as isize;
        let ix = cx.round() as isize;
        for dy in -reach..=reach {
            for dx in -reach..=reach {
                let (y, x) = (iy + dy, ix + dx);
                if y < 0 || x < 0 || y as usize >= h || x as usize >= w {
                    continue;
                }
                let fy = y as f64 - cy;
                let fx = x as f64 - cx;
                let weight = norm * (-(fy * fy + fx * fx) / (2.0 * sigma2)).exp();
                *img.at_mut(y as usize, x as usize) += (photons * weight) as f32;
            }
        }
    }

    // Background + read noise.
    for px in img.pixels.iter_mut() {
        let bg = poisson(config.background_per_px, rng) as f64;
        let read = config.read_noise * standard_normal(rng);
        *px = (*px as f64 + bg + read).max(0.0) as f32;
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn frame_dimensions_follow_layout() {
        let layout = TrapLayout::new(5, 7, 6.0, 4.0);
        let truth = AtomGrid::new(5, 7).unwrap();
        let mut rng = seeded_rng(1);
        let img = render(&truth, &layout, &ImagingConfig::default(), &mut rng);
        assert_eq!((img.height(), img.width()), layout.image_dims());
    }

    #[test]
    fn occupied_traps_are_brighter() {
        let layout = TrapLayout::new(2, 2, 10.0, 6.0);
        let truth = AtomGrid::parse("#.\n..").unwrap();
        let mut rng = seeded_rng(2);
        let img = render(&truth, &layout, &ImagingConfig::default(), &mut rng);
        let (y0, x0) = layout.center(0, 0);
        let (y1, x1) = layout.center(0, 1);
        let bright = img.at(y0 as usize, x0 as usize);
        let dark = img.at(y1 as usize, x1 as usize);
        assert!(bright > dark + 10.0, "occupied {bright} vs empty {dark}");
    }

    #[test]
    fn total_counts_scale_with_atoms() {
        let layout = TrapLayout::new(4, 4, 8.0, 5.0);
        let mut rng = seeded_rng(3);
        let empty = AtomGrid::new(4, 4).unwrap();
        let mut full = AtomGrid::new(4, 4).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                full.set_unchecked(r, c, true);
            }
        }
        let cfg = ImagingConfig::default();
        let t_empty = render(&empty, &layout, &cfg, &mut rng).total();
        let t_full = render(&full, &layout, &cfg, &mut rng).total();
        // 16 atoms x ~400 photons above background
        assert!(t_full > t_empty + 16.0 * 250.0);
    }

    #[test]
    fn pixel_access_bounds() {
        let img = FluorescenceImage::new(4, 4);
        assert_eq!(img.at(10, 10), 0.0);
        assert_eq!(img.pixels().len(), 16);
    }

    #[test]
    #[should_panic(expected = "layout does not match grid")]
    fn layout_grid_mismatch_panics() {
        let layout = TrapLayout::new(2, 2, 8.0, 4.0);
        let truth = AtomGrid::new(3, 3).unwrap();
        let mut rng = seeded_rng(4);
        let _ = render(&truth, &layout, &ImagingConfig::default(), &mut rng);
    }
}

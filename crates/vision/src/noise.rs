//! Photon and sensor noise sampling.
//!
//! Only `rand`'s uniform primitives are available offline, so Poisson and
//! Gaussian variates are generated here: Knuth's product method for small
//! Poisson means, a normal approximation for large means, and Box–Muller
//! for Gaussians.

use rand::Rng;

/// Samples a standard normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a Poisson variate with mean `lambda`.
///
/// Uses Knuth's method below `lambda = 30` and a clamped normal
/// approximation above (error negligible for photometry purposes).
///
/// # Panics
///
/// Panics for negative or non-finite `lambda`.
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "invalid poisson mean {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0f64);
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerically impossible; guard anyway
            }
        }
    }
    let sample = lambda + lambda.sqrt() * standard_normal(rng);
    sample.max(0.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn poisson_zero_mean() {
        let mut rng = seeded_rng(1);
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn poisson_small_mean_statistics() {
        let mut rng = seeded_rng(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(3.0, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_statistics() {
        let mut rng = seeded_rng(3);
        let n = 5_000;
        let samples: Vec<f64> = (0..n).map(|_| poisson(400.0, &mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 400.0).abs() < 3.0, "mean {mean}");
        assert!((var - 400.0).abs() < 60.0, "var {var}");
    }

    #[test]
    fn normal_statistics() {
        let mut rng = seeded_rng(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "invalid poisson mean")]
    fn negative_mean_panics() {
        let mut rng = seeded_rng(5);
        let _ = poisson(-1.0, &mut rng);
    }
}

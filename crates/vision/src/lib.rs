//! # qrm-vision — fluorescence imaging and atom detection
//!
//! The control loop of a neutral-atom machine starts with a camera frame:
//! occupied traps fluoresce, an atom-detection step converts the image
//! into the binary occupancy matrix, and that bitfield is what the
//! rearrangement accelerator consumes (paper Fig. 1).
//!
//! The paper's evaluation replaces camera data with random matrices
//! (§V-A); this crate closes the loop anyway so the full pipeline is
//! executable end-to-end: [`render`](image::render) synthesises a frame
//! from a ground-truth [`AtomGrid`](qrm_core::grid::AtomGrid) (Gaussian
//! point-spread functions, Poisson shot noise, Gaussian read noise), and
//! [`Detector`](detect::Detector) recovers the occupancy with per-trap
//! region-of-interest photometry and (optionally automatic) thresholding.
//!
//! ```
//! use qrm_vision::prelude::*;
//! use qrm_core::grid::AtomGrid;
//!
//! # fn main() -> Result<(), qrm_core::Error> {
//! let mut rng = qrm_core::loading::seeded_rng(5);
//! let truth = AtomGrid::random(10, 10, 0.5, &mut rng);
//! let layout = TrapLayout::new(10, 10, 6.0, 4.0);
//! let frame = render(&truth, &layout, &ImagingConfig::default(), &mut rng);
//! let report = Detector::default().detect(&frame, &layout)?;
//! assert_eq!(report.grid, truth); // high SNR: perfect recovery
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detect;
pub mod image;
pub mod layout;
pub mod noise;

/// Commonly used items.
pub mod prelude {
    pub use crate::detect::{DetectionReport, Detector, ThresholdPolicy};
    pub use crate::image::{render, FluorescenceImage, ImagingConfig};
    pub use crate::layout::TrapLayout;
}

//! Regenerates every table and figure of the paper's evaluation, and
//! runs end-to-end planner sweeps.
//!
//! Usage: `cargo run --release -p qrm-bench --bin experiments -- [cmd]`
//! where `cmd` is one of `fig7a`, `fig7b`, `fig8`, `headline`,
//! `quality`, `ablations`, `engine`, `system`, `sweep`, `serve`, or
//! `all` (default).
//!
//! `sweep` runs the full image→detect→plan→execute pipeline for one or
//! all seven planners and prints per-planner fill/round/motion numbers
//! plus the worker-pool counters **attributed to each planner's run**
//! (snapshot deltas, so one process sweeping many planners doesn't
//! smear counters across rows):
//!
//! ```text
//! experiments -- sweep [--planner all|qrm|typical|tetris|psca|mta1|hybrid|fpga]
//!                      [--workers N] [--shots N] [--size N] [--rounds N] [--seed N]
//! ```
//!
//! `serve` stands up the long-lived planning service (`qrm_server`)
//! with all seven planners registered and hammers it with concurrent
//! mixed-planner batch submissions from client threads, printing
//! throughput, per-planner latency histograms, service/pool stats, and
//! deterministic per-planner `digest` lines:
//!
//! ```text
//! experiments -- serve [--clients N] [--batches N] [--shots N] [--size N]
//!                      [--rounds N] [--seed N] [--workers N] [--max-inflight N]
//!                      [--cache-bytes N] [--repeat N]
//! ```
//!
//! The same service also runs **over the network** (`qrm_net`, see
//! `docs/PROTOCOL.md`): `--listen ADDR` starts a blocking HTTP server
//! with the same seven-planner registry, and `--remote ADDR` drives
//! the identical load through HTTP clients instead of in-process
//! submission — the printed `digest` lines are byte-identical to the
//! in-process run's (the CI network job diffs them):
//!
//! ```text
//! experiments -- serve --listen 127.0.0.1:7070 [--workers N] [--rounds N] [--max-inflight N]
//!                      [--cache-bytes N] [--auth-token TOK] [--stream-threshold N]
//! experiments -- serve --remote 127.0.0.1:7070 [--clients N] [--batches N] ...
//! ```
//!
//! `--auth-token` makes the `--listen` server require
//! `Authorization: Bearer TOK` (and `--remote` clients send it);
//! `--stream-threshold` chunks response bodies at or above N bytes —
//! both exist so CI can diff the remote digest through the
//! authenticated, streamed path.
//!
//! `route` is the fleet front end (`docs/PROTOCOL.md`, router section):
//! `--listen` stands up a consistent-hash router over running backends,
//! and `--remote` drives the standard load through a router. Digest
//! lines are byte-identical to an in-process `serve` of the same
//! parameters — even when a backend dies mid-load (the CI `fleet` job
//! diffs exactly that):
//!
//! ```text
//! experiments -- route --listen 127.0.0.1:7000 --backends 127.0.0.1:7071,127.0.0.1:7072 [--replicas N]
//! experiments -- route --remote 127.0.0.1:7000 [--clients N] [--batches N] [--repeat N] ...
//! ```
//!
//! `--workers 0` (the default) uses one pool worker per core; any other
//! value only changes how many pool *jobs* run concurrently — OS
//! threads are never spawned after pool initialisation, which the
//! printed `threads_spawned` counter makes visible.

use qrm_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map_or("all", String::as_str);
    let all = cmd == "all";
    if all || cmd == "fig7a" {
        print_fig7a();
    }
    if all || cmd == "fig7b" {
        print_fig7b();
    }
    if all || cmd == "fig8" {
        print_fig8();
    }
    if all || cmd == "headline" {
        print_headline();
    }
    if all || cmd == "quality" {
        print_quality();
    }
    if all || cmd == "ablations" {
        print_ablations();
    }
    if all || cmd == "engine" {
        print_engine();
    }
    if all || cmd == "system" {
        print_system();
    }
    if all || cmd == "sweep" {
        // Skip the command token itself ("all" or "sweep") when one was
        // given; a bare `experiments` has no token to skip.
        match parse_sweep_args(&args[usize::from(!args.is_empty())..]) {
            Ok((planner, sweep)) => print_sweep(&planner, &sweep),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    if all || cmd == "serve" {
        match parse_serve_args(&args[usize::from(!args.is_empty())..]) {
            Ok((ServeMode::InProcess, serve)) => print_serve(&serve, None),
            Ok((ServeMode::Listen(addr), serve)) => serve_listen(&addr, &serve),
            Ok((ServeMode::Remote(addr), serve)) => print_serve(&serve, Some(&addr)),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    // Not part of `all`: routing needs running backends to point at.
    if cmd == "route" {
        match parse_route_args(&args[1..]) {
            Ok((
                RouteMode::Listen {
                    addr,
                    backends,
                    replicas,
                },
                _,
            )) => {
                route_listen(&addr, backends, replicas);
            }
            Ok((RouteMode::Remote(addr), serve)) => print_route(&addr, &serve),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    // Not part of `all`: the trajectory run writes a snapshot file, so
    // it only runs when asked for by name.
    if cmd == "bench-trajectory" {
        match parse_trajectory_args(&args[1..]) {
            Ok(mode) => run_trajectory(&mode),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    if !all
        && !matches!(
            cmd,
            "fig7a"
                | "fig7b"
                | "fig8"
                | "headline"
                | "quality"
                | "ablations"
                | "engine"
                | "system"
                | "sweep"
                | "serve"
                | "route"
                | "bench-trajectory"
        )
    {
        eprintln!("unknown experiment {cmd:?}; use fig7a|fig7b|fig8|headline|quality|ablations|engine|system|sweep|serve|route|bench-trajectory|all");
        std::process::exit(2);
    }
}

/// How `bench-trajectory` runs: measure (full or quick settings) and
/// write a snapshot, or only validate an existing snapshot file.
enum TrajectoryMode {
    Measure { quick: bool, out: String },
    Validate(String),
}

/// Parses `bench-trajectory` flags: `--quick` (reduced iterations for
/// the CI smoke job), `--out PATH` (snapshot destination, default
/// `BENCH_<pr>.json`), `--validate PATH` (schema-check an existing
/// snapshot instead of measuring).
fn parse_trajectory_args(args: &[String]) -> Result<TrajectoryMode, String> {
    let mut quick = false;
    let mut out = format!("BENCH_{}.json", trajectory::TRAJECTORY_PR);
    let mut validate = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--quick" => quick = true,
            "--out" => out = value("--out")?,
            "--validate" => validate = Some(value("--validate")?),
            other => {
                return Err(format!(
                    "unknown bench-trajectory flag {other:?}; use --quick/--out/--validate"
                ))
            }
        }
    }
    Ok(match validate {
        Some(path) => TrajectoryMode::Validate(path),
        None => TrajectoryMode::Measure { quick, out },
    })
}

/// Runs the benchmark trajectory (or validates a snapshot) and exits
/// nonzero on schema violations — the CI bench-smoke contract.
fn run_trajectory(mode: &TrajectoryMode) {
    match mode {
        TrajectoryMode::Validate(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("--validate {path}: {err}");
                    std::process::exit(1);
                }
            };
            if let Err(msg) = trajectory::validate(&text) {
                eprintln!("{path}: schema violation: {msg}");
                std::process::exit(1);
            }
            println!("{path}: valid {} snapshot", trajectory::TRAJECTORY_SCHEMA);
        }
        TrajectoryMode::Measure { quick, out } => {
            let config = if *quick {
                trajectory::TrajectoryConfig::quick()
            } else {
                trajectory::TrajectoryConfig::full()
            };
            println!(
                "== Benchmark trajectory ({} mode) ==",
                if *quick { "quick" } else { "full" }
            );
            let measured = trajectory::measure(&config);
            let json = trajectory::to_json(&measured, *quick);
            trajectory::validate(&json).expect("fresh snapshot validates");
            if let Err(err) = std::fs::write(out, &json) {
                eprintln!("writing {out}: {err}");
                std::process::exit(1);
            }
            println!("{}", trajectory::summary(&measured));
            println!("wrote {out}");
        }
    }
}

/// Parses `sweep` flags (`--planner`, `--workers`, `--shots`, `--size`,
/// `--rounds`, `--seed`) into the planner filter and sweep parameters.
fn parse_sweep_args(args: &[String]) -> Result<(String, SweepConfig), String> {
    let mut planner = "all".to_string();
    let mut sweep = SweepConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--planner" => planner = value("--planner")?,
            "--workers" => sweep.workers = parse_num(&value("--workers")?, "--workers")?,
            "--shots" => {
                sweep.shots = parse_num::<usize>(&value("--shots")?, "--shots")?.max(1);
            }
            "--size" => {
                let size: usize = parse_num(&value("--size")?, "--size")?;
                if size < 4 || !size.is_multiple_of(2) {
                    return Err(format!("--size must be an even number >= 4, got {size}"));
                }
                sweep.size = size;
            }
            "--rounds" => {
                sweep.rounds = parse_num::<usize>(&value("--rounds")?, "--rounds")?.max(1);
            }
            "--seed" => sweep.seed = parse_num(&value("--seed")?, "--seed")?,
            other => {
                return Err(format!(
                    "unknown sweep flag {other:?}; use --planner/--workers/--shots/--size/--rounds/--seed"
                ))
            }
        }
    }
    if planner != "all" && !planner_choices().iter().any(|(name, _)| *name == planner) {
        let names: Vec<&str> = planner_choices().iter().map(|(n, _)| *n).collect();
        return Err(format!(
            "unknown planner {planner:?}; use all or one of {names:?}"
        ));
    }
    Ok((planner, sweep))
}

/// How the `serve` command runs: in-process load, a blocking network
/// server, or network load against a running server.
enum ServeMode {
    InProcess,
    Listen(String),
    Remote(String),
}

/// Parses `serve` flags (`--clients`, `--batches`, `--shots`, `--size`,
/// `--rounds`, `--seed`, `--workers`, `--max-inflight`, plus the
/// mutually exclusive `--listen ADDR` / `--remote ADDR` network modes)
/// into the mode and load parameters.
fn parse_serve_args(args: &[String]) -> Result<(ServeMode, ServeConfig), String> {
    let mut serve = ServeConfig::default();
    let mut mode = ServeMode::InProcess;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--clients" => {
                serve.clients = parse_num::<usize>(&value("--clients")?, "--clients")?.max(1);
            }
            "--batches" => {
                serve.batches = parse_num::<usize>(&value("--batches")?, "--batches")?.max(1);
            }
            "--shots" => {
                serve.shots = parse_num::<usize>(&value("--shots")?, "--shots")?.max(1);
            }
            "--size" => {
                let size: usize = parse_num(&value("--size")?, "--size")?;
                if size < 4 || !size.is_multiple_of(2) {
                    return Err(format!("--size must be an even number >= 4, got {size}"));
                }
                serve.size = size;
            }
            "--rounds" => {
                serve.rounds = parse_num::<usize>(&value("--rounds")?, "--rounds")?.max(1);
            }
            "--seed" => serve.seed = parse_num(&value("--seed")?, "--seed")?,
            "--workers" => serve.workers = parse_num(&value("--workers")?, "--workers")?,
            "--max-inflight" => {
                serve.max_inflight = parse_num(&value("--max-inflight")?, "--max-inflight")?;
            }
            "--cache-bytes" => {
                serve.cache_bytes = parse_num(&value("--cache-bytes")?, "--cache-bytes")?;
            }
            "--repeat" => {
                serve.repeat = parse_num::<usize>(&value("--repeat")?, "--repeat")?.max(1);
            }
            "--auth-token" => {
                // Leaked once per process: `ServeConfig` stays `Copy`.
                serve.auth_token = Some(Box::leak(value("--auth-token")?.into_boxed_str()));
            }
            "--stream-threshold" => {
                serve.stream_threshold =
                    parse_num(&value("--stream-threshold")?, "--stream-threshold")?;
            }
            "--scenario" => serve.scenario = parse_scenario(&value("--scenario")?)?,
            "--listen" => mode = ServeMode::Listen(value("--listen")?),
            "--remote" => mode = ServeMode::Remote(value("--remote")?),
            other => {
                return Err(format!(
                    "unknown serve flag {other:?}; use --clients/--batches/--shots/--size/--rounds/--seed/--workers/--max-inflight/--cache-bytes/--repeat/--auth-token/--stream-threshold/--scenario/--listen/--remote"
                ))
            }
        }
    }
    Ok((mode, serve))
}

/// How the `route` command runs: a blocking router front end over
/// existing backends, or network load against a running router.
enum RouteMode {
    Listen {
        addr: String,
        backends: Vec<String>,
        replicas: usize,
    },
    Remote(String),
}

/// Parses `route` flags: `--listen ADDR --backends A,B,C [--replicas N]`
/// for the router process, or `--remote ADDR` plus the standard `serve`
/// load flags for the driver.
fn parse_route_args(args: &[String]) -> Result<(RouteMode, ServeConfig), String> {
    let mut serve = ServeConfig::default();
    let mut listen = None;
    let mut remote = None;
    let mut backends = Vec::new();
    let mut replicas = qrm_net::RouterConfig::default().replicas;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => listen = Some(value("--listen")?),
            "--remote" => remote = Some(value("--remote")?),
            "--backends" => {
                backends = value("--backends")?
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--replicas" => {
                replicas = parse_num::<usize>(&value("--replicas")?, "--replicas")?.max(1);
            }
            "--clients" => {
                serve.clients = parse_num::<usize>(&value("--clients")?, "--clients")?.max(1);
            }
            "--batches" => {
                serve.batches = parse_num::<usize>(&value("--batches")?, "--batches")?.max(1);
            }
            "--shots" => {
                serve.shots = parse_num::<usize>(&value("--shots")?, "--shots")?.max(1);
            }
            "--size" => {
                let size: usize = parse_num(&value("--size")?, "--size")?;
                if size < 4 || !size.is_multiple_of(2) {
                    return Err(format!("--size must be an even number >= 4, got {size}"));
                }
                serve.size = size;
            }
            "--rounds" => {
                serve.rounds = parse_num::<usize>(&value("--rounds")?, "--rounds")?.max(1);
            }
            "--seed" => serve.seed = parse_num(&value("--seed")?, "--seed")?,
            "--repeat" => {
                serve.repeat = parse_num::<usize>(&value("--repeat")?, "--repeat")?.max(1);
            }
            "--scenario" => serve.scenario = parse_scenario(&value("--scenario")?)?,
            other => {
                return Err(format!(
                    "unknown route flag {other:?}; use --listen/--backends/--replicas or --remote plus --clients/--batches/--shots/--size/--rounds/--seed/--repeat/--scenario"
                ))
            }
        }
    }
    match (listen, remote) {
        (Some(addr), None) => {
            if backends.is_empty() {
                return Err("route --listen needs --backends A,B,...".to_string());
            }
            Ok((
                RouteMode::Listen {
                    addr,
                    backends,
                    replicas,
                },
                serve,
            ))
        }
        (None, Some(addr)) => Ok((RouteMode::Remote(addr), serve)),
        (Some(_), Some(_)) => Err("route takes --listen or --remote, not both".to_string()),
        (None, None) => Err("route needs --listen ADDR or --remote ADDR".to_string()),
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: invalid number {raw:?}"))
}

/// Parses a `--scenario` value into a typed [`qrm_server::Scenario`]:
/// `uniform`, `defects:FRACTION`, `loss:PROB`, `zones:RxC`, or
/// `correlated:GRAIN:PROB`. Validation of the parameter ranges happens
/// server-side in [`qrm_server::BatchSpec::validate`], exactly as for
/// a wire submission.
fn parse_scenario(raw: &str) -> Result<qrm_server::Scenario, String> {
    use qrm_server::Scenario;
    const USAGE: &str =
        "use uniform | defects:FRACTION | loss:PROB | zones:RxC | correlated:GRAIN:PROB";
    let mut parts = raw.split(':');
    let kind = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    match (kind, rest.as_slice()) {
        ("uniform", []) => Ok(Scenario::UniformFill),
        ("defects", [fraction]) => Ok(Scenario::DefectMap {
            dead_fraction: parse_num(fraction, "--scenario defects")?,
        }),
        ("loss", [prob]) => Ok(Scenario::AtomLoss {
            loss_prob: parse_num(prob, "--scenario loss")?,
        }),
        ("zones", [geometry]) => {
            let (rows, cols) = geometry
                .split_once('x')
                .ok_or_else(|| format!("--scenario zones needs RxC; {USAGE}"))?;
            Ok(Scenario::Zones {
                rows: parse_num(rows, "--scenario zones")?,
                cols: parse_num(cols, "--scenario zones")?,
            })
        }
        ("correlated", [grain, prob]) => Ok(Scenario::CorrelatedFill {
            grain: parse_num(grain, "--scenario correlated")?,
            flip_prob: parse_num(prob, "--scenario correlated")?,
        }),
        _ => Err(format!("unknown scenario {raw:?}; {USAGE}")),
    }
}

/// Stands up the HTTP front end on `addr` with the standard
/// seven-planner registry and blocks forever (CI and operators run it
/// as a background process and kill it when done).
fn serve_listen(addr: &str, serve: &ServeConfig) {
    let service = std::sync::Arc::new(build_service(serve));
    let server = match qrm_net::Server::bind(addr, service, net_config(serve)) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("--listen {addr}: bind failed: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "listening on http://{} (planners: {}, workers={}, rounds={}, max_inflight={}, cache_bytes={}, auth={}, stream_threshold={})",
        server.addr(),
        planner_choices().len(),
        serve.workers,
        serve.rounds,
        serve.max_inflight,
        serve.cache_bytes,
        if serve.auth_token.is_some() { "on" } else { "off" },
        serve.stream_threshold,
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Stands up the consistent-hash router on `addr` over `backends` and
/// blocks forever (run as a background process next to the backends,
/// kill when done).
fn route_listen(addr: &str, backends: Vec<String>, replicas: usize) {
    let config = qrm_net::RouterConfig {
        replicas,
        ..qrm_net::RouterConfig::default()
    };
    let count = backends.len();
    let router = match qrm_net::Router::bind(addr, backends, config) {
        Ok(router) => router,
        Err(err) => {
            eprintln!("route --listen {addr}: bind failed: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "routing on http://{} over {} backend(s), {} replica(s) each",
        router.addr(),
        count,
        replicas,
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

/// Drives the standard deterministic load through the router at `addr`
/// and prints the digest plus per-backend routing stats.
fn print_route(addr: &str, serve: &ServeConfig) {
    println!(
        "== Routed fleet load via http://{addr}: {} client(s) x {} batch(es) x {} pass(es), {} shot(s) each, {}x{} array ==",
        serve.clients,
        serve.batches,
        serve.repeat.max(1),
        serve.shots,
        serve.size,
        serve.size,
    );
    if !wait_for_server(addr, std::time::Duration::from_secs(30)) {
        eprintln!("route --remote {addr}: router unreachable after 30 s");
        std::process::exit(1);
    }
    let (report, router) = route_load(addr, serve);
    println!(
        "served {} batch(es) / {} shot(s) ({} filled) in {:.1} ms -> {:.1} batches/s",
        report.submitted,
        report.shots,
        report.filled,
        report.wall_us / 1e3,
        report.batches_per_s
    );
    println!(
        "router: {} request(s), {} relayed, {} failover(s), {} with no backend",
        router.requests, router.relayed, router.failovers, router.no_backend
    );
    println!(
        "{:<22} {:>8} {:>8} {:>12}",
        "backend", "healthy", "routed", "failed_over"
    );
    for backend in &router.backends {
        println!(
            "{:<22} {:>8} {:>8} {:>12}",
            backend.addr, backend.healthy, backend.routed, backend.failed_over
        );
    }
    // Deterministic payload digest — byte-identical to an in-process
    // `serve` run of the same parameters (the CI fleet job diffs it).
    for row in &report.digest {
        println!("{}", row.line());
    }
    println!();
}

fn print_serve(serve: &ServeConfig, remote: Option<&str>) {
    println!(
        "== Planning service load{}: {} client(s) x {} batch(es), {} shot(s) each, {}x{} array, max_inflight={} ==",
        remote.map(|a| format!(" via http://{a}")).unwrap_or_default(),
        serve.clients,
        serve.batches,
        serve.shots,
        serve.size,
        serve.size,
        if serve.max_inflight == 0 {
            "unlimited".to_string()
        } else {
            serve.max_inflight.to_string()
        }
    );
    let report = match remote {
        Some(addr) => {
            if !wait_for_server(addr, std::time::Duration::from_secs(30)) {
                eprintln!("--remote {addr}: server unreachable after 30 s");
                std::process::exit(1);
            }
            remote_load(addr, serve)
        }
        None => service_load(serve),
    };
    println!(
        "served {} batch(es) / {} shot(s) ({} filled) in {:.1} ms -> {:.1} batches/s",
        report.submitted,
        report.shots,
        report.filled,
        report.wall_us / 1e3,
        report.batches_per_s
    );
    let stats = &report.stats;
    println!(
        "admission: peak {} inflight, peak {} queued",
        stats.peak_inflight, stats.peak_queued
    );
    if stats.cache.budget_bytes > 0 {
        println!(
            "cache: {} hit(s) / {} lookup(s), {} entr(ies) holding {} of {} byte(s), {} eviction(s)",
            stats.cache.hits,
            stats.cache.lookups,
            stats.cache.entries,
            stats.cache.bytes,
            stats.cache.budget_bytes,
            stats.cache.evictions,
        );
    }
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "planner", "batches", "shots", "mean_us", "p99_us", "max_us", "contexts"
    );
    for p in &stats.planners {
        println!(
            "{:<10} {:>8} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>10}",
            p.name,
            p.batches,
            p.shots,
            p.latency.mean_us(),
            p.latency.quantile_us(0.99),
            p.latency.max_us(),
            p.contexts
                .map(|c| format!("{}w", c.idle_contexts))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "pool since service start: {} job(s), {} local, {} injector, {} steal(s), {} thread(s) spawned",
        stats.pool.jobs_executed,
        stats.pool.local_hits,
        stats.pool.injector_hits,
        stats.pool.steals,
        stats.pool.threads_spawned
    );
    // Deterministic payload digest — byte-identical between in-process
    // and --remote runs of the same parameters (the CI job diffs it).
    for row in &report.digest {
        println!("{}", row.line());
    }
    println!();
}

fn print_sweep(planner: &str, sweep: &SweepConfig) {
    println!(
        "== End-to-end planner sweep: {} shot(s), {}x{} array, <= {} rounds, workers={} ==",
        sweep.shots,
        sweep.size,
        sweep.size,
        sweep.rounds,
        if sweep.workers == 0 {
            "auto".to_string()
        } else {
            sweep.workers.to_string()
        }
    );
    println!(
        "{:<10} {:>8} {:>12} {:>16} {:>10} {:>12} {:>8} {:>8}",
        "planner", "filled", "mean_rounds", "mean_motion_us", "lost", "wall_us", "jobs", "steals"
    );
    // Per-row pool counters are snapshot deltas around that planner's
    // run (SweepRow::pool), so rows don't accumulate each other's
    // steal/job counts; the footer prints the process-lifetime totals.
    for (name, choice) in planner_choices() {
        if planner != "all" && name != planner {
            continue;
        }
        let row = pipeline_sweep(name, &choice, sweep);
        println!(
            "{:<10} {:>5}/{} {:>12.2} {:>16.1} {:>10} {:>12.0} {:>8} {:>8}",
            row.name,
            row.filled,
            row.total,
            row.mean_rounds,
            row.mean_motion_us,
            row.atoms_lost,
            row.wall_us,
            row.pool.jobs_executed,
            row.pool.steals
        );
    }
    let stats = rayon::global_pool_stats();
    println!(
        "pool (process lifetime): {} worker(s), {} thread(s) ever spawned, {} job(s) executed",
        stats.threads, stats.threads_spawned, stats.jobs_executed
    );
    println!(
        "      {} local pop(s), {} injector take(s), {} steal(s)",
        stats.local_hits, stats.injector_hits, stats.steals
    );
    println!();
}

fn print_fig7a() {
    println!("== Fig. 7(a): QRM execution time, CPU vs FPGA, sizes 10..90 ==");
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>10} | {:>14} {:>14}",
        "size",
        "cpu_full_us",
        "cpu_kernel_us",
        "fpga_us",
        "speedup",
        "paper_fpga_us",
        "paper_speedup"
    );
    for row in fig7a(15) {
        println!(
            "{:>6} {:>12.1} {:>14.1} {:>12.2} {:>9.0}x | {:>14.1} {:>14}",
            row.size,
            row.cpu_us,
            row.cpu_kernel_us,
            row.fpga_us,
            row.speedup,
            row.paper_fpga_us,
            row.paper_speedup
                .map(|x| format!("{x:.0}x"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("(cpu_kernel_us matches the paper's CPU measurement scope — the QRM shift-command");
    println!(
        " analysis; cpu_full_us adds global AOD-legal merging/batching. Paper CPU: i7-1185G7.)\n"
    );
}

fn print_fig7b() {
    println!("== Fig. 7(b): analysis time of rearrangement algorithms, 20x20 array ==");
    println!(
        "{:<32} {:>12} {:>10} {:>12} {:>8}",
        "planner", "analysis_us", "rel_qrm", "paper_us", "filled"
    );
    for row in fig7b(5, 8) {
        println!(
            "{:<32} {:>12.2} {:>9.2}x {:>12} {:>5}/{}",
            row.name,
            row.analysis_us,
            row.relative,
            if row.paper_us.is_nan() {
                "-".to_string()
            } else {
                format!("{:.1}", row.paper_us)
            },
            row.filled,
            row.total
        );
    }
    println!("(paper_us: 0.9 quoted for the FPGA; baselines derived from the quoted 20x/246x/1000x ratios)\n");
}

fn print_fig8() {
    println!("== Fig. 8: FPGA resource utilisation vs array size ==");
    println!("{:>6} {:>8} {:>8} {:>8}", "size", "LUT%", "FF%", "BRAM%");
    for row in fig8() {
        println!(
            "{:>6} {:>7.2}% {:>7.2}% {:>7.2}%",
            row.size, row.lut_pct, row.ff_pct, row.bram_pct
        );
    }
    println!("(paper anchors: 6.31% LUT, 6.19% FF at 90x90; BRAM flat)\n");
}

fn print_headline() {
    println!("== Headline: 50x50 -> 30x30 rearrangement analysis ==");
    let h = headline(15);
    println!(
        "  FPGA model:         {:.2} us ({} cycles @ 250 MHz)  [paper: ~1.0 us]",
        h.fpga_us, h.cycles
    );
    println!(
        "  CPU kernel scope:   {:.1} us   (full plan with batching: {:.1} us)",
        h.cpu_kernel_us, h.cpu_full_us
    );
    println!(
        "  speedup:            {:.0}x                          [paper: ~54x]",
        h.speedup
    );
    println!(
        "  Tetris (this host): {:.0} us -> {:.0}x vs FPGA      [paper: ~300x vs Tetris on the RFSoC ARM core]",
        h.tetris_us, h.vs_tetris_host
    );
    println!();
}

fn print_quality() {
    println!("== E-x1: fill quality, greedy (paper) vs balanced (extension) kernel ==");
    println!(
        "{:<10} {:>6} {:>10} {:>14} {:>12}",
        "strategy", "iters", "filled", "mean_defects", "mean_moves"
    );
    for row in quality(10) {
        println!(
            "{:<10} {:>6} {:>7}/{} {:>14.2} {:>12.1}",
            format!("{:?}", row.strategy),
            row.iterations,
            row.filled,
            row.total,
            row.mean_defects,
            row.mean_moves
        );
    }
    println!("(workload: 50x50 at 50% fill -> centred 30x30)\n");
}

fn print_ablations() {
    println!("== E-x2: quadrant parallelism (modelled FPGA analysis latency) ==");
    println!(
        "{:>6} {:>14} {:>14} {:>8}",
        "size", "4_parallel_us", "1_serial_us", "gain"
    );
    for (size, par, ser) in ablation_quadrants() {
        println!(
            "{:>6} {:>14.2} {:>14.2} {:>7.2}x",
            size,
            par,
            ser,
            ser / par
        );
    }
    println!("\n== E-x3: cross-quadrant command merging (schedule length) ==");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "size", "merged_moves", "unmerged", "saving"
    );
    for (size, merged, unmerged) in ablation_merge(5) {
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>9.1}%",
            size,
            merged,
            unmerged,
            (1.0 - merged / unmerged) * 100.0
        );
    }
    println!();
}

fn print_engine() {
    println!("== E-x5: parallel planning engine, serial vs batched (100x100, 16 shots) ==");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let counts: Vec<usize> = [1usize, 2, 4, cores]
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let (serial_us, rows) = engine_scaling(100, 16, 5, &counts);
    println!("  serial (mapped plan): {serial_us:>10.0} us/batch");
    println!("{:>10} {:>14} {:>10}", "workers", "batch_us", "speedup");
    for row in rows {
        println!(
            "{:>10} {:>14.0} {:>9.2}x",
            row.workers, row.batch_us, row.speedup
        );
    }
    println!(
        "(host has {cores} core(s); speedup > 1 requires > 1 — the software analogue of the\n paper's four parallel QPMs. Plans are bit-identical to the serial path either way.)\n"
    );
}

fn print_system() {
    println!("== E-x4: control-loop latency budgets (paper Fig. 2) ==");
    let h = headline(9);
    let (_, _, text) = system_budgets(h.cpu_full_us, h.fpga_us);
    println!("{text}");
}

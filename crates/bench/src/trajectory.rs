//! The repo's benchmark trajectory: one schema-stable JSON snapshot
//! per PR (`BENCH_<pr>.json` at the repo root), produced by the
//! `experiments bench-trajectory` subcommand.
//!
//! Each snapshot records criterion-derived **median** wall times for
//! every layer of the stack — kernel, engine, pipeline, service,
//! HTTP — plus a microbench of the worker pool's deques: owner
//! push/pop latency and contended steal throughput, measured for both
//! the production Chase-Lev deque and the mutex-protected `VecDeque`
//! it replaced (preserved as [`rayon::bench_support::MutexDeque`]).
//! Because the schema is stable, successive `BENCH_<pr>.json` files
//! diff point-to-point and the CI bench-smoke job can validate any
//! snapshot with [`validate`].
//!
//! The JSON is rendered through the vendored `serde` [`Value`] model
//! and `qrm_wire::json`, whose byte-identical re-encode guarantee
//! keeps checked-in snapshots stable under decode→encode round trips.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::Criterion;
use qrm_control::pipeline::{Pipeline, PipelineConfig, PlannerChoice};
use qrm_core::engine::PlanEngine;
use qrm_core::planner::Planner;
use qrm_core::scheduler::{QrmConfig, QrmScheduler};
use rayon::bench_support::{noop_job, ChaseLevDeque, MutexDeque, StealableDeque};
use serde::Value;

use crate::{build_service, engine_workload, paper_instance, wait_for_server, ServeConfig};

/// Schema identifier carried by every trajectory snapshot; bump the
/// `/v1` suffix on any breaking change to the key set.
pub const TRAJECTORY_SCHEMA: &str = "qrm-bench-trajectory/v1";

/// PR number stamped into the default snapshot (`BENCH_<pr>.json`).
pub const TRAJECTORY_PR: u64 = 10;

/// Jobs the owner pushes per push/pop batch and per steal round.
const DEQUE_BATCH: usize = 256;

/// Jobs in the measured spawn chain (each spawning its successor).
const SPAWN_CHAIN_DEPTH: usize = 256;

/// Shots in the skewed-pipeline workload.
const SKEWED_SHOTS: usize = 8;

/// Measurement settings of a trajectory run.
#[derive(Debug, Clone, Copy)]
pub struct TrajectoryConfig {
    /// Criterion samples per layer benchmark.
    pub sample_size: usize,
    /// Criterion measurement window per layer benchmark.
    pub measurement: Duration,
    /// Criterion warm-up window per layer benchmark.
    pub warm_up: Duration,
    /// Wall-clock window of each contended-steal measurement.
    pub steal_window: Duration,
}

impl TrajectoryConfig {
    /// The checked-in snapshot settings.
    #[must_use]
    pub fn full() -> Self {
        TrajectoryConfig {
            sample_size: 10,
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
            steal_window: Duration::from_millis(400),
        }
    }

    /// Reduced-iteration settings for the CI bench-smoke job: the same
    /// benchmarks end-to-end, just small enough to finish in seconds.
    /// Numbers from a quick run are for schema validation, not
    /// comparison — the snapshot records which mode produced it.
    #[must_use]
    pub fn quick() -> Self {
        TrajectoryConfig {
            sample_size: 3,
            measurement: Duration::from_millis(40),
            warm_up: Duration::from_millis(10),
            steal_window: Duration::from_millis(40),
        }
    }
}

/// Microbench results for one deque flavour.
#[derive(Debug, Clone, Copy)]
pub struct DequeRow {
    /// Owner-side cost of one push plus one pop (ns), uncontended.
    pub owner_push_pop_ns: f64,
    /// Jobs stolen per second with one thief racing the owner.
    pub steal_per_s_1_thief: f64,
    /// Jobs stolen per second with four thieves racing the owner.
    pub steal_per_s_4_thieves: f64,
}

/// One full trajectory measurement (all layers + pool microbench).
#[derive(Debug, Clone, Copy)]
pub struct Trajectory {
    /// Median µs for one QRM quadrant-kernel pass over the paper
    /// instance (size 20).
    pub kernel_us: f64,
    /// Median µs for a `PlanEngine::plan_batch` of 4 shots at size 16.
    pub engine_us: f64,
    /// Median µs for a `Pipeline::run_batch` of 4 shots at size 16.
    pub pipeline_us: f64,
    /// Median µs for one in-process `PlanService::submit`.
    pub service_us: f64,
    /// Median µs for one `qrm_net::Client::submit` over loopback HTTP.
    pub http_us: f64,
    /// Median µs for a repeated in-process submit against a
    /// cache-enabled service — the response-cache hit path, which
    /// bypasses planning *and* the admission gate.
    pub service_cached_us: f64,
    /// Median µs for the same repeated submit over loopback HTTP: the
    /// floor the wire stack (JSON, TCP, HTTP) puts under a cache hit.
    pub http_cached_us: f64,
    /// Median µs for the same submit against a server whose
    /// `stream_threshold` is 1 byte, so every response body goes out
    /// `Transfer-Encoding: chunked` — the streaming path's overhead
    /// relative to the plain `http` median.
    pub http_streamed_us: f64,
    /// Median µs for the same pipeline batch over a **hostile** array:
    /// a deterministic defect map (8% dead sites) plus 2% per-round
    /// atom loss — what scenario workloads cost over the uniform
    /// `pipeline` median.
    pub pipeline_hostile_us: f64,
    /// Median per-shot completion µs of the skewed workload
    /// ([`crate::skewed_workload`]) under the shot-level dataflow
    /// scheduler.
    pub pipeline_skewed_us: f64,
    /// The same workload, same run, through the preserved stage-barrier
    /// baseline (`Pipeline::run_shots_barriered`).
    pub pipeline_skewed_barriered_us: f64,
    /// Per-hand-off cost (ns) of a 256-deep spawn chain on the pool —
    /// the primitive a dataflow shot's observe→plan→execute task chain
    /// is built from.
    pub spawn_chain_ns: f64,
    /// Production Chase-Lev deque microbench.
    pub chase_lev: DequeRow,
    /// Mutex-`VecDeque` baseline microbench.
    pub mutex: DequeRow,
}

/// Runs every layer benchmark and the pool microbench, printing the
/// usual criterion report lines as it goes.
///
/// # Panics
///
/// Panics if any layer's workload fails to plan — all workloads are
/// valid by construction, so a panic means a planner regression.
#[must_use]
pub fn measure(config: &TrajectoryConfig) -> Trajectory {
    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("trajectory");
    group
        .sample_size(config.sample_size)
        .measurement_time(config.measurement)
        .warm_up_time(config.warm_up);

    // Kernel layer: the QRM scheduler's four quadrant kernels on the
    // paper instance, no engine/pipeline wrapping.
    let (grid, target) = paper_instance(20, 909);
    let scheduler = QrmScheduler::new(QrmConfig::paper());
    let kernel_us = 1e6
        * group
            .bench_median("kernel", |b| {
                b.iter(|| scheduler.plan(&grid, &target).expect("kernel plan"));
            })
            .expect("kernel median");

    // Engine layer: batched planning through the context pool and the
    // work-stealing pool.
    let jobs = engine_workload(16, 4);
    let engine = PlanEngine::new(QrmConfig::default()).with_workers(0);
    let engine_us = 1e6
        * group
            .bench_median("engine", |b| {
                b.iter(|| engine.plan_batch(&jobs).expect("engine batch"));
            })
            .expect("engine median");

    // Pipeline layer: full closed-loop rounds (imaging, planning,
    // execution, loss) with per-item sharded stages.
    let spec = qrm_server::BatchSpec::new(4, 16, 606);
    let truths = spec.workload().expect("pipeline workload").truths;
    let rect = spec.target().expect("pipeline target");
    let pipeline = Pipeline::new(PipelineConfig {
        planner: PlannerChoice::Software(QrmConfig::paper()),
        workers: 0,
        max_rounds: 2,
        ..PipelineConfig::default()
    });
    let pipeline_us = 1e6
        * group
            .bench_median("pipeline", |b| {
                b.iter(|| {
                    pipeline
                        .run_batch(&truths, &rect, 606)
                        .expect("pipeline batch")
                });
            })
            .expect("pipeline median");

    // Hostile-pipeline layer: the same closed loop on a hostile array —
    // a deterministic defect map killing 8% of sites plus per-round
    // atom loss — so the snapshot prices what scenario workloads add
    // over the uniform `pipeline` median.
    let hostile_spec =
        qrm_server::BatchSpec::new(4, 16, 606).with_scenario(qrm_server::Scenario::DefectMap {
            dead_fraction: 0.08,
        });
    let hostile = hostile_spec.workload().expect("hostile workload");
    let hostile_config = PipelineConfig {
        planner: PlannerChoice::Software(QrmConfig::paper()),
        workers: 0,
        max_rounds: 2,
        loss_prob: 0.02,
        ..PipelineConfig::default()
    };
    let hostile_planner = hostile_config.planner.resolve(hostile_config.workers);
    let hostile_pipeline = Pipeline::new(hostile_config);
    let pipeline_hostile_us = 1e6
        * group
            .bench_median("pipeline_hostile", |b| {
                b.iter(|| {
                    hostile_pipeline
                        .run_batch_zones_tracked(
                            &*hostile_planner,
                            &hostile.truths,
                            &hostile.zones,
                            606,
                        )
                        .expect("hostile batch")
                });
            })
            .expect("hostile pipeline median");

    // Service layer: the same submission repeated against a warm
    // in-process service (planner registry + admission + stats).
    let serve = ServeConfig {
        shots: 2,
        size: 12,
        rounds: 2,
        ..ServeConfig::default()
    };
    let service = build_service(&serve);
    let request = qrm_server::SubmitBatch::new("qrm", qrm_server::BatchSpec::new(2, 12, 707));
    let service_us = 1e6
        * group
            .bench_median("service", |b| {
                b.iter(|| service.submit(&request).expect("service submit"));
            })
            .expect("service median");

    // HTTP layer: the same submission through the loopback front end
    // (JSON encode, TCP, HTTP parse, JSON decode) on one keep-alive
    // connection.
    let remote = Arc::new(build_service(&serve));
    let mut server = qrm_net::Server::bind("127.0.0.1:0", remote, qrm_net::NetConfig::default())
        .expect("bind loopback server");
    let addr = server.addr().to_string();
    assert!(
        wait_for_server(&addr, Duration::from_secs(5)),
        "loopback server failed to come up"
    );
    let mut client = qrm_net::Client::connect(addr);
    let http_us = 1e6
        * group
            .bench_median("http", |b| {
                b.iter(|| client.submit(&request).expect("http submit"));
            })
            .expect("http median");
    server.shutdown();
    // An idle keep-alive connection costs only a poller registration on
    // the event loop's own thread — no pool worker is pinned (that was
    // the pre-event-loop failure mode). The drop is plain hygiene now.
    drop(client);

    // Cached service layer: the same submission against a service with
    // the response cache enabled, warmed by one miss — every measured
    // submit is a hit, so this is the key-build + clone cost with the
    // planning pipeline and the admission gate both bypassed.
    let cached_serve = ServeConfig {
        cache_bytes: 1 << 20,
        ..serve
    };
    let cached_service = build_service(&cached_serve);
    cached_service.submit(&request).expect("cache warm submit");
    let service_cached_us = 1e6
        * group
            .bench_median("service_cached", |b| {
                b.iter(|| cached_service.submit(&request).expect("cached submit"));
            })
            .expect("cached service median");
    assert!(
        cached_service.stats().cache.hits > 0,
        "cached-service benchmark never hit its cache"
    );

    // Cached HTTP layer: the same warm hit through the loopback front
    // end, isolating what the wire stack adds on top of a cache hit.
    let cached_remote = Arc::new(build_service(&cached_serve));
    let mut cached_server = qrm_net::Server::bind(
        "127.0.0.1:0",
        Arc::clone(&cached_remote),
        qrm_net::NetConfig::default(),
    )
    .expect("bind cached loopback server");
    let cached_addr = cached_server.addr().to_string();
    assert!(
        wait_for_server(&cached_addr, Duration::from_secs(5)),
        "cached loopback server failed to come up"
    );
    let mut cached_client = qrm_net::Client::connect(cached_addr);
    cached_client
        .submit(&request)
        .expect("http cache warm submit");
    let http_cached_us = 1e6
        * group
            .bench_median("http_cached", |b| {
                b.iter(|| cached_client.submit(&request).expect("cached http submit"));
            })
            .expect("cached http median");
    assert!(
        cached_remote.stats().cache.hits > 0,
        "cached-http benchmark never hit its cache"
    );
    cached_server.shutdown();
    drop(cached_client);

    // Streamed HTTP layer: the same submission against a server whose
    // stream threshold is 1 byte, forcing every response body through
    // the chunked-encoding writer and the client's chunked decoder.
    // The delta against `http` prices the streaming frame overhead.
    let streamed_remote = Arc::new(build_service(&serve));
    let mut streamed_server = qrm_net::Server::bind(
        "127.0.0.1:0",
        streamed_remote,
        qrm_net::NetConfig {
            stream_threshold: 1,
            ..qrm_net::NetConfig::default()
        },
    )
    .expect("bind streamed loopback server");
    let streamed_addr = streamed_server.addr().to_string();
    assert!(
        wait_for_server(&streamed_addr, Duration::from_secs(5)),
        "streamed loopback server failed to come up"
    );
    let mut streamed_client = qrm_net::Client::connect(streamed_addr);
    let http_streamed_us = 1e6
        * group
            .bench_median("http_streamed", |b| {
                b.iter(|| streamed_client.submit(&request).expect("streamed submit"));
            })
            .expect("streamed http median");
    streamed_server.shutdown();
    drop(streamed_client);

    // Skewed-pipeline layer: the dataflow scheduler vs the preserved
    // stage-barrier baseline, same workload, same planner, same run.
    // The metric is the median *per-shot completion* time — on a
    // one-core host total wall time cannot improve, but small shots no
    // longer wait for the straggler's rounds, so their completion
    // distribution does.
    let skewed_config = PipelineConfig {
        planner: PlannerChoice::Software(QrmConfig::paper()),
        workers: 4,
        max_rounds: 3,
        ..PipelineConfig::default()
    };
    let skewed_planner = skewed_config.planner.resolve(skewed_config.workers);
    let skewed_pipeline = Pipeline::new(skewed_config);
    let skewed_jobs = crate::skewed_workload(SKEWED_SHOTS, 12, 24);
    let reps = config.sample_size.max(2);
    let mut dataflow_completions = Vec::new();
    let mut barriered_completions = Vec::new();
    for _ in 0..reps {
        let run = skewed_pipeline
            .run_shots_with(&*skewed_planner, &skewed_jobs, 4242)
            .expect("skewed dataflow batch");
        dataflow_completions.extend(run.completion_us);
        let run = skewed_pipeline
            .run_shots_barriered(&*skewed_planner, &skewed_jobs, 4242)
            .expect("skewed barriered batch");
        barriered_completions.extend(run.completion_us);
    }
    let pipeline_skewed_us = median(dataflow_completions);
    let pipeline_skewed_barriered_us = median(barriered_completions);
    println!(
        "trajectory/pipeline_skewed: median shot completion {pipeline_skewed_us:.1} us \
         (dataflow) vs {pipeline_skewed_barriered_us:.1} us (barriered)"
    );

    // Spawn-chain hand-off cost: the scheduling primitive under every
    // dataflow shot's observe→plan→execute chain.
    let spawn_chain_ns = 1e9
        * group
            .bench_median("spawn_chain", |b| {
                b.iter(|| rayon::bench_support::run_spawn_chain(SPAWN_CHAIN_DEPTH));
            })
            .expect("spawn chain median")
        / SPAWN_CHAIN_DEPTH as f64;

    let chase_lev = deque_row::<ChaseLevDeque>(&mut group, "chase_lev", config);
    let mutex = deque_row::<MutexDeque>(&mut group, "mutex", config);
    group.finish();

    Trajectory {
        kernel_us,
        engine_us,
        pipeline_us,
        pipeline_hostile_us,
        service_us,
        http_us,
        service_cached_us,
        http_cached_us,
        http_streamed_us,
        pipeline_skewed_us,
        pipeline_skewed_barriered_us,
        spawn_chain_ns,
        chase_lev,
        mutex,
    }
}

/// Median of a set of already-collected measurements (µs).
fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite measurement"));
    values[values.len() / 2]
}

/// Measures one deque flavour: uncontended owner latency via
/// criterion, contended steal throughput via timed thief threads.
fn deque_row<D: StealableDeque + Default>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    config: &TrajectoryConfig,
) -> DequeRow {
    // Owner push/pop latency, no thieves: push a batch, drain it LIFO.
    // One iteration is DEQUE_BATCH pushes + DEQUE_BATCH pops, so the
    // per-op number divides the median by 2 × DEQUE_BATCH.
    let deque = D::default();
    let batch_s = group
        .bench_median(format!("{name}/push_pop"), |b| {
            b.iter(|| {
                for _ in 0..DEQUE_BATCH {
                    deque.push(noop_job());
                }
                let mut popped = 0usize;
                while deque.pop() {
                    popped += 1;
                }
                popped
            });
        })
        .expect("push/pop median");
    let owner_push_pop_ns = batch_s * 1e9 / (2.0 * DEQUE_BATCH as f64);

    let one = steal_throughput(&D::default(), 1, config.steal_window);
    let four = steal_throughput(&D::default(), 4, config.steal_window);
    println!("trajectory/{name}/steal: {one:.0} jobs/s (1 thief), {four:.0} jobs/s (4 thieves)");
    DequeRow {
        owner_push_pop_ns,
        steal_per_s_1_thief: one,
        steal_per_s_4_thieves: four,
    }
}

/// Contended steal throughput: `thieves` threads spin on `steal` while
/// the owner thread keeps the deque supplied — push a batch, yield so
/// thieves get scheduled against a non-empty deque even on a one-core
/// host, then drain the remainder. Returns total jobs stolen per
/// second of wall-clock window.
fn steal_throughput<D: StealableDeque>(deque: &D, thieves: usize, window: Duration) -> f64 {
    let stop = AtomicBool::new(false);
    let stolen = AtomicU64::new(0);
    let mut elapsed = 0.0;
    std::thread::scope(|scope| {
        for _ in 0..thieves {
            scope.spawn(|| {
                let mut local = 0u64;
                while !stop.load(Ordering::Acquire) {
                    if deque.steal() {
                        local += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
                stolen.fetch_add(local, Ordering::Relaxed);
            });
        }
        let start = Instant::now();
        while start.elapsed() < window {
            for _ in 0..DEQUE_BATCH {
                deque.push(noop_job());
            }
            std::thread::yield_now();
            while deque.pop() {}
        }
        elapsed = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Release);
    });
    // Leftovers from the last round (thieves may have stopped first).
    while deque.pop() {}
    stolen.load(Ordering::Relaxed) as f64 / elapsed
}

fn deque_value(row: &DequeRow) -> Value {
    Value::record(vec![
        ("owner_push_pop_ns", Value::F64(row.owner_push_pop_ns)),
        ("steal_per_s_1_thief", Value::F64(row.steal_per_s_1_thief)),
        (
            "steal_per_s_4_thieves",
            Value::F64(row.steal_per_s_4_thieves),
        ),
    ])
}

/// Renders a trajectory as the schema-stable snapshot JSON.
#[must_use]
pub fn to_json(trajectory: &Trajectory, quick: bool) -> String {
    let value = Value::record(vec![
        ("schema", Value::Str(TRAJECTORY_SCHEMA.to_string())),
        ("pr", Value::U64(TRAJECTORY_PR)),
        ("quick", Value::Bool(quick)),
        (
            "layers_us",
            Value::record(vec![
                ("kernel", Value::F64(trajectory.kernel_us)),
                ("engine", Value::F64(trajectory.engine_us)),
                ("pipeline", Value::F64(trajectory.pipeline_us)),
                ("service", Value::F64(trajectory.service_us)),
                ("http", Value::F64(trajectory.http_us)),
                // Added in PR 7; optional for the validator so older
                // snapshots (BENCH_6 and before) keep validating.
                ("pipeline_skewed", Value::F64(trajectory.pipeline_skewed_us)),
                (
                    "pipeline_skewed_barriered",
                    Value::F64(trajectory.pipeline_skewed_barriered_us),
                ),
                // Added in PR 8 (the response cache); optional for the
                // same reason.
                ("service_cached", Value::F64(trajectory.service_cached_us)),
                ("http_cached", Value::F64(trajectory.http_cached_us)),
                // Added in PR 9 (the readiness event loop's chunked
                // response path); optional for the same reason.
                ("http_streamed", Value::F64(trajectory.http_streamed_us)),
                // Added in PR 10 (hostile-array scenarios); optional
                // for the same reason.
                (
                    "pipeline_hostile",
                    Value::F64(trajectory.pipeline_hostile_us),
                ),
            ]),
        ),
        (
            "pool",
            Value::record(vec![
                ("chase_lev", deque_value(&trajectory.chase_lev)),
                ("mutex", deque_value(&trajectory.mutex)),
                // Optional for the validator (added in PR 7).
                ("spawn_chain_ns", Value::F64(trajectory.spawn_chain_ns)),
            ]),
        ),
    ]);
    let mut text = qrm_wire::json::write(&value);
    text.push('\n');
    text
}

/// Names of the per-layer medians, in snapshot order.
pub const LAYER_KEYS: [&str; 5] = ["kernel", "engine", "pipeline", "service", "http"];

/// Layer medians added after the schema froze: **optional** for the
/// validator (older snapshots lack them) but still required to be
/// finite and positive when present. `pipeline_skewed*` arrived in
/// PR 7, the cached-path medians in PR 8, the streamed-response
/// median in PR 9, the hostile-array median in PR 10.
pub const OPTIONAL_LAYER_KEYS: [&str; 6] = [
    "pipeline_skewed",
    "pipeline_skewed_barriered",
    "service_cached",
    "http_cached",
    "http_streamed",
    "pipeline_hostile",
];

/// Pool metrics that are optional for the same reason.
const OPTIONAL_POOL_METRICS: [&str; 1] = ["spawn_chain_ns"];

/// Names of the pool microbench rows and their metrics.
pub const POOL_KEYS: [&str; 2] = ["chase_lev", "mutex"];
const POOL_METRICS: [&str; 3] = [
    "owner_push_pop_ns",
    "steal_per_s_1_thief",
    "steal_per_s_4_thieves",
];

fn require_positive(record: &Value, key: &str, context: &str) -> Result<(), String> {
    let number = record
        .get(key)
        .ok_or_else(|| format!("{context}.{key}: missing"))?
        .as_f64()
        .ok_or_else(|| format!("{context}.{key}: not a number"))?;
    if number.is_finite() && number > 0.0 {
        Ok(())
    } else {
        Err(format!(
            "{context}.{key}: {number} is not finite and positive"
        ))
    }
}

/// Validates a snapshot: parses the JSON and checks the schema tag,
/// the PR number, and that every layer median and every pool metric is
/// present, finite, and nonzero. This is what the CI bench-smoke job
/// runs against the file it just produced **and** against the
/// checked-in `BENCH_<pr>.json`.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let value = qrm_wire::json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = value.get("schema").ok_or("schema: missing")?.clone();
    match schema {
        Value::Str(ref s) if s == TRAJECTORY_SCHEMA => {}
        other => {
            return Err(format!(
                "schema: expected {TRAJECTORY_SCHEMA:?}, got {other:?}"
            ))
        }
    }
    value
        .get("pr")
        .and_then(Value::as_u64)
        .ok_or("pr: missing or not an integer")?;
    value.get("quick").ok_or("quick: missing")?;

    let layers = value.get("layers_us").ok_or("layers_us: missing")?;
    for key in LAYER_KEYS {
        require_positive(layers, key, "layers_us")?;
    }
    for key in OPTIONAL_LAYER_KEYS {
        if layers.get(key).is_some() {
            require_positive(layers, key, "layers_us")?;
        }
    }
    let pool = value.get("pool").ok_or("pool: missing")?;
    for flavour in POOL_KEYS {
        let row = pool
            .get(flavour)
            .ok_or_else(|| format!("pool.{flavour}: missing"))?;
        for metric in POOL_METRICS {
            require_positive(row, metric, &format!("pool.{flavour}"))?;
        }
    }
    for metric in OPTIONAL_POOL_METRICS {
        if pool.get(metric).is_some() {
            require_positive(pool, metric, "pool")?;
        }
    }
    Ok(())
}

/// One-line human summary of a trajectory, for the bin's stdout.
#[must_use]
pub fn summary(trajectory: &Trajectory) -> String {
    format!(
        "layers_us: kernel {:.1} | engine {:.1} | pipeline {:.1} | service {:.1} | http {:.1}\n\
         hostile pipeline us: {:.1} (vs {:.1} uniform)\n\
         cached-path us: service {:.1} (vs {:.1} uncached) | http {:.1} (vs {:.1} uncached)\n\
         streamed http us: {:.1} (vs {:.1} whole-body)\n\
         skewed shot completion us (median): dataflow {:.1} vs barriered {:.1}\n\
         spawn chain hand-off ns: {:.1}\n\
         pool steal/s (1 thief): chase_lev {:.0} vs mutex {:.0}\n\
         pool steal/s (4 thieves): chase_lev {:.0} vs mutex {:.0}\n\
         owner push+pop ns: chase_lev {:.1} vs mutex {:.1}",
        trajectory.kernel_us,
        trajectory.engine_us,
        trajectory.pipeline_us,
        trajectory.service_us,
        trajectory.http_us,
        trajectory.pipeline_hostile_us,
        trajectory.pipeline_us,
        trajectory.service_cached_us,
        trajectory.service_us,
        trajectory.http_cached_us,
        trajectory.http_us,
        trajectory.http_streamed_us,
        trajectory.http_us,
        trajectory.pipeline_skewed_us,
        trajectory.pipeline_skewed_barriered_us,
        trajectory.spawn_chain_ns,
        trajectory.chase_lev.steal_per_s_1_thief,
        trajectory.mutex.steal_per_s_1_thief,
        trajectory.chase_lev.steal_per_s_4_thieves,
        trajectory.mutex.steal_per_s_4_thieves,
        trajectory.chase_lev.owner_push_pop_ns,
        trajectory.mutex.owner_push_pop_ns,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smallest-possible settings: the schema contract matters here,
    /// not the numbers.
    fn tiny() -> TrajectoryConfig {
        TrajectoryConfig {
            sample_size: 2,
            measurement: Duration::from_millis(5),
            warm_up: Duration::from_millis(1),
            steal_window: Duration::from_millis(15),
        }
    }

    #[test]
    fn quick_run_emits_a_valid_snapshot() {
        let trajectory = measure(&tiny());
        let json = to_json(&trajectory, true);
        validate(&json).expect("fresh snapshot validates");
        // The snapshot must survive a decode→encode round trip
        // byte-identically (the qrm-wire determinism guarantee), so
        // checked-in files never churn.
        let value = qrm_wire::json::parse(&json).expect("parse own snapshot");
        assert_eq!(format!("{}\n", qrm_wire::json::write(&value)), json);
        assert!(!summary(&trajectory).is_empty());
    }

    #[test]
    fn validate_rejects_missing_and_malformed_snapshots() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        let wrong_schema = r#"{"schema":"other/v9"}"#;
        assert!(validate(wrong_schema).unwrap_err().contains("expected"));

        // A structurally complete snapshot minus one layer median.
        let missing_layer = format!(
            "{{\"schema\":\"{TRAJECTORY_SCHEMA}\",\"pr\":6,\"quick\":true,\
             \"layers_us\":{{\"kernel\":1.0,\"engine\":1.0,\"pipeline\":1.0,\
             \"service\":1.0}},\"pool\":{{}}}}"
        );
        assert!(validate(&missing_layer).unwrap_err().contains("http"));

        // Zero and non-finite metrics are rejected, not just absent ones.
        let zero_metric = format!(
            "{{\"schema\":\"{TRAJECTORY_SCHEMA}\",\"pr\":6,\"quick\":true,\
             \"layers_us\":{{\"kernel\":1.0,\"engine\":1.0,\"pipeline\":1.0,\
             \"service\":1.0,\"http\":0.0}},\"pool\":{{}}}}"
        );
        assert!(validate(&zero_metric)
            .unwrap_err()
            .contains("finite and positive"));
    }

    #[test]
    fn optional_skewed_keys_are_optional_but_checked_when_present() {
        let full_pool = |extra: &str| {
            let row = "{\"owner_push_pop_ns\":1.0,\"steal_per_s_1_thief\":1.0,\
                 \"steal_per_s_4_thieves\":1.0}";
            format!("{{\"chase_lev\":{row},\"mutex\":{row}{extra}}}")
        };
        let snapshot = |layers_extra: &str, pool_extra: &str| {
            format!(
                "{{\"schema\":\"{TRAJECTORY_SCHEMA}\",\"pr\":6,\"quick\":true,\
                 \"layers_us\":{{\"kernel\":1.0,\"engine\":1.0,\"pipeline\":1.0,\
                 \"service\":1.0,\"http\":1.0{layers_extra}}},\"pool\":{}}}",
                full_pool(pool_extra)
            )
        };
        // A pre-PR-7 snapshot (no optional keys at all) stays valid —
        // the checked-in BENCH_6.json shape.
        validate(&snapshot("", "")).expect("pre-dataflow snapshot validates");
        // Present and positive: valid.
        validate(&snapshot(
            ",\"pipeline_skewed\":1.0,\"pipeline_skewed_barriered\":2.0",
            ",\"spawn_chain_ns\":3.0",
        ))
        .expect("full PR-7 snapshot validates");
        // The PR-8 cached-path medians follow the same optional rule.
        validate(&snapshot(",\"service_cached\":1.0,\"http_cached\":2.0", ""))
            .expect("cached-path snapshot validates");
        // And the PR-9 streamed-response median.
        validate(&snapshot(",\"http_streamed\":1.0", ""))
            .expect("streamed-path snapshot validates");
        assert!(validate(&snapshot(",\"http_streamed\":0.0", ""))
            .unwrap_err()
            .contains("http_streamed"));
        // And the PR-10 hostile-array median.
        validate(&snapshot(",\"pipeline_hostile\":1.0", ""))
            .expect("hostile-array snapshot validates");
        assert!(validate(&snapshot(",\"pipeline_hostile\":0.0", ""))
            .unwrap_err()
            .contains("pipeline_hostile"));
        // Present but zero: rejected, same as any required metric.
        assert!(validate(&snapshot(",\"pipeline_skewed\":0.0", ""))
            .unwrap_err()
            .contains("pipeline_skewed"));
        assert!(validate(&snapshot(",\"service_cached\":0.0", ""))
            .unwrap_err()
            .contains("service_cached"));
        assert!(validate(&snapshot("", ",\"spawn_chain_ns\":0.0"))
            .unwrap_err()
            .contains("spawn_chain_ns"));
    }

    /// Earlier PRs' checked-in snapshots must keep validating with
    /// today's validator — the additive-schema promise, asserted
    /// against the real files rather than synthetic shapes.
    #[test]
    fn checked_in_bench_6_still_validates() {
        validate(include_str!("../../../BENCH_6.json")).expect("BENCH_6.json validates");
    }

    #[test]
    fn checked_in_bench_7_still_validates() {
        validate(include_str!("../../../BENCH_7.json")).expect("BENCH_7.json validates");
    }

    #[test]
    fn checked_in_bench_8_still_validates() {
        validate(include_str!("../../../BENCH_8.json")).expect("BENCH_8.json validates");
    }

    #[test]
    fn checked_in_bench_9_still_validates() {
        validate(include_str!("../../../BENCH_9.json")).expect("BENCH_9.json validates");
    }

    #[test]
    fn checked_in_bench_10_still_validates() {
        validate(include_str!("../../../BENCH_10.json")).expect("BENCH_10.json validates");
    }
}

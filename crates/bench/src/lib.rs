//! # qrm-bench — experiment harness for the paper's evaluation
//!
//! Shared workload generation, timing helpers, and one function per
//! table/figure of the paper (see the workspace `DESIGN.md`, experiment
//! index E-7a … E-x4). The `experiments` binary prints the tables; the
//! Criterion benches in `benches/` measure the wall-clock analysis times
//! on this machine.
//!
//! Paper reference numbers carried in the rows come from two sources:
//! values the text quotes directly (1.0 µs at 50×50, 54× and 134×
//! speedups, 6.31 %/6.19 % utilisation at 90×90, 120×/300× vs Tetris)
//! and values read off the logarithmic figures (marked approximate).
//!
//! ## Quick example
//!
//! The harness's registries cover all seven planners; a benchmark-sized
//! workload comes from [`paper_instance`]:
//!
//! ```
//! use qrm_bench::{paper_instance, planner_matrix};
//!
//! let (grid, target) = paper_instance(16, 1);
//! for planner in planner_matrix() {
//!     let plan = planner.plan(&grid, &target).expect("plan");
//!     planner
//!         .executor()
//!         .run(&grid, &plan.schedule)
//!         .expect("every planner's schedule executes under its own contract");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trajectory;

use std::collections::BTreeMap;
use std::time::Instant;

use qrm_baselines::{HybridScheduler, Mta1Scheduler, PscaScheduler, TetrisScheduler};
use qrm_control::pipeline::{Pipeline, PipelineConfig, PipelineReport, PlannerChoice};
use qrm_control::system::{Architecture, SystemModel};
use qrm_core::engine::PlanEngine;
use qrm_core::geometry::Rect;
use qrm_core::grid::AtomGrid;
use qrm_core::kernel::KernelStrategy;
use qrm_core::loading::{seeded_rng, LoadModel};
use qrm_core::planner::Planner;
use qrm_core::scheduler::{QrmConfig, QrmScheduler};
use qrm_core::typical::TypicalScheduler;
use qrm_fpga::accelerator::{AcceleratorConfig, QrmAccelerator};
use qrm_fpga::latency::LatencyModel;
use qrm_fpga::resources::ResourceModel;

/// Every planner of the workspace as a `dyn Planner` trait object — QRM
/// (software, paper config), the typical §III-A procedure, the three
/// published baselines, the hybrid extension, and the cycle-accurate
/// FPGA model. This is the harness's single construction point: all
/// benchmark and contract code dispatches through the trait (executor
/// policy included, via [`Planner::executor`]), so adding a planner here
/// adds it to every comparison with no new match arms.
pub fn planner_matrix() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(QrmScheduler::new(QrmConfig::paper())),
        Box::new(TypicalScheduler::default()),
        Box::new(TetrisScheduler::default()),
        Box::new(PscaScheduler::default()),
        Box::new(Mta1Scheduler::default()),
        Box::new(HybridScheduler::default()),
        Box::new(QrmAccelerator::new(AcceleratorConfig::paper())),
    ]
}

/// The seven planners as **pipeline configurations**
/// ([`PlannerChoice`]), keyed by the CLI name the `experiments` binary
/// accepts. This is the config-level twin of [`planner_matrix`] (same
/// seven planners, same order), for consumers that need to *construct*
/// pipelines — end-to-end sweeps, the cross-worker determinism suite —
/// rather than dispatch through `dyn Planner`.
pub fn planner_choices() -> Vec<(&'static str, PlannerChoice)> {
    vec![
        ("qrm", PlannerChoice::Software(QrmConfig::paper())),
        ("typical", PlannerChoice::Typical),
        ("tetris", PlannerChoice::Tetris),
        ("psca", PlannerChoice::Psca),
        ("mta1", PlannerChoice::Mta1),
        ("hybrid", PlannerChoice::Hybrid),
        ("fpga", PlannerChoice::Fpga(AcceleratorConfig::paper())),
    ]
}

/// Result of one end-to-end planner sweep ([`pipeline_sweep`]).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// CLI name of the planner.
    pub name: &'static str,
    /// Shots whose target ended defect-free.
    pub filled: usize,
    /// Shots run.
    pub total: usize,
    /// Mean image→plan→move rounds per shot.
    pub mean_rounds: f64,
    /// Mean physical tweezer time per shot (µs).
    pub mean_motion_us: f64,
    /// Total atoms lost in transport across the batch.
    pub atoms_lost: usize,
    /// Wall-clock time of the whole batched run (µs).
    pub wall_us: f64,
    /// Worker-pool activity attributable to **this planner's run alone**
    /// (snapshot delta around the batched run, not process-lifetime
    /// totals — so per-planner steal/job counts stay meaningful when one
    /// process sweeps several planners back to back).
    pub pool: rayon::PoolStats,
}

/// Parameters of an end-to-end planner sweep (the `experiments sweep`
/// command).
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Batch worker count handed to the pipeline (`0` = one per core).
    pub workers: usize,
    /// Independent shots per planner.
    pub shots: usize,
    /// Array side (even; QRM requires it).
    pub size: usize,
    /// Maximum rounds per shot.
    pub rounds: usize,
    /// Base seed; shot `i` derives its RNG via `Pipeline::shot_rng`.
    pub seed: u64,
    /// Per-move transport-loss probability.
    pub loss_prob: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            workers: 0,
            shots: 4,
            size: 16,
            rounds: 3,
            seed: 9000,
            loss_prob: 0.01,
        }
    }
}

/// Runs one planner end-to-end over a batch of shots through
/// [`Pipeline::run_batch`] — imaging, detection, batched planning, and
/// schedule execution all as jobs on the persistent worker pool — and
/// aggregates the reports. The workload is `shots` random `size x size`
/// arrays at 55 % fill against a centred ~60 % target.
pub fn pipeline_sweep(name: &'static str, choice: &PlannerChoice, sweep: &SweepConfig) -> SweepRow {
    // The one workload construction shared with the planning service:
    // a sweep row and a `SubmitBatch` with the same (shots, size, seed)
    // plan bit-identical batches.
    let spec = qrm_server::BatchSpec::new(sweep.shots, sweep.size, sweep.seed);
    let truths = spec.workload().expect("valid sweep workload").truths;
    let target = spec.target().expect("valid sweep target");
    let pipeline = Pipeline::new(PipelineConfig {
        planner: choice.clone(),
        workers: sweep.workers,
        loss_prob: sweep.loss_prob,
        max_rounds: sweep.rounds,
        ..PipelineConfig::default()
    });
    let pool_before = rayon::global_pool_stats();
    let t0 = Instant::now();
    let reports = pipeline
        .run_batch(&truths, &target, sweep.seed)
        .expect("sweep batch");
    let wall_us = t0.elapsed().as_secs_f64() * 1e6;
    let pool = rayon::global_pool_stats().since(&pool_before);
    let total = reports.len();
    SweepRow {
        name,
        filled: reports.iter().filter(|r| r.filled).count(),
        total,
        mean_rounds: reports.iter().map(|r| r.rounds.len()).sum::<usize>() as f64 / total as f64,
        mean_motion_us: reports
            .iter()
            .map(PipelineReport::total_motion_us)
            .sum::<f64>()
            / total as f64,
        atoms_lost: reports.iter().map(PipelineReport::total_lost).sum(),
        wall_us,
        pool,
    }
}

/// The paper's standard workload: `size x size` array at 50 % fill with
/// a centred target of ~60 % linear size (even), with enough atoms to be
/// globally feasible.
pub fn paper_instance(size: usize, seed: u64) -> (AtomGrid, Rect) {
    let side = (size * 3 / 5) & !1;
    let target = Rect::centered(size, size, side, side).expect("fits");
    let need = target.area();
    let mut rng = seeded_rng(seed);
    let grid = LoadModel::new(0.5)
        .load_at_least(size, size, need + need / 10, 128, &mut rng)
        .expect("feasible instance");
    (grid, target)
}

/// Median wall time of `f` over `reps` runs, in microseconds.
pub fn median_us<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[reps / 2]
}

/// One row of the Fig. 7(a) reproduction.
#[derive(Debug, Clone, Copy)]
pub struct Fig7aRow {
    /// Array side.
    pub size: usize,
    /// Measured CPU time of the full QRM plan (kernels + AOD-legal merge
    /// and batching) on this machine (µs).
    pub cpu_us: f64,
    /// Measured CPU time of the kernel analysis only — the scope of the
    /// paper's CPU measurement (µs).
    pub cpu_kernel_us: f64,
    /// Modelled FPGA analysis latency at 250 MHz (µs).
    pub fpga_us: f64,
    /// `cpu_kernel_us / fpga_us` (paper-comparable speedup).
    pub speedup: f64,
    /// Paper's FPGA value (µs; quoted for 10/50/90, figure-read else).
    pub paper_fpga_us: f64,
    /// Paper's speedup where quoted (50: 54x, 90: 134x).
    pub paper_speedup: Option<f64>,
}

/// E-7a: CPU vs FPGA execution time across array sizes 10..90.
pub fn fig7a(reps: usize) -> Vec<Fig7aRow> {
    let paper_fpga = [(10, 0.8), (30, 0.9), (50, 1.0), (70, 1.4), (90, 1.9)];
    let paper_speedup = [(50usize, 54.0), (90, 134.0)];
    let scheduler = QrmScheduler::new(QrmConfig::paper());
    let accel = QrmAccelerator::new(AcceleratorConfig::paper());
    paper_fpga
        .iter()
        .map(|&(size, paper_us)| {
            let (grid, target) = paper_instance(size, 1000 + size as u64);
            let cpu_us = median_us(reps, || scheduler.plan(&grid, &target).expect("plan"));
            let cpu_kernel_us = median_us(reps, || {
                scheduler.quadrant_outcomes(&grid, &target).expect("plan")
            });
            let fpga_us = accel.run(&grid, &target).expect("run").time_us;
            Fig7aRow {
                size,
                cpu_us,
                cpu_kernel_us,
                fpga_us,
                speedup: cpu_kernel_us / fpga_us,
                paper_fpga_us: paper_us,
                paper_speedup: paper_speedup
                    .iter()
                    .find(|&&(s, _)| s == size)
                    .map(|&(_, x)| x),
            }
        })
        .collect()
}

/// One row of the Fig. 7(b) reproduction.
#[derive(Debug, Clone)]
pub struct Fig7bRow {
    /// Planner name.
    pub name: &'static str,
    /// Measured analysis time at 20x20 (µs; modelled for the FPGA row).
    pub analysis_us: f64,
    /// Analysis time relative to QRM-CPU.
    pub relative: f64,
    /// Paper's value (µs; 0.9 quoted for FPGA, others derived from the
    /// quoted ratios 20x/246x/1000x over QRM-CPU ≈ 5.4 µs).
    pub paper_us: f64,
    /// Fill success on the benchmark instances.
    pub filled: usize,
    /// Number of instances.
    pub total: usize,
}

/// E-7b: planner comparison at 20x20 (the related-work benchmark
/// setting).
pub fn fig7b(reps: usize, instances: usize) -> Vec<Fig7bRow> {
    let grids: Vec<(AtomGrid, Rect)> = (0..instances)
        .map(|i| paper_instance(20, 2000 + i as u64))
        .collect();

    // Measured planners, with their paper references. QRM-CPU at 20x20 is
    // derived from the paper's 120x FPGA-vs-Tetris and 20x Tetris-vs-CPU
    // claims: Tetris ≈ 108 us, QRM-CPU ≈ 5.4 us.
    let qrm = QrmScheduler::new(QrmConfig::paper());
    let typical = TypicalScheduler::default();
    let tetris = TetrisScheduler::default();
    let psca = PscaScheduler::default();
    let mta1 = Mta1Scheduler::default();
    let planners: Vec<(&dyn Planner, f64)> = vec![
        (&qrm, 5.4),
        (&typical, f64::NAN),
        (&tetris, 108.0),
        (&psca, 1328.0),
        (&mta1, 5400.0),
    ];

    let mut rows = Vec::new();
    // The paper's CPU measurement scope: kernel analysis only.
    let qrm_kernel_us = median_us(reps, || {
        for (grid, target) in &grids {
            std::hint::black_box(qrm.quadrant_outcomes(grid, target).expect("plan"));
        }
    }) / instances as f64;
    let mut qrm_us = f64::NAN;
    for (planner, paper_us) in planners {
        let mut filled = 0usize;
        let analysis_us = median_us(reps, || {
            for (grid, target) in &grids {
                std::hint::black_box(planner.plan(grid, target).expect("plan"));
            }
        }) / instances as f64;
        // sanity: schedules must execute under the planner's own
        // transport contract — supplied by the trait, not guessed here.
        let executor = planner.executor();
        for (grid, target) in &grids {
            let plan = planner.plan(grid, target).expect("plan");
            executor.run(grid, &plan.schedule).expect("valid schedule");
            filled += usize::from(plan.filled);
        }
        if planner.name().starts_with("QRM") {
            qrm_us = analysis_us;
        }
        rows.push(Fig7bRow {
            name: planner.name(),
            analysis_us,
            relative: analysis_us / qrm_us,
            paper_us,
            filled,
            total: instances,
        });
    }

    // The kernel-only row (paper CPU scope) and the balanced extension.
    rows.insert(
        1,
        Fig7bRow {
            name: "QRM analysis only (paper scope)",
            analysis_us: qrm_kernel_us,
            relative: qrm_kernel_us / qrm_us,
            paper_us: 5.4,
            filled: rows[0].filled,
            total: instances,
        },
    );
    let balanced = QrmScheduler::new(QrmConfig::default());
    let bal_us = median_us(reps, || {
        for (grid, target) in &grids {
            std::hint::black_box(balanced.plan(grid, target).expect("plan"));
        }
    }) / instances as f64;
    let bal_filled: usize = grids
        .iter()
        .map(|(g, t)| usize::from(balanced.plan(g, t).expect("plan").filled))
        .sum();
    rows.push(Fig7bRow {
        name: "QRM (balanced, extension)",
        analysis_us: bal_us,
        relative: bal_us / qrm_us,
        paper_us: f64::NAN,
        filled: bal_filled,
        total: instances,
    });

    // The FPGA row (modelled latency, quoted 0.9 µs in the paper).
    let accel = QrmAccelerator::new(AcceleratorConfig::paper());
    let (grid, target) = &grids[0];
    let report = accel.run(grid, target).expect("run");
    rows.insert(
        0,
        Fig7bRow {
            name: "QRM-FPGA (modelled)",
            analysis_us: report.time_us,
            relative: report.time_us / qrm_us,
            paper_us: 0.9,
            filled: grids
                .iter()
                .map(|(g, t)| usize::from(accel.run(g, t).expect("run").plan.filled))
                .sum(),
            total: instances,
        },
    );
    rows
}

/// One row of the Fig. 8 reproduction.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Array side.
    pub size: usize,
    /// Modelled LUT utilisation (%).
    pub lut_pct: f64,
    /// Modelled FF utilisation (%).
    pub ff_pct: f64,
    /// Modelled BRAM utilisation (%).
    pub bram_pct: f64,
}

/// E-8: resource utilisation across sizes (paper quotes 6.31 % LUT /
/// 6.19 % FF at 90 and flat BRAM).
pub fn fig8() -> Vec<Fig8Row> {
    let model = ResourceModel::new();
    [10usize, 30, 50, 70, 90]
        .iter()
        .map(|&size| {
            let u = model.utilization(size);
            Fig8Row {
                size,
                lut_pct: u.lut.percent,
                ff_pct: u.ff.percent,
                bram_pct: u.bram.percent,
            }
        })
        .collect()
}

/// E-h1/h2/h3: the headline numbers.
#[derive(Debug, Clone, Copy)]
pub struct Headline {
    /// Modelled FPGA analysis time for 50x50 -> 30x30 (µs); paper: ~1.0.
    pub fpga_us: f64,
    /// Measured CPU time of the full QRM plan on this machine (µs).
    pub cpu_full_us: f64,
    /// Measured CPU time of the kernel analysis only (paper scope, µs).
    pub cpu_kernel_us: f64,
    /// Kernel-scope speedup (paper: ~54x).
    pub speedup: f64,
    /// This machine's measured Tetris analysis time at 50x50 (µs). The
    /// paper's 300x compares against Tetris running on the RFSoC's ARM
    /// core; we report the host-measured ratio without inventing an ARM
    /// scaling factor.
    pub tetris_us: f64,
    /// `tetris_us / fpga_us` on this machine.
    pub vs_tetris_host: f64,
    /// Analysis cycles on the FPGA model.
    pub cycles: u64,
}

/// Computes the headline row.
pub fn headline(reps: usize) -> Headline {
    let (grid, target) = paper_instance(50, 42);
    let scheduler = QrmScheduler::new(QrmConfig::paper());
    let accel = QrmAccelerator::new(AcceleratorConfig::paper());
    let cpu_full_us = median_us(reps, || scheduler.plan(&grid, &target).expect("plan"));
    let cpu_kernel_us = median_us(reps, || {
        scheduler.quadrant_outcomes(&grid, &target).expect("plan")
    });
    let report = accel.run(&grid, &target).expect("run");
    let tetris = TetrisScheduler::default();
    let tetris_us = median_us(reps.max(3), || tetris.plan(&grid, &target).expect("plan"));
    Headline {
        fpga_us: report.time_us,
        cpu_full_us,
        cpu_kernel_us,
        speedup: cpu_kernel_us / report.time_us,
        tetris_us,
        vs_tetris_host: tetris_us / report.time_us,
        cycles: report.cycles.analysis(),
    }
}

/// One row of the schedule-quality study (E-x1).
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Strategy under test.
    pub strategy: KernelStrategy,
    /// Iteration budget.
    pub iterations: usize,
    /// Instances fully assembled.
    pub filled: usize,
    /// Instances tried.
    pub total: usize,
    /// Mean defects left.
    pub mean_defects: f64,
    /// Mean parallel moves per schedule.
    pub mean_moves: f64,
}

/// E-x1: fill quality of the greedy (paper) and balanced (extension)
/// kernels vs iteration budget, on the headline 50x50 -> 30x30 workload.
pub fn quality(instances: usize) -> Vec<QualityRow> {
    let mut rows = Vec::new();
    for strategy in [KernelStrategy::Greedy, KernelStrategy::Balanced] {
        for iterations in [2usize, 4, 8, 12] {
            let scheduler = QrmScheduler::new(
                QrmConfig::default()
                    .with_strategy(strategy)
                    .with_max_iterations(iterations),
            );
            let mut filled = 0;
            let mut defects = 0usize;
            let mut moves = 0usize;
            for i in 0..instances {
                let (grid, target) = paper_instance(50, 3000 + i as u64);
                let plan = scheduler.plan(&grid, &target).expect("plan");
                filled += usize::from(plan.filled);
                defects += plan.defects(&target).expect("defects");
                moves += plan.schedule.len();
            }
            rows.push(QualityRow {
                strategy,
                iterations,
                filled,
                total: instances,
                mean_defects: defects as f64 / instances as f64,
                mean_moves: moves as f64 / instances as f64,
            });
        }
    }
    rows
}

/// E-x2: the quadrant-parallelism ablation — modelled FPGA analysis
/// latency with 4 parallel QPMs vs one QPM processing the quadrants
/// back-to-back. Returns `(size, parallel_us, serial_us)` rows.
pub fn ablation_quadrants() -> Vec<(usize, f64, f64)> {
    let accel = QrmAccelerator::new(AcceleratorConfig::paper());
    [10usize, 30, 50, 70, 90]
        .iter()
        .map(|&size| {
            let (grid, target) = paper_instance(size, 4000 + size as u64);
            let report = accel.run(&grid, &target).expect("run");
            let parallel = report.cycles;
            // Serial: the four QPM computations queue on one unit.
            let serial_compute: u64 = report.quadrant_cycles.iter().sum();
            let serial_cycles =
                parallel.control + parallel.input + serial_compute + parallel.combine;
            let clock = accel.config().clock;
            (size, report.time_us, clock.us(serial_cycles))
        })
        .collect()
}

/// E-x3: the command-merging ablation — schedule length with and without
/// cross-quadrant merging. Returns `(size, merged_moves, unmerged_moves)`.
pub fn ablation_merge(instances: usize) -> Vec<(usize, f64, f64)> {
    [20usize, 50]
        .iter()
        .map(|&size| {
            let mut merged = 0usize;
            let mut unmerged = 0usize;
            for i in 0..instances {
                let (grid, target) = paper_instance(size, 5000 + i as u64);
                let on = QrmScheduler::new(QrmConfig::default().with_merge_quadrants(true))
                    .plan(&grid, &target)
                    .expect("plan");
                let off = QrmScheduler::new(QrmConfig::default().with_merge_quadrants(false))
                    .plan(&grid, &target)
                    .expect("plan");
                merged += on.schedule.len();
                unmerged += off.schedule.len();
            }
            (
                size,
                merged as f64 / instances as f64,
                unmerged as f64 / instances as f64,
            )
        })
        .collect()
}

/// E-x4: the Fig. 2 system-architecture budgets, with the measured
/// scheduling times plugged in.
pub fn system_budgets(cpu_sched_us: f64, fpga_sched_us: f64) -> (f64, f64, String) {
    let model = SystemModel::typical().with_scheduling_us(cpu_sched_us, fpga_sched_us);
    let host = model.budget(Architecture::HostLoop, (300, 300), 150);
    let fpga = model.budget(Architecture::OnFpga, (300, 300), 150);
    let text =
        format!("host-in-the-loop (Fig. 2a):\n{host}\n\nfully integrated (Fig. 2b):\n{fpga}\n");
    (host.total_us(), fpga.total_us(), text)
}

/// The engine-scaling workload: `shots` independent `size x size`
/// planning problems (the batch a multi-shot experiment hands the
/// planner at once).
pub fn engine_workload(size: usize, shots: usize) -> Vec<(AtomGrid, Rect)> {
    (0..shots)
        .map(|i| paper_instance(size, 7000 + i as u64))
        .collect()
}

/// A deliberately *skewed* batch for the dataflow-scheduler benchmark:
/// every fourth shot (starting with shot 0, so the straggler leads the
/// batch) is a `large x large` instance, the rest are `small x small`.
/// Under the old stage barriers every small shot's round waited for
/// the stragglers; the shot-level dataflow scheduler lets small shots
/// run ahead, which `bench-trajectory` measures as the median per-shot
/// completion time (`pipeline_skewed` vs `pipeline_skewed_barriered`).
pub fn skewed_workload(shots: usize, small: usize, large: usize) -> Vec<(AtomGrid, Rect)> {
    (0..shots)
        .map(|i| {
            let size = if i % 4 == 0 { large } else { small };
            paper_instance(size, 8100 + i as u64)
        })
        .collect()
}

/// One row of the engine-scaling study (E-x5).
#[derive(Debug, Clone, Copy)]
pub struct EngineRow {
    /// Worker threads used by the parallel engine.
    pub workers: usize,
    /// Median wall time of the whole batch (µs).
    pub batch_us: f64,
    /// Speedup over the serial (mapped `plan`) baseline.
    pub speedup: f64,
}

/// E-x5: serial vs parallel batched planning. Returns the serial
/// baseline time (µs) and one row per worker count. On a single-core
/// host the parallel rows measure pure engine overhead (speedup <= 1);
/// on a multi-core host the batch scales with cores — the software
/// analogue of the paper's four parallel QPMs.
pub fn engine_scaling(
    size: usize,
    shots: usize,
    reps: usize,
    worker_counts: &[usize],
) -> (f64, Vec<EngineRow>) {
    let jobs = engine_workload(size, shots);
    let serial = QrmScheduler::new(QrmConfig::default());
    let serial_us = median_us(reps, || {
        jobs.iter()
            .map(|(g, t)| serial.plan(g, t).expect("plan"))
            .collect::<Vec<_>>()
    });
    let rows = worker_counts
        .iter()
        .map(|&workers| {
            let engine = PlanEngine::new(QrmConfig::default()).with_workers(workers);
            let batch_us = median_us(reps, || engine.plan_batch(&jobs).expect("plan"));
            EngineRow {
                workers,
                batch_us,
                speedup: serial_us / batch_us,
            }
        })
        .collect();
    (serial_us, rows)
}

/// Parameters of a service load run (the `experiments serve` command):
/// how many client threads hammer the planning service with how many
/// mixed-planner batch submissions each.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Submissions per client.
    pub batches: usize,
    /// Shots per submitted batch.
    pub shots: usize,
    /// Array side of every batch (even).
    pub size: usize,
    /// Maximum pipeline rounds per shot.
    pub rounds: usize,
    /// Base seed; each submission derives its own workload seed.
    pub seed: u64,
    /// Batch worker count of every registered pipeline (`0` = one per
    /// core).
    pub workers: usize,
    /// Service admission cap (`0` = unlimited).
    pub max_inflight: usize,
    /// Response-cache byte budget of the service (`0` = cache off).
    pub cache_bytes: usize,
    /// How many times each client replays its submission sequence.
    /// Passes beyond the first hit identical specs, so with a cache
    /// enabled they measure the cached path; digests count every pass.
    pub repeat: usize,
    /// Bearer token: a `--listen` server requires it on every request
    /// and `--remote` clients send it (`None` = auth off). `&'static`
    /// keeps the config `Copy`; the CLI leaks its parsed flag once.
    pub auth_token: Option<&'static str>,
    /// Response-streaming threshold handed to the served
    /// [`NetConfig`](qrm_net::NetConfig): bodies at or above this many
    /// bytes leave as chunked streams.
    pub stream_threshold: usize,
    /// Workload scenario stamped onto every generated spec
    /// ([`qrm_server::Scenario::UniformFill`] = the classic load). The
    /// same scenario flows through the in-process and remote drivers,
    /// so scenario-bearing digests stay comparable between them.
    pub scenario: qrm_server::Scenario,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            clients: 4,
            batches: 4,
            shots: 2,
            size: 16,
            rounds: 3,
            seed: 11000,
            workers: 0,
            max_inflight: 0,
            cache_bytes: 0,
            repeat: 1,
            auth_token: None,
            stream_threshold: qrm_net::NetConfig::default().stream_threshold,
            scenario: qrm_server::Scenario::UniformFill,
        }
    }
}

/// The [`qrm_net::NetConfig`] a load run's server side should bind
/// with: the library defaults, plus whatever transport knobs
/// (`auth_token`, `stream_threshold`) the serve parameters carry —
/// kept in one place so the CLI's `--listen` server and in-test
/// servers cannot drift apart.
pub fn net_config(serve: &ServeConfig) -> qrm_net::NetConfig {
    qrm_net::NetConfig {
        auth_token: serve.auth_token.map(str::to_string),
        stream_threshold: serve.stream_threshold,
        ..qrm_net::NetConfig::default()
    }
}

/// Outcome of a service load run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Submissions served (clients × batches).
    pub submitted: usize,
    /// Shots across all submissions.
    pub shots: usize,
    /// Shots whose target ended defect-free.
    pub filled: usize,
    /// Wall-clock time of the whole run (µs), client threads included.
    pub wall_us: f64,
    /// Served batches per second of wall-clock time.
    pub batches_per_s: f64,
    /// The service's own aggregate stats at the end of the run.
    pub stats: qrm_server::ServiceStats,
    /// Per-planner **deterministic** digest of the served payloads, in
    /// planner-name order. Everything here derives from report payloads
    /// only (no timing), so an in-process run and a `--remote` run of
    /// the same parameters print byte-identical digest lines — the CI
    /// network job diffs exactly that.
    pub digest: Vec<DigestRow>,
}

/// Deterministic per-planner payload totals of a load run.
#[derive(Debug, Clone, PartialEq)]
pub struct DigestRow {
    /// Planner (registration) name.
    pub planner: String,
    /// Batches this planner served.
    pub batches: usize,
    /// Shots across those batches.
    pub shots: usize,
    /// Shots that ended defect-free.
    pub filled: usize,
    /// Pipeline rounds across all shots.
    pub rounds: usize,
    /// Parallel moves across all rounds.
    pub moves: usize,
    /// Atoms lost in transport across all rounds.
    pub lost: usize,
    /// Physical tweezer time across all rounds (µs; exact f64 sum in
    /// fixed submission order).
    pub motion_us: f64,
}

impl DigestRow {
    /// The canonical one-line rendering the CI loopback job diffs.
    /// Floats print with shortest round-trip formatting, so equal
    /// payloads render byte-identically.
    pub fn line(&self) -> String {
        format!(
            "digest planner={} batches={} shots={} filled={} rounds={} moves={} lost={} motion_us={}",
            self.planner,
            self.batches,
            self.shots,
            self.filled,
            self.rounds,
            self.moves,
            self.lost,
            self.motion_us
        )
    }
}

/// The deterministic request of global submission index `index`
/// (shared by the in-process and remote load drivers so their
/// workloads — and therefore digests — are identical).
fn load_request(
    serve: &ServeConfig,
    names: &[&'static str],
    client: usize,
    batch: usize,
) -> qrm_server::SubmitBatch {
    let index = (client * serve.batches + batch) as u64;
    let name = names[(client + batch) % names.len()];
    let spec = qrm_server::BatchSpec::new(
        serve.shots,
        serve.size,
        serve.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
    )
    .with_scenario(serve.scenario);
    qrm_server::SubmitBatch::new(name, spec)
}

/// Runs the client threads against an arbitrary submitter (in-process
/// service or HTTP client) and folds the reports into digest rows in
/// deterministic (client, batch) order.
fn drive_load<F>(
    serve: &ServeConfig,
    make_submitter: impl Fn() -> F + Sync,
) -> (Vec<DigestRow>, f64)
where
    F: FnMut(&qrm_server::SubmitBatch) -> qrm_server::BatchReport + Send,
{
    let names: Vec<&'static str> = planner_choices().iter().map(|(n, _)| *n).collect();
    let t0 = Instant::now();
    // Each client folds its own reports as they arrive (its batches are
    // sequential, so its partial f64 sums have a fixed order), then the
    // partials merge in client-index order — memory stays O(planners)
    // per client instead of buffering every report (with its per-round
    // grid states) until the run ends, and the overall fold structure
    // is fixed, so digests stay bit-reproducible run to run and equal
    // between the in-process and remote drivers.
    let per_client: Vec<BTreeMap<String, DigestRow>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..serve.clients)
            .map(|client| {
                let names = &names;
                let make_submitter = &make_submitter;
                scope.spawn(move || {
                    let mut submit = make_submitter();
                    let mut rows = BTreeMap::new();
                    for _pass in 0..serve.repeat.max(1) {
                        for batch in 0..serve.batches {
                            let request = load_request(serve, names, client, batch);
                            let report = submit(&request);
                            fold_report(&mut rows, &request.planner, &report);
                        }
                    }
                    rows
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_us = t0.elapsed().as_secs_f64() * 1e6;

    let mut rows: BTreeMap<String, DigestRow> = BTreeMap::new();
    for client_rows in per_client {
        for (name, partial) in client_rows {
            match rows.entry(name) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(partial);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let row = slot.get_mut();
                    row.batches += partial.batches;
                    row.shots += partial.shots;
                    row.filled += partial.filled;
                    row.rounds += partial.rounds;
                    row.moves += partial.moves;
                    row.lost += partial.lost;
                    row.motion_us += partial.motion_us;
                }
            }
        }
    }
    (rows.into_values().collect(), wall_us)
}

/// Folds one served report into a client's per-planner partial rows.
fn fold_report(
    rows: &mut BTreeMap<String, DigestRow>,
    planner: &str,
    report: &qrm_server::BatchReport,
) {
    let row = rows
        .entry(planner.to_string())
        .or_insert_with(|| DigestRow {
            planner: planner.to_string(),
            batches: 0,
            shots: 0,
            filled: 0,
            rounds: 0,
            moves: 0,
            lost: 0,
            motion_us: 0.0,
        });
    row.batches += 1;
    row.shots += report.shots();
    row.filled += report.filled();
    for shot in &report.reports {
        row.rounds += shot.rounds.len();
        row.moves += shot.rounds.iter().map(|r| r.moves).sum::<usize>();
        row.lost += shot.total_lost();
        row.motion_us += shot.total_motion_us();
    }
}

fn assemble_report(
    serve: &ServeConfig,
    digest: Vec<DigestRow>,
    wall_us: f64,
    stats: qrm_server::ServiceStats,
) -> ServeReport {
    let submitted = serve.clients * serve.batches * serve.repeat.max(1);
    ServeReport {
        submitted,
        shots: digest.iter().map(|r| r.shots).sum(),
        filled: digest.iter().map(|r| r.filled).sum(),
        wall_us,
        batches_per_s: submitted as f64 / (wall_us / 1e6),
        stats,
        digest,
    }
}

/// Builds a planning service with **all seven planners** registered
/// under their CLI names (the [`planner_choices`] registry), every
/// pipeline at the given worker count and round/loss settings.
pub fn build_service(serve: &ServeConfig) -> qrm_server::PlanService {
    let mut builder = qrm_server::PlanService::builder()
        .max_inflight(serve.max_inflight)
        .cache_bytes(serve.cache_bytes);
    for (name, choice) in planner_choices() {
        let pipeline = PipelineConfig {
            workers: serve.workers,
            loss_prob: 0.01,
            max_rounds: serve.rounds,
            ..PipelineConfig::default()
        };
        builder = builder.register(name, choice, pipeline);
    }
    builder.build()
}

/// Runs the service load **in-process**: `clients` threads each
/// submit `batches` requests, cycling through the seven registered
/// planners so the service serves a concurrent mixed-planner stream,
/// and every submission's workload seed is unique. Panics on any
/// submission error (the registry covers every requested planner and
/// the workload specs are valid by construction).
pub fn service_load(serve: &ServeConfig) -> ServeReport {
    let service = build_service(serve);
    let (digest, wall_us) = drive_load(serve, || {
        |request: &qrm_server::SubmitBatch| service.submit(request).expect("load submission")
    });
    assemble_report(serve, digest, wall_us, service.stats())
}

/// [`service_load`] over the network: the same client threads and the
/// same deterministic workload stream, but every submission travels
/// through an HTTP [`qrm_net::Client`] to the server at `addr` (one
/// connection per client thread). The digest rows are **identical**
/// to an in-process [`service_load`] of the same parameters against a
/// server started with the same parameters — the bit-identity
/// contract, network leg. Panics on submission errors (unknown
/// planner, unreachable server mid-run).
pub fn remote_load(addr: &str, serve: &ServeConfig) -> ServeReport {
    let connect = |addr: &str| {
        let client = qrm_net::Client::connect(addr.to_string());
        match serve.auth_token {
            Some(token) => client.with_auth_token(token),
            None => client,
        }
    };
    let (digest, wall_us) = drive_load(serve, || {
        let mut client = connect(addr);
        move |request: &qrm_server::SubmitBatch| {
            client.submit(request).expect("remote load submission")
        }
    });
    let stats = connect(addr).stats().expect("remote stats");
    assemble_report(serve, digest, wall_us, stats)
}

/// [`remote_load`] against a consistent-hash **router** front end: the
/// same deterministic workload stream, submitted to the router at
/// `addr`, which fans it over its backend fleet. Digest rows are again
/// identical to an in-process [`service_load`] of the same parameters
/// — the bit-identity contract's fifth (fleet) leg, which the CI
/// `fleet` job diffs, backend kill included.
///
/// Unlike [`remote_load`], submissions here survive transient fleet
/// trouble: a failed submission is retried on a **fresh** connection a
/// bounded number of times. Driver-level resubmission is digest-safe
/// because batches are deterministic — a resubmitted spec produces the
/// byte-identical report, and each submission slot folds exactly once.
/// The final stats come from `GET /v1/router/stats`.
pub fn route_load(addr: &str, serve: &ServeConfig) -> (ServeReport, qrm_wire::RouterStats) {
    const ATTEMPTS: usize = 5;
    let (digest, wall_us) = drive_load(serve, || {
        let mut client = qrm_net::Client::connect(addr.to_string());
        move |request: &qrm_server::SubmitBatch| {
            let mut last_err = None;
            for attempt in 0..ATTEMPTS {
                if attempt > 0 {
                    // Fresh connection: the old one may be poisoned by a
                    // torn response, and backoff gives the router's
                    // health sweep time to notice a dead backend.
                    client = qrm_net::Client::connect(addr.to_string());
                    std::thread::sleep(std::time::Duration::from_millis(200));
                }
                match client.submit(request) {
                    Ok(report) => return report,
                    Err(err) => last_err = Some(err),
                }
            }
            panic!(
                "routed submission failed {ATTEMPTS} times: {}",
                last_err.expect("error recorded")
            );
        }
    });
    let router_stats = qrm_net::Client::connect(addr.to_string())
        .router_stats()
        .expect("router stats");
    // The router has no aggregate `/v1/stats`; the service-stats slot of
    // the report stays at its default and the router's own counters ride
    // alongside.
    let report = assemble_report(serve, digest, wall_us, qrm_server::ServiceStats::default());
    (report, router_stats)
}

/// Polls `GET /v1/healthz` at `addr` until the server answers or
/// `timeout` elapses — how the `--remote` driver (and CI) waits for a
/// freshly spawned `--listen` process to come up.
pub fn wait_for_server(addr: &str, timeout: std::time::Duration) -> bool {
    let deadline = Instant::now() + timeout;
    let mut client = qrm_net::Client::connect(addr.to_string());
    loop {
        if client.healthz().is_ok() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// Consistency guard used by the latency-model sweep in the bin.
pub fn latency_model_check() -> bool {
    let cfg = AcceleratorConfig::paper();
    let model = LatencyModel::new(cfg);
    let accel = QrmAccelerator::new(cfg);
    [10usize, 50, 90].iter().all(|&size| {
        let (grid, target) = paper_instance(size, 6000 + size as u64);
        let report = accel.run(&grid, &target).expect("run");
        model.analysis_cycles(size, target.height) == report.cycles.analysis()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_matrix_reaches_all_seven_through_the_trait() {
        let planners = planner_matrix();
        assert_eq!(planners.len(), 7, "QRM, typical, 3 baselines, hybrid, FPGA");
        let names: std::collections::BTreeSet<&str> = planners.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 7, "planner names must be distinct");
        let (grid, target) = paper_instance(16, 321);
        let jobs = vec![(grid.clone(), target), (grid.clone(), target)];
        for planner in &planners {
            let single = planner.plan(&grid, &target).expect("plan");
            let batched = planner.plan_batch(&jobs).expect("batch");
            assert_eq!(
                batched,
                vec![single.clone(), single.clone()],
                "{} batch != mapped plan",
                planner.name()
            );
            planner
                .executor()
                .run(&grid, &single.schedule)
                .expect("schedule must execute under the trait's executor");
        }
    }

    #[test]
    fn planner_choices_mirror_the_matrix() {
        // The config-level registry and the trait-object matrix must
        // cover the same seven planners: resolving every choice yields
        // seven distinct planner names, matching the matrix's set.
        let choices = planner_choices();
        assert_eq!(choices.len(), 7);
        let resolved: std::collections::BTreeSet<&str> = choices
            .iter()
            .map(|(_, choice)| choice.resolve(1).name())
            .collect();
        let matrix: std::collections::BTreeSet<&str> =
            planner_matrix().iter().map(|p| p.name()).collect();
        assert_eq!(resolved, matrix);
    }

    #[test]
    fn pipeline_sweep_runs_end_to_end() {
        let sweep = SweepConfig {
            shots: 2,
            size: 12,
            ..SweepConfig::default()
        };
        let row = pipeline_sweep("qrm", &PlannerChoice::Software(QrmConfig::paper()), &sweep);
        assert_eq!(row.total, 2);
        assert!(row.wall_us > 0.0);
        assert!(row.mean_rounds <= sweep.rounds as f64);
    }

    #[test]
    fn sweep_pool_counters_are_per_run_deltas() {
        // Two consecutive sweeps must each report only their own pool
        // activity: the cumulative process counters keep growing, but a
        // row's delta cannot exceed the growth during the whole test —
        // and a second row's counters must not include the first's.
        let sweep = SweepConfig {
            shots: 2,
            size: 12,
            ..SweepConfig::default()
        };
        let before = rayon::global_pool_stats();
        let first = pipeline_sweep("qrm", &PlannerChoice::Software(QrmConfig::paper()), &sweep);
        let between = rayon::global_pool_stats();
        let second = pipeline_sweep("qrm", &PlannerChoice::Software(QrmConfig::paper()), &sweep);
        let after = rayon::global_pool_stats();
        assert!(first.pool.jobs_executed <= between.since(&before).jobs_executed);
        assert!(second.pool.jobs_executed <= after.since(&between).jobs_executed);
        // Zero new threads during either run: the pool is persistent.
        assert_eq!(first.pool.threads_spawned + second.pool.threads_spawned, 0);
    }

    #[test]
    fn service_load_serves_every_submission() {
        let serve = ServeConfig {
            clients: 3,
            batches: 3,
            shots: 1,
            size: 12,
            ..ServeConfig::default()
        };
        let report = service_load(&serve);
        assert_eq!(report.submitted, 9);
        assert_eq!(report.shots, 9);
        assert_eq!(report.stats.batches_served, 9);
        assert_eq!(report.stats.shots_served, 9);
        assert_eq!(report.stats.inflight, 0);
        assert_eq!(report.stats.queued, 0);
        assert!(report.batches_per_s > 0.0);
        // 3 clients x 3 batches cycling over 7 planners touches names
        // (c + b) % 7 for c, b in 0..3 — exactly planners 0..=4.
        let served: usize = report
            .stats
            .planners
            .iter()
            .map(|p| p.batches as usize)
            .sum();
        assert_eq!(served, 9);
        assert_eq!(report.stats.planners.len(), 7);
    }

    #[test]
    fn planner_registry_names_match_planner_choice_names() {
        // The CLI registry, the PlannerChoice Display names, and the
        // choices' self-reported names must agree — the wire protocol's
        // planner identifiers are these strings.
        let registry: Vec<&str> = planner_choices().iter().map(|(n, _)| *n).collect();
        assert_eq!(registry, PlannerChoice::NAMES);
        for (name, choice) in planner_choices() {
            assert_eq!(choice.name(), name);
            assert_eq!(choice.to_string(), name);
            let parsed: PlannerChoice = name.parse().expect("canonical name parses");
            assert_eq!(parsed.name(), name);
        }
    }

    #[test]
    fn remote_load_digest_matches_in_process_load() {
        // The bit-identity contract at the load-driver level: the same
        // parameters through HTTP produce the same digest rows as the
        // in-process run (timing fields excluded by construction).
        let serve = ServeConfig {
            clients: 2,
            batches: 4,
            shots: 1,
            size: 12,
            workers: 1,
            ..ServeConfig::default()
        };
        let local = service_load(&serve);

        let service = std::sync::Arc::new(build_service(&serve));
        let server = qrm_net::Server::bind("127.0.0.1:0", service, qrm_net::NetConfig::default())
            .expect("bind");
        let addr = server.addr().to_string();
        assert!(wait_for_server(&addr, std::time::Duration::from_secs(5)));
        let remote = remote_load(&addr, &serve);

        assert_eq!(remote.digest, local.digest);
        assert_eq!(remote.submitted, local.submitted);
        assert_eq!(
            remote.stats.batches_served, local.stats.batches_served,
            "remote service served the same stream"
        );
        let lines: Vec<String> = local.digest.iter().map(DigestRow::line).collect();
        assert_eq!(
            remote
                .digest
                .iter()
                .map(DigestRow::line)
                .collect::<Vec<_>>(),
            lines,
            "digest lines are byte-identical"
        );
    }

    #[test]
    fn build_service_registers_all_seven() {
        let service = build_service(&ServeConfig::default());
        let names: Vec<&str> = service.planners().collect();
        let expected: Vec<&str> = {
            let mut v: Vec<&str> = planner_choices().iter().map(|(n, _)| *n).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(names, expected);
    }

    #[test]
    fn paper_instance_is_feasible() {
        let (grid, target) = paper_instance(20, 1);
        assert!(grid.atom_count() >= target.area());
        assert_eq!(target.height, 12);
    }

    #[test]
    fn fig8_rows_match_anchors() {
        let rows = fig8();
        assert_eq!(rows.len(), 5);
        let last = rows.last().unwrap();
        assert!((last.lut_pct - 6.31).abs() < 0.35);
        assert!((last.ff_pct - 6.19).abs() < 0.35);
    }

    #[test]
    fn quality_rows_cover_grid() {
        let rows = quality(3);
        assert_eq!(rows.len(), 8);
        // balanced at 12 iterations should dominate greedy at 4
        let greedy4 = rows
            .iter()
            .find(|r| r.strategy == KernelStrategy::Greedy && r.iterations == 4)
            .unwrap();
        let bal12 = rows
            .iter()
            .find(|r| r.strategy == KernelStrategy::Balanced && r.iterations == 12)
            .unwrap();
        assert!(bal12.mean_defects <= greedy4.mean_defects);
    }

    #[test]
    fn ablations_have_expected_direction() {
        let quad = ablation_quadrants();
        for (size, parallel, serial) in quad {
            assert!(
                serial > parallel,
                "size {size}: serial {serial} <= parallel {parallel}"
            );
        }
        let merge = ablation_merge(2);
        for (size, merged, unmerged) in merge {
            assert!(merged <= unmerged, "size {size}");
        }
    }

    #[test]
    fn latency_model_consistent() {
        assert!(latency_model_check());
    }

    #[test]
    fn engine_scaling_measures_and_stays_deterministic() {
        let (serial_us, rows) = engine_scaling(20, 4, 3, &[1, 2]);
        assert!(serial_us > 0.0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].workers, 1);
        assert!(rows.iter().all(|r| r.batch_us > 0.0 && r.speedup > 0.0));
        // Whatever the timing, the parallel engine's plans must equal
        // the serial planner's on the same workload.
        let jobs = engine_workload(20, 4);
        let serial = QrmScheduler::new(QrmConfig::default());
        let expected: Vec<_> = jobs
            .iter()
            .map(|(g, t)| serial.plan(g, t).unwrap())
            .collect();
        let engine = PlanEngine::new(QrmConfig::default()).with_workers(2);
        assert_eq!(engine.plan_batch(&jobs).unwrap(), expected);
    }
}

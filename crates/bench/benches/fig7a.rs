//! Criterion bench for Fig. 7(a): software QRM analysis time across
//! array sizes, plus the wall-clock cost of the cycle-accurate FPGA
//! simulation (note: the *modelled* FPGA latency is printed by the
//! `experiments` binary; this bench measures simulator throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrm_bench::paper_instance;
use qrm_core::scheduler::{QrmConfig, QrmScheduler, Rearranger};
use qrm_fpga::accelerator::{AcceleratorConfig, QrmAccelerator};

fn bench_fig7a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let scheduler = QrmScheduler::new(QrmConfig::paper());
    let accel = QrmAccelerator::new(AcceleratorConfig::paper());
    for size in [10usize, 30, 50, 70, 90] {
        let (grid, target) = paper_instance(size, 1000 + size as u64);
        group.bench_with_input(BenchmarkId::new("cpu_qrm", size), &size, |b, _| {
            b.iter(|| scheduler.plan(&grid, &target).expect("plan"))
        });
        group.bench_with_input(BenchmarkId::new("fpga_sim", size), &size, |b, _| {
            b.iter(|| accel.run(&grid, &target).expect("run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7a);
criterion_main!(benches);

//! Criterion bench for Fig. 7(b): analysis time of all rearrangement
//! planners on the 20x20 benchmark setting.

use criterion::{criterion_group, criterion_main, Criterion};
use qrm_baselines::{Mta1Scheduler, PscaScheduler, TetrisScheduler};
use qrm_bench::paper_instance;
use qrm_core::scheduler::{QrmConfig, QrmScheduler, Rearranger};
use qrm_core::typical::TypicalScheduler;
use qrm_fpga::accelerator::{AcceleratorConfig, QrmAccelerator};

fn bench_fig7b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_20x20");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let (grid, target) = paper_instance(20, 7);

    let qrm = QrmScheduler::new(QrmConfig::paper());
    group.bench_function("qrm_cpu", |b| {
        b.iter(|| qrm.plan(&grid, &target).expect("plan"))
    });
    let typical = TypicalScheduler::default();
    group.bench_function("typical", |b| {
        b.iter(|| typical.plan(&grid, &target).expect("plan"))
    });
    let tetris = TetrisScheduler::default();
    group.bench_function("tetris", |b| {
        b.iter(|| tetris.plan(&grid, &target).expect("plan"))
    });
    let psca = PscaScheduler::default();
    group.bench_function("psca", |b| {
        b.iter(|| psca.plan(&grid, &target).expect("plan"))
    });
    let mta1 = Mta1Scheduler::default();
    group.bench_function("mta1", |b| {
        b.iter(|| mta1.plan(&grid, &target).expect("plan"))
    });
    let accel = QrmAccelerator::new(AcceleratorConfig::paper());
    group.bench_function("fpga_sim", |b| {
        b.iter(|| accel.run(&grid, &target).expect("run"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig7b);
criterion_main!(benches);

//! Microbenchmarks of the kernel primitives: bit-line operations, a
//! single kernel pass, and the cycle-accurate shift-unit simulation at
//! the headline quadrant size (Qw = 25).

use criterion::{criterion_group, criterion_main, Criterion};
use qrm_core::bitline;
use qrm_core::geometry::Axis;
use qrm_core::grid::AtomGrid;
use qrm_core::kernel::{plan_row_windows, run_pass, KernelStrategy};
use qrm_core::loading::seeded_rng;
use qrm_fpga::shift_unit::{LineJob, ShiftUnit};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_millis(1000));
    group.warm_up_time(std::time::Duration::from_millis(200));

    // bitline suffix shift on a 25-bit quadrant row
    let mut rng = seeded_rng(1);
    let quadrant = AtomGrid::random(25, 25, 0.5, &mut rng);
    group.bench_function("bitline_suffix_shift", |b| {
        let mut bits = quadrant.row_bits(0).to_vec();
        b.iter(|| {
            let mut line = bits.clone();
            if let Some(h) = bitline::lowest_zero_in(&line, 0, 25) {
                bitline::suffix_shift(&mut line, h, 25);
            }
            bits = line.clone();
            line
        })
    });

    // one software kernel pass over a 25x25 quadrant
    let windows = plan_row_windows(&quadrant, KernelStrategy::Greedy, 15, 15);
    group.bench_function("kernel_row_pass_25", |b| {
        b.iter(|| {
            let mut g = quadrant.clone();
            run_pass(&mut g, Axis::Row, &windows, None)
        })
    });

    // the cycle-accurate shift-unit simulation of the same pass
    let jobs: Vec<LineJob> = (0..25)
        .map(|l| LineJob {
            line: l,
            bits: quadrant.row_bits(l).to_vec(),
            window: windows[l],
            enabled: true,
        })
        .collect();
    let unit = ShiftUnit::new(25);
    group.bench_function("shift_unit_sim_25", |b| {
        b.iter(|| unit.run(Axis::Row, &jobs))
    });

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

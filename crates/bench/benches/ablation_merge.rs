//! Ablation E-x3: planning cost with and without cross-quadrant command
//! merging (the schedule-length effect is printed by
//! `experiments -- ablations`).

use criterion::{criterion_group, criterion_main, Criterion};
use qrm_bench::paper_instance;
use qrm_core::scheduler::{QrmConfig, QrmScheduler, Rearranger};

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_merge_50x50");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let (grid, target) = paper_instance(50, 11);
    let merged = QrmScheduler::new(QrmConfig::default().with_merge_quadrants(true));
    let unmerged = QrmScheduler::new(QrmConfig::default().with_merge_quadrants(false));
    group.bench_function("merge_on", |b| {
        b.iter(|| merged.plan(&grid, &target).expect("plan"))
    });
    group.bench_function("merge_off", |b| {
        b.iter(|| unmerged.plan(&grid, &target).expect("plan"))
    });
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);

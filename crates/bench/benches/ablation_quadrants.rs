//! Ablation E-x2 (software side): quadrant-decomposed QRM planning vs
//! the whole-array typical procedure on identical instances. The
//! hardware-side 4x parallelism ablation (modelled cycles) is printed by
//! `experiments -- ablations`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrm_bench::paper_instance;
use qrm_core::scheduler::{QrmConfig, QrmScheduler, Rearranger};
use qrm_core::typical::TypicalScheduler;

fn bench_quadrants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_quadrants");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let qrm = QrmScheduler::new(QrmConfig::paper());
    let typical = TypicalScheduler::default();
    for size in [20usize, 40] {
        let (grid, target) = paper_instance(size, 4000 + size as u64);
        group.bench_with_input(BenchmarkId::new("qrm_quadrants", size), &size, |b, _| {
            b.iter(|| qrm.plan(&grid, &target).expect("plan"))
        });
        group.bench_with_input(BenchmarkId::new("typical_whole", size), &size, |b, _| {
            b.iter(|| typical.plan(&grid, &target).expect("plan"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quadrants);
criterion_main!(benches);

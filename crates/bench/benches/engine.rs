//! Criterion bench for the parallel planning engine: serial mapped
//! `plan` vs batched `plan_batch` on the acceptance workload (100x100
//! array, 16-shot batch) plus a smaller 50x50 batch.
//!
//! On a multi-core host the parallel rows beat the serial baseline (the
//! software analogue of the paper's four parallel QPMs); on a
//! single-core host they measure the engine's queueing overhead. Either
//! way the plans are bit-identical — see `tests/engine_parallel.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrm_bench::engine_workload;
use qrm_core::engine::PlanEngine;
use qrm_core::scheduler::{QrmConfig, QrmScheduler, Rearranger};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    for (size, shots) in [(50usize, 8usize), (100, 16)] {
        let jobs = engine_workload(size, shots);
        let label = format!("{size}x{size}x{shots}");

        let serial = QrmScheduler::new(QrmConfig::default());
        group.bench_with_input(BenchmarkId::new("serial_plan", &label), &jobs, |b, jobs| {
            b.iter(|| {
                jobs.iter()
                    .map(|(g, t)| serial.plan(g, t).expect("plan"))
                    .collect::<Vec<_>>()
            })
        });

        for workers in [2usize, 4, cores] {
            let engine = PlanEngine::new(QrmConfig::default()).with_workers(workers);
            group.bench_with_input(
                BenchmarkId::new(format!("plan_batch_w{workers}"), &label),
                &jobs,
                |b, jobs| b.iter(|| engine.plan_batch(jobs).expect("plan")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);

//! Clock-domain arithmetic.

use std::fmt;

/// A fixed-frequency clock domain converting cycle counts to wall time.
///
/// ```
/// use qrm_fpga::clock::ClockDomain;
/// let clk = ClockDomain::from_mhz(250.0);
/// assert!((clk.us(250) - 1.0).abs() < 1e-12);
/// assert_eq!(clk.cycles_for_us(2.0), 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClockDomain {
    freq_hz: f64,
}

impl ClockDomain {
    /// The paper's programmable-logic clock: 250 MHz.
    pub const PAPER_MHZ: f64 = 250.0;

    /// Creates a clock domain from a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics for non-positive or non-finite frequencies.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "invalid frequency {mhz} MHz");
        ClockDomain { freq_hz: mhz * 1e6 }
    }

    /// Frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// Frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_hz / 1e6
    }

    /// Clock period in nanoseconds.
    pub fn period_ns(&self) -> f64 {
        1e9 / self.freq_hz
    }

    /// Duration of `cycles` clock cycles in microseconds.
    pub fn us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz * 1e6
    }

    /// Duration of `cycles` clock cycles in nanoseconds.
    pub fn ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz * 1e9
    }

    /// Number of whole cycles covering `us` microseconds (rounds up).
    pub fn cycles_for_us(&self, us: f64) -> u64 {
        (us * 1e-6 * self.freq_hz).ceil() as u64
    }
}

impl Default for ClockDomain {
    /// The paper's 250 MHz clock.
    fn default() -> Self {
        ClockDomain::from_mhz(Self::PAPER_MHZ)
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MHz", self.freq_mhz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_period() {
        let clk = ClockDomain::default();
        assert!((clk.period_ns() - 4.0).abs() < 1e-12);
        assert!((clk.freq_mhz() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn us_cycles_roundtrip() {
        let clk = ClockDomain::from_mhz(100.0);
        assert_eq!(clk.cycles_for_us(clk.us(12345)), 12345);
        assert!((clk.ns(1) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn rejects_zero_frequency() {
        let _ = ClockDomain::from_mhz(0.0);
    }
}

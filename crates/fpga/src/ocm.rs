//! The Output Concatenation Module and Row Combination Unit (paper
//! §IV-B/C).
//!
//! The four QPM command streams land in a wide FIFO; the Row Combination
//! Unit merges them into global AOD moves (NW+SW from the west, NE+SE
//! from the east, N/S for the vertical passes; empty shifts elided) and
//! the consolidated movement records plus the final matrix stream back to
//! DDR.
//!
//! Functionally the merge is [`qrm_core::merge::merge_outcomes`]; this
//! module adds the hardware cost model: the combination logic is
//! pipelined behind the QPMs (commands are merged as they arrive thanks
//! to their static timing), so only a drain tail plus the output DMA
//! appear on the critical path.

use qrm_core::error::Error;
use qrm_core::grid::AtomGrid;
use qrm_core::kernel::KernelOutcome;
use qrm_core::merge::{merge_outcomes, MergeConfig};
use qrm_core::quadrant::QuadrantMap;
use qrm_core::schedule::Schedule;

use crate::memory::DdrModel;
use crate::stream::AxiStream;

/// OCM configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OcmConfig {
    /// AXI link for the write-back.
    pub axi: AxiStream,
    /// DDR the results are written to.
    pub ddr: DdrModel,
    /// Merge compatible quadrant pairs into shared moves.
    pub merge_quadrants: bool,
    /// Pipeline drain tail of the combination logic, in cycles.
    pub combine_tail_cycles: u64,
}

impl Default for OcmConfig {
    fn default() -> Self {
        OcmConfig {
            axi: AxiStream::default(),
            ddr: DdrModel::default(),
            merge_quadrants: true,
            combine_tail_cycles: 16,
        }
    }
}

/// Result of combining four quadrant outcomes.
#[derive(Debug, Clone)]
pub struct OcmReport {
    /// The merged executable schedule.
    pub schedule: Schedule,
    /// Predicted global occupancy.
    pub final_grid: AtomGrid,
    /// Drain tail of the combination pipeline (on the critical path).
    pub combine_cycles: u64,
    /// Write-back cycles for movement records and the final matrix.
    pub writeback_cycles: u64,
    /// Encoded size of the movement records, in bits.
    pub record_bits: usize,
}

/// The output-concatenation module.
#[derive(Debug, Clone, Default)]
pub struct OutputModule {
    config: OcmConfig,
}

impl OutputModule {
    /// Creates a module.
    pub fn new(config: OcmConfig) -> Self {
        OutputModule { config }
    }

    /// Bits needed to encode one movement record: a row-selection mask, a
    /// column-selection mask, and a direction/step byte — delegated to
    /// the canonical stream format in [`qrm_core::codec`].
    pub fn record_bits_per_move(width: usize, height: usize) -> usize {
        qrm_core::codec::record_bits(height, width)
    }

    /// Merges the quadrant outcomes and models the write-back.
    ///
    /// # Errors
    ///
    /// Propagates merge validation failures.
    pub fn combine(
        &self,
        grid: &AtomGrid,
        map: &QuadrantMap,
        outcomes: &[KernelOutcome; 4],
    ) -> Result<OcmReport, Error> {
        let merged = merge_outcomes(
            grid,
            map,
            outcomes,
            &MergeConfig {
                merge_quadrants: self.config.merge_quadrants,
            },
        )?;
        let record_bits =
            merged.schedule.len() * Self::record_bits_per_move(grid.width(), grid.height());
        // Write-back payload: the canonical record stream (header +
        // records, see `qrm_core::codec`) plus the final matrix.
        let stream_bits =
            qrm_core::codec::encoded_bits(grid.height(), grid.width(), merged.schedule.len());
        debug_assert_eq!(stream_bits, 80 + record_bits);
        let matrix_bits = grid.area();
        let writeback_cycles = self.config.ddr.write_latency_cycles
            + self.config.axi.transfer_cycles(stream_bits + matrix_bits);
        Ok(OcmReport {
            schedule: merged.schedule,
            final_grid: merged.final_grid,
            combine_cycles: self.config.combine_tail_cycles,
            writeback_cycles,
            record_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::executor::Executor;
    use qrm_core::kernel::{KernelConfig, KernelStrategy, ShiftKernel};
    use qrm_core::loading::seeded_rng;

    fn outcomes_for(grid: &AtomGrid, map: &QuadrantMap) -> [KernelOutcome; 4] {
        let kernel = ShiftKernel::new(
            KernelConfig::new(6, 6)
                .with_strategy(KernelStrategy::Greedy)
                .with_static_iterations(true)
                .with_max_iterations(4),
        );
        let quads = map.split(grid).unwrap();
        let v: Vec<KernelOutcome> = quads.iter().map(|q| kernel.run(q).unwrap()).collect();
        v.try_into().unwrap()
    }

    #[test]
    fn combine_produces_executable_schedule() {
        let mut rng = seeded_rng(10);
        let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
        let map = QuadrantMap::new(20, 20).unwrap();
        let outcomes = outcomes_for(&grid, &map);
        let report = OutputModule::new(OcmConfig::default())
            .combine(&grid, &map, &outcomes)
            .unwrap();
        let exec = Executor::new().run(&grid, &report.schedule).unwrap();
        assert_eq!(exec.final_grid, report.final_grid);
        assert_eq!(report.record_bits, report.schedule.len() * (20 + 20 + 8));
        assert!(report.writeback_cycles > 0);
        assert_eq!(report.combine_cycles, 16);
    }

    #[test]
    fn record_encoding_size() {
        assert_eq!(OutputModule::record_bits_per_move(50, 50), 108);
        assert_eq!(OutputModule::record_bits_per_move(90, 90), 188);
    }
}

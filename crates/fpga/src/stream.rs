//! AXI-stream transfer model.
//!
//! The accelerator receives the detection bitfield and returns the
//! movement records over AXI, packing "1024-bit data into one packet to
//! move the data from DDR memory into our accelerator with minimal
//! transmission overhead" (paper §IV-A). The model charges a fixed setup
//! latency plus one cycle per beat.

/// AXI-stream link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AxiStream {
    /// Payload bits per beat (paper: 1024).
    pub beat_bits: usize,
    /// Fixed handshake/setup latency in cycles per transfer.
    pub setup_cycles: u64,
}

impl AxiStream {
    /// The paper's configuration: 1024-bit beats.
    pub const fn paper() -> Self {
        AxiStream {
            beat_bits: 1024,
            setup_cycles: 8,
        }
    }

    /// Number of beats needed for a payload of `bits`.
    ///
    /// ```
    /// use qrm_fpga::stream::AxiStream;
    /// let s = AxiStream::paper();
    /// assert_eq!(s.beats(2500), 3); // a 50x50 bitfield
    /// assert_eq!(s.beats(0), 0);
    /// ```
    pub const fn beats(&self, bits: usize) -> u64 {
        (bits.div_ceil(self.beat_bits)) as u64
    }

    /// Total transfer cycles for a payload of `bits` (setup + streaming).
    pub const fn transfer_cycles(&self, bits: usize) -> u64 {
        if bits == 0 {
            0
        } else {
            self.setup_cycles + self.beats(bits)
        }
    }
}

impl Default for AxiStream {
    fn default() -> Self {
        AxiStream::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_counts() {
        let s = AxiStream::paper();
        assert_eq!(s.beats(1), 1);
        assert_eq!(s.beats(1024), 1);
        assert_eq!(s.beats(1025), 2);
        // paper sizes
        assert_eq!(s.beats(10 * 10), 1);
        assert_eq!(s.beats(90 * 90), 8);
    }

    #[test]
    fn transfer_includes_setup() {
        let s = AxiStream {
            beat_bits: 128,
            setup_cycles: 5,
        };
        assert_eq!(s.transfer_cycles(0), 0);
        assert_eq!(s.transfer_cycles(1), 6);
        assert_eq!(s.transfer_cycles(256), 7);
    }
}

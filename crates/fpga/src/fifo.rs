//! Bounded FIFO with occupancy tracking.
//!
//! Models the stream FIFOs between the accelerator's dataflow stages
//! (Fig. 5: "Stored in FIFO", "Written to FIFO"). Besides queue
//! behaviour it records the high-water mark, which the resource model
//! uses to size BRAM.

use std::collections::VecDeque;
use std::fmt;

/// Error returned when pushing into a full [`Fifo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFullError;

impl fmt::Display for FifoFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo is full")
    }
}

impl std::error::Error for FifoFullError {}

/// A bounded hardware-style FIFO.
///
/// ```
/// use qrm_fpga::fifo::Fifo;
/// let mut f = Fifo::new(2);
/// f.push(1u32)?;
/// f.push(2)?;
/// assert!(f.push(3).is_err());
/// assert_eq!(f.pop(), Some(1));
/// assert_eq!(f.max_occupancy(), 2);
/// # Ok::<(), qrm_fpga::fifo::FifoFullError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    capacity: usize,
    buf: VecDeque<T>,
    max_occupancy: usize,
    total_pushed: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        Fifo {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            max_occupancy: 0,
            total_pushed: 0,
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the FIFO is full.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Pushes an element.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] when full (backpressure).
    pub fn push(&mut self, value: T) -> Result<(), FifoFullError> {
        if self.is_full() {
            return Err(FifoFullError);
        }
        self.buf.push_back(value);
        self.total_pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.buf.len());
        Ok(())
    }

    /// Pops the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// Peeks at the oldest element without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.buf.front()
    }

    /// High-water mark since construction.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Total elements ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_backpressure() {
        let mut f = Fifo::new(3);
        for i in 0..3 {
            f.push(i).unwrap();
        }
        assert!(f.is_full());
        assert_eq!(f.push(9), Err(FifoFullError));
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.peek(), Some(&1));
        f.push(3).unwrap();
        let drained: Vec<_> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert!(f.is_empty());
        assert_eq!(f.max_occupancy(), 3);
        assert_eq!(f.total_pushed(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}

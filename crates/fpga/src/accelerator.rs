//! The full QRM accelerator top (paper Fig. 5).
//!
//! Wires the [`LoadDataModule`], four
//! [`QuadrantProcessor`]s running in
//! parallel, and the [`OutputModule`] into the
//! complete dataflow design, producing both the functional plan and an
//! exact cycle breakdown at the configured clock.
//!
//! The *analysis latency* — the quantity Fig. 7 reports — covers control
//! hand-off, input DMA, the quadrant pipelines, and the combination
//! drain. The movement-record write-back to DDR is reported separately
//! (it overlaps the PS-side pulse generation in a real system).

use std::sync::Arc;

use qrm_core::engine::{
    decompose, decompose_batch, resolve_workers, run_task_graph, QuadrantTask, QuadrantWork, Step,
};
use qrm_core::error::Error;
use qrm_core::geometry::Rect;
use qrm_core::grid::AtomGrid;
use qrm_core::kernel::{KernelOutcome, KernelStrategy};
use qrm_core::planner::Planner;
use qrm_core::scheduler::Plan;

use crate::clock::ClockDomain;
use crate::ldm::{LdmConfig, LoadDataModule};
use crate::ocm::{OcmConfig, OutputModule};
use crate::qpm::{QpmConfig, QpmReport, QuadrantProcessor};

/// Accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AcceleratorConfig {
    /// Programmable-logic clock (paper: 250 MHz).
    pub clock: ClockDomain,
    /// Static iteration count per quadrant (paper: 4).
    pub iterations: usize,
    /// Kernel strategy (`Greedy` is the paper datapath).
    pub strategy: KernelStrategy,
    /// Input-path configuration.
    pub ldm: LdmConfig,
    /// Output-path configuration.
    pub ocm: OcmConfig,
    /// PS-side kick-off and AXI control handshake, in PL cycles.
    pub control_overhead_cycles: u64,
}

impl AcceleratorConfig {
    /// Paper-faithful configuration: greedy kernel, 4 static iterations,
    /// 250 MHz.
    pub fn paper() -> Self {
        AcceleratorConfig {
            clock: ClockDomain::default(),
            iterations: 4,
            strategy: KernelStrategy::Greedy,
            ldm: LdmConfig::default(),
            ocm: OcmConfig::default(),
            control_overhead_cycles: 16,
        }
    }

    /// Extended configuration: balanced kernel (quota-planning datapath),
    /// 10 static iterations — fills aggressive targets at the cost of
    /// roughly 2.5x the compute latency.
    pub fn balanced() -> Self {
        AcceleratorConfig {
            iterations: 10,
            strategy: KernelStrategy::Balanced,
            ..AcceleratorConfig::paper()
        }
    }

    /// Replaces the static iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Replaces the kernel strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: KernelStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig::paper()
    }
}

/// Cycle breakdown of one accelerator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// PS control hand-off.
    pub control: u64,
    /// Input DMA (DDR + AXI streaming).
    pub input: u64,
    /// Quadrant pipelines (max over the four parallel QPMs).
    pub compute: u64,
    /// Row Combination Unit drain tail.
    pub combine: u64,
    /// Movement-record + matrix write-back (off the analysis path).
    pub writeback: u64,
}

impl CycleBreakdown {
    /// Analysis-path cycles (what Fig. 7 measures).
    pub fn analysis(&self) -> u64 {
        self.control + self.input + self.compute + self.combine
    }

    /// End-to-end cycles including write-back.
    pub fn total(&self) -> u64 {
        self.analysis() + self.writeback
    }
}

/// Result of one accelerator run.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorReport {
    /// Functional plan (schedule, predicted grid, fill flag).
    pub plan: Plan,
    /// Exact cycle breakdown.
    pub cycles: CycleBreakdown,
    /// Analysis latency in microseconds at the configured clock.
    pub time_us: f64,
    /// End-to-end latency including write-back, in microseconds.
    pub total_time_us: f64,
    /// Per-quadrant compute cycles (NW, NE, SW, SE).
    pub quadrant_cycles: [u64; 4],
}

/// The four-quadrant rearrangement accelerator.
///
/// Implements [`Planner`], so it can be compared head-to-head with the
/// software planners; [`run`](QrmAccelerator::run) additionally returns
/// the timing report.
#[derive(Debug, Clone, Default)]
pub struct QrmAccelerator {
    config: AcceleratorConfig,
    /// Host-side worker count for batched runs (`0` = automatic).
    workers: usize,
}

impl QrmAccelerator {
    /// Creates an accelerator with automatic batch worker count.
    pub fn new(config: AcceleratorConfig) -> Self {
        QrmAccelerator { config, workers: 0 }
    }

    /// Overrides the host-side worker count used by batched runs (`0`
    /// restores the automatic policy). Simulated cycle counts are
    /// unaffected — host parallelism only changes wall-clock time.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The accelerator's configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The quadrant-processor model configured for one decomposition.
    fn qpm_for(&self, work: &QuadrantWork) -> QuadrantProcessor {
        QuadrantProcessor::new(QpmConfig {
            target_height: work.target_height,
            target_width: work.target_width,
            iterations: self.config.iterations,
            strategy: self.config.strategy,
        })
    }

    /// The merge stage: Row Combination Unit over the four quadrant
    /// reports, returning the OCM result and the per-quadrant cycles.
    fn combine(
        &self,
        grid: &AtomGrid,
        work: &QuadrantWork,
        reports: [QpmReport; 4],
    ) -> Result<(crate::ocm::OcmReport, [u64; 4]), Error> {
        let mut outcomes: Vec<KernelOutcome> = Vec::with_capacity(4);
        let mut quadrant_cycles = [0u64; 4];
        for (i, report) in reports.into_iter().enumerate() {
            quadrant_cycles[i] = report.total_cycles;
            outcomes.push(report.outcome);
        }
        let outcomes: [KernelOutcome; 4] = outcomes.try_into().expect("four quadrants");
        let ocm = OutputModule::new(self.config.ocm);
        Ok((ocm.combine(grid, &work.map, &outcomes)?, quadrant_cycles))
    }

    /// The validate stage: fill check plus cycle/latency book-keeping.
    fn finalize(
        &self,
        grid: &AtomGrid,
        target: &Rect,
        combined: crate::ocm::OcmReport,
        quadrant_cycles: [u64; 4],
    ) -> Result<AcceleratorReport, Error> {
        let compute = quadrant_cycles.iter().copied().max().unwrap_or(0);
        let (input_cycles, _bits) =
            LoadDataModule::new(self.config.ldm).stream_timing(grid.height(), grid.width());
        let cycles = CycleBreakdown {
            control: self.config.control_overhead_cycles,
            input: input_cycles,
            compute,
            combine: combined.combine_cycles,
            writeback: combined.writeback_cycles,
        };
        let filled = combined.final_grid.is_filled(target)?;
        Ok(AcceleratorReport {
            plan: Plan {
                schedule: combined.schedule,
                predicted: combined.final_grid,
                filled,
                iterations: self.config.iterations,
            },
            time_us: self.config.clock.us(cycles.analysis()),
            total_time_us: self.config.clock.us(cycles.total()),
            cycles,
            quadrant_cycles,
        })
    }

    /// Runs one complete rearrangement analysis.
    ///
    /// The decomposition comes from [`qrm_core::engine::decompose`] — the
    /// same structure the software planning engine consumes, so the
    /// cycle-accurate model and the software path cannot drift apart.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OddDimensions`] / [`Error::InvalidTarget`] for
    /// arrays or targets QRM cannot decompose, and propagates merge
    /// validation failures.
    pub fn run(&self, grid: &AtomGrid, target: &Rect) -> Result<AcceleratorReport, Error> {
        let work = decompose(grid, target)?;
        let qpm = self.qpm_for(&work);
        let mut reports: Vec<QpmReport> = Vec::with_capacity(4);
        for quadrant in &work.quadrants {
            reports.push(qpm.process(quadrant)?);
        }
        let reports: [QpmReport; 4] = reports.try_into().expect("four quadrants");
        let (combined, quadrant_cycles) = self.combine(grid, &work, reports)?;
        self.finalize(grid, target, combined, quadrant_cycles)
    }

    /// Runs a batch of analyses with the configured worker count —
    /// shorthand for [`run_batch_with_workers`](Self::run_batch_with_workers)
    /// with the count set by [`with_workers`](Self::with_workers)
    /// (automatic by default).
    ///
    /// # Errors
    ///
    /// Returns the first decomposition error in input order, or the
    /// first processing error the task graph hits.
    pub fn run_batch(&self, jobs: &[(AtomGrid, Rect)]) -> Result<Vec<AcceleratorReport>, Error> {
        self.run_batch_with_workers(jobs, self.workers)
    }

    /// Runs a batch of analyses through the shared task-graph engine
    /// ([`qrm_core::engine::run_task_graph`]): the quadrant-processor
    /// simulations of all shots share one work queue, mirroring how
    /// [`PlanEngine`](qrm_core::engine::PlanEngine) batches the software
    /// kernels. `workers` follows the engine's policy ([`resolve_workers`]:
    /// `0` = one per core; any count is capped by the batch's task
    /// count), so the FPGA-model batch can be throttled exactly like the
    /// software path. Reports are in input order and identical to
    /// calling [`run`](Self::run) per shot (modelled cycle counts
    /// included — simulated time is unaffected by host-side
    /// parallelism).
    ///
    /// # Errors
    ///
    /// Returns the first decomposition error in input order, or the
    /// first processing error the task graph hits.
    pub fn run_batch_with_workers(
        &self,
        jobs: &[(AtomGrid, Rect)],
        workers: usize,
    ) -> Result<Vec<AcceleratorReport>, Error> {
        /// Whole-quadrant simulation as a single-step task (the QPM
        /// pipeline has static timing, so there is no iteration-level
        /// resumption point worth modelling).
        struct QpmTask {
            qpm: QuadrantProcessor,
            quadrant: Arc<AtomGrid>,
        }

        impl QuadrantTask for QpmTask {
            type Out = QpmReport;
            fn step(&mut self) -> Result<Step<QpmReport>, Error> {
                Ok(Step::Done(self.qpm.process(&self.quadrant)?))
            }
        }

        let shots = decompose_batch(jobs)?;

        let tasks: Vec<[QpmTask; 4]> = shots
            .iter()
            .map(|shot| {
                let qpm = self.qpm_for(&shot.work);
                shot.work.quadrants.each_ref().map(|quadrant| QpmTask {
                    qpm: qpm.clone(),
                    quadrant: Arc::clone(quadrant),
                })
            })
            .collect();

        let workers = resolve_workers(workers, shots.len());
        run_task_graph(
            tasks,
            workers,
            |shot_idx, reports: [QpmReport; 4]| {
                let shot = &shots[shot_idx];
                self.combine(shot.grid, &shot.work, reports)
            },
            |shot_idx, (combined, quadrant_cycles)| {
                let shot = &shots[shot_idx];
                self.finalize(shot.grid, shot.target, combined, quadrant_cycles)
            },
        )
    }
}

impl Planner for QrmAccelerator {
    fn name(&self) -> &'static str {
        match self.config.strategy {
            KernelStrategy::Greedy => "QRM-FPGA (greedy)",
            KernelStrategy::GreedyTargetOnly => "QRM-FPGA (greedy, target-only)",
            KernelStrategy::Balanced => "QRM-FPGA (balanced)",
        }
    }

    fn plan(&self, grid: &AtomGrid, target: &Rect) -> Result<Plan, Error> {
        Ok(self.run(grid, target)?.plan)
    }

    /// Batched planning through [`run_batch`](QrmAccelerator::run_batch)
    /// — the same task graph the software engine uses.
    fn plan_batch(&self, jobs: &[(AtomGrid, Rect)]) -> Result<Vec<Plan>, Error> {
        Ok(self
            .run_batch(jobs)?
            .into_iter()
            .map(|report| report.plan)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::executor::Executor;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn headline_latency_regime() {
        // Paper headline: 50x50 -> 30x30 analysed in ~1.0 us at 250 MHz.
        let mut rng = seeded_rng(2024);
        let grid = AtomGrid::random(50, 50, 0.5, &mut rng);
        let target = Rect::centered(50, 50, 30, 30).unwrap();
        let report = QrmAccelerator::new(AcceleratorConfig::paper())
            .run(&grid, &target)
            .unwrap();
        assert!(
            (0.5..2.0).contains(&report.time_us),
            "analysis time {} us outside the paper's regime",
            report.time_us
        );
        // ~(2*4+1)*25 compute cycles
        assert_eq!(report.cycles.compute, 9 * 25);
    }

    #[test]
    fn schedule_executes_and_matches_prediction() {
        let mut rng = seeded_rng(77);
        for cfg in [AcceleratorConfig::paper(), AcceleratorConfig::balanced()] {
            let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
            let target = Rect::centered(20, 20, 12, 12).unwrap();
            let report = QrmAccelerator::new(cfg).run(&grid, &target).unwrap();
            let exec = Executor::new().run(&grid, &report.plan.schedule).unwrap();
            assert_eq!(exec.final_grid, report.plan.predicted);
        }
    }

    #[test]
    fn latency_is_data_independent() {
        // Same dims, different content: identical analysis cycles (the
        // paper's "latency correlates solely with the initial size").
        let target = Rect::centered(30, 30, 18, 18).unwrap();
        let empty = AtomGrid::new(30, 30).unwrap();
        let mut rng = seeded_rng(5);
        let random = AtomGrid::random(30, 30, 0.5, &mut rng);
        let accel = QrmAccelerator::new(AcceleratorConfig::paper());
        let a = accel.run(&empty, &target).unwrap();
        let b = accel.run(&random, &target).unwrap();
        assert_eq!(a.cycles.analysis(), b.cycles.analysis());
        // write-back differs (movement record count is data dependent)
    }

    #[test]
    fn scaling_is_moderate() {
        // Fig 7(a) FPGA curve: ~2.4x from size 10 to 90 (0.8 -> 1.9 us).
        let accel = QrmAccelerator::new(AcceleratorConfig::paper());
        let mut rng = seeded_rng(6);
        let t10 = {
            let g = AtomGrid::random(10, 10, 0.5, &mut rng);
            accel
                .run(&g, &Rect::centered(10, 10, 6, 6).unwrap())
                .unwrap()
                .time_us
        };
        let t90 = {
            let g = AtomGrid::random(90, 90, 0.5, &mut rng);
            accel
                .run(&g, &Rect::centered(90, 90, 54, 54).unwrap())
                .unwrap()
                .time_us
        };
        let ratio = t90 / t10;
        assert!(
            (1.5..8.0).contains(&ratio),
            "size-90/size-10 analysis ratio {ratio:.2} implausible"
        );
    }

    #[test]
    fn balanced_fills_headline_with_extended_config() {
        let mut rng = seeded_rng(31337);
        let mut filled = 0;
        let mut tried = 0;
        for _ in 0..6 {
            let grid = AtomGrid::random(50, 50, 0.5, &mut rng);
            if grid.atom_count() < 1000 {
                continue;
            }
            tried += 1;
            let target = Rect::centered(50, 50, 30, 30).unwrap();
            let report = QrmAccelerator::new(AcceleratorConfig::balanced())
                .run(&grid, &target)
                .unwrap();
            if report.plan.filled {
                filled += 1;
            }
        }
        assert!(tried >= 4);
        assert!(filled * 10 >= tried * 8, "filled {filled}/{tried}");
    }

    #[test]
    fn rearranger_trait_name() {
        assert_eq!(
            QrmAccelerator::new(AcceleratorConfig::paper()).name(),
            "QRM-FPGA (greedy)"
        );
    }

    #[test]
    fn run_batch_is_identical_to_mapped_run() {
        let mut rng = seeded_rng(99);
        let jobs: Vec<(AtomGrid, Rect)> = (0..5)
            .map(|_| {
                (
                    AtomGrid::random(20, 20, 0.5, &mut rng),
                    Rect::centered(20, 20, 12, 12).unwrap(),
                )
            })
            .collect();
        for cfg in [AcceleratorConfig::paper(), AcceleratorConfig::balanced()] {
            let accel = QrmAccelerator::new(cfg);
            let batched = accel.run_batch(&jobs).unwrap();
            assert_eq!(batched.len(), jobs.len());
            for ((grid, target), report) in jobs.iter().zip(&batched) {
                let single = accel.run(grid, target).unwrap();
                assert_eq!(single, *report);
            }
            for workers in [1usize, 3, 64] {
                let throttled = accel.run_batch_with_workers(&jobs, workers).unwrap();
                assert_eq!(throttled, batched, "workers = {workers}");
            }
        }
    }
}

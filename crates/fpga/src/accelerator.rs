//! The full QRM accelerator top (paper Fig. 5).
//!
//! Wires the [`LoadDataModule`](crate::ldm::LoadDataModule), four
//! [`QuadrantProcessor`](crate::qpm::QuadrantProcessor)s running in
//! parallel, and the [`OutputModule`](crate::ocm::OutputModule) into the
//! complete dataflow design, producing both the functional plan and an
//! exact cycle breakdown at the configured clock.
//!
//! The *analysis latency* — the quantity Fig. 7 reports — covers control
//! hand-off, input DMA, the quadrant pipelines, and the combination
//! drain. The movement-record write-back to DDR is reported separately
//! (it overlaps the PS-side pulse generation in a real system).

use qrm_core::error::Error;
use qrm_core::geometry::Rect;
use qrm_core::grid::AtomGrid;
use qrm_core::kernel::{KernelOutcome, KernelStrategy};
use qrm_core::quadrant::QuadrantMap;
use qrm_core::scheduler::{Plan, Rearranger};

use crate::clock::ClockDomain;
use crate::ldm::{LdmConfig, LoadDataModule};
use crate::ocm::{OcmConfig, OutputModule};
use crate::qpm::{QpmConfig, QuadrantProcessor};

/// Accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Programmable-logic clock (paper: 250 MHz).
    pub clock: ClockDomain,
    /// Static iteration count per quadrant (paper: 4).
    pub iterations: usize,
    /// Kernel strategy (`Greedy` is the paper datapath).
    pub strategy: KernelStrategy,
    /// Input-path configuration.
    pub ldm: LdmConfig,
    /// Output-path configuration.
    pub ocm: OcmConfig,
    /// PS-side kick-off and AXI control handshake, in PL cycles.
    pub control_overhead_cycles: u64,
}

impl AcceleratorConfig {
    /// Paper-faithful configuration: greedy kernel, 4 static iterations,
    /// 250 MHz.
    pub fn paper() -> Self {
        AcceleratorConfig {
            clock: ClockDomain::default(),
            iterations: 4,
            strategy: KernelStrategy::Greedy,
            ldm: LdmConfig::default(),
            ocm: OcmConfig::default(),
            control_overhead_cycles: 16,
        }
    }

    /// Extended configuration: balanced kernel (quota-planning datapath),
    /// 10 static iterations — fills aggressive targets at the cost of
    /// roughly 2.5x the compute latency.
    pub fn balanced() -> Self {
        AcceleratorConfig {
            iterations: 10,
            strategy: KernelStrategy::Balanced,
            ..AcceleratorConfig::paper()
        }
    }

    /// Replaces the static iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Replaces the kernel strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: KernelStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig::paper()
    }
}

/// Cycle breakdown of one accelerator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// PS control hand-off.
    pub control: u64,
    /// Input DMA (DDR + AXI streaming).
    pub input: u64,
    /// Quadrant pipelines (max over the four parallel QPMs).
    pub compute: u64,
    /// Row Combination Unit drain tail.
    pub combine: u64,
    /// Movement-record + matrix write-back (off the analysis path).
    pub writeback: u64,
}

impl CycleBreakdown {
    /// Analysis-path cycles (what Fig. 7 measures).
    pub fn analysis(&self) -> u64 {
        self.control + self.input + self.compute + self.combine
    }

    /// End-to-end cycles including write-back.
    pub fn total(&self) -> u64 {
        self.analysis() + self.writeback
    }
}

/// Result of one accelerator run.
#[derive(Debug, Clone)]
pub struct AcceleratorReport {
    /// Functional plan (schedule, predicted grid, fill flag).
    pub plan: Plan,
    /// Exact cycle breakdown.
    pub cycles: CycleBreakdown,
    /// Analysis latency in microseconds at the configured clock.
    pub time_us: f64,
    /// End-to-end latency including write-back, in microseconds.
    pub total_time_us: f64,
    /// Per-quadrant compute cycles (NW, NE, SW, SE).
    pub quadrant_cycles: [u64; 4],
}

/// The four-quadrant rearrangement accelerator.
///
/// Implements [`Rearranger`], so it can be compared head-to-head with the
/// software planners; [`run`](QrmAccelerator::run) additionally returns
/// the timing report.
#[derive(Debug, Clone, Default)]
pub struct QrmAccelerator {
    config: AcceleratorConfig,
}

impl QrmAccelerator {
    /// Creates an accelerator.
    pub fn new(config: AcceleratorConfig) -> Self {
        QrmAccelerator { config }
    }

    /// The accelerator's configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Runs one complete rearrangement analysis.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OddDimensions`] / [`Error::InvalidTarget`] for
    /// arrays or targets QRM cannot decompose, and propagates merge
    /// validation failures.
    pub fn run(&self, grid: &AtomGrid, target: &Rect) -> Result<AcceleratorReport, Error> {
        let map = QuadrantMap::new(grid.height(), grid.width())?;
        let (th, tw) = map.quadrant_target(target)?;

        let ldm = LoadDataModule::new(self.config.ldm);
        let input = ldm.load(grid, &map)?;

        let qpm = QuadrantProcessor::new(QpmConfig {
            target_height: th,
            target_width: tw,
            iterations: self.config.iterations,
            strategy: self.config.strategy,
        });
        let mut outcomes: Vec<KernelOutcome> = Vec::with_capacity(4);
        let mut quadrant_cycles = [0u64; 4];
        for (i, quadrant) in input.quadrants.iter().enumerate() {
            let report = qpm.process(quadrant)?;
            quadrant_cycles[i] = report.total_cycles;
            outcomes.push(report.outcome);
        }
        let outcomes: [KernelOutcome; 4] = outcomes.try_into().expect("four quadrants");
        let compute = quadrant_cycles.iter().copied().max().unwrap_or(0);

        let ocm = OutputModule::new(self.config.ocm);
        let combined = ocm.combine(grid, &map, &outcomes)?;

        let cycles = CycleBreakdown {
            control: self.config.control_overhead_cycles,
            input: input.cycles,
            compute,
            combine: combined.combine_cycles,
            writeback: combined.writeback_cycles,
        };
        let filled = combined.final_grid.is_filled(target)?;
        Ok(AcceleratorReport {
            plan: Plan {
                schedule: combined.schedule,
                predicted: combined.final_grid,
                filled,
                iterations: self.config.iterations,
            },
            time_us: self.config.clock.us(cycles.analysis()),
            total_time_us: self.config.clock.us(cycles.total()),
            cycles,
            quadrant_cycles,
        })
    }
}

impl Rearranger for QrmAccelerator {
    fn name(&self) -> &'static str {
        match self.config.strategy {
            KernelStrategy::Greedy => "QRM-FPGA (greedy)",
            KernelStrategy::GreedyTargetOnly => "QRM-FPGA (greedy, target-only)",
            KernelStrategy::Balanced => "QRM-FPGA (balanced)",
        }
    }

    fn plan(&self, grid: &AtomGrid, target: &Rect) -> Result<Plan, Error> {
        Ok(self.run(grid, target)?.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::executor::Executor;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn headline_latency_regime() {
        // Paper headline: 50x50 -> 30x30 analysed in ~1.0 us at 250 MHz.
        let mut rng = seeded_rng(2024);
        let grid = AtomGrid::random(50, 50, 0.5, &mut rng);
        let target = Rect::centered(50, 50, 30, 30).unwrap();
        let report = QrmAccelerator::new(AcceleratorConfig::paper())
            .run(&grid, &target)
            .unwrap();
        assert!(
            (0.5..2.0).contains(&report.time_us),
            "analysis time {} us outside the paper's regime",
            report.time_us
        );
        // ~(2*4+1)*25 compute cycles
        assert_eq!(report.cycles.compute, 9 * 25);
    }

    #[test]
    fn schedule_executes_and_matches_prediction() {
        let mut rng = seeded_rng(77);
        for cfg in [AcceleratorConfig::paper(), AcceleratorConfig::balanced()] {
            let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
            let target = Rect::centered(20, 20, 12, 12).unwrap();
            let report = QrmAccelerator::new(cfg).run(&grid, &target).unwrap();
            let exec = Executor::new().run(&grid, &report.plan.schedule).unwrap();
            assert_eq!(exec.final_grid, report.plan.predicted);
        }
    }

    #[test]
    fn latency_is_data_independent() {
        // Same dims, different content: identical analysis cycles (the
        // paper's "latency correlates solely with the initial size").
        let target = Rect::centered(30, 30, 18, 18).unwrap();
        let empty = AtomGrid::new(30, 30).unwrap();
        let mut rng = seeded_rng(5);
        let random = AtomGrid::random(30, 30, 0.5, &mut rng);
        let accel = QrmAccelerator::new(AcceleratorConfig::paper());
        let a = accel.run(&empty, &target).unwrap();
        let b = accel.run(&random, &target).unwrap();
        assert_eq!(a.cycles.analysis(), b.cycles.analysis());
        // write-back differs (movement record count is data dependent)
    }

    #[test]
    fn scaling_is_moderate() {
        // Fig 7(a) FPGA curve: ~2.4x from size 10 to 90 (0.8 -> 1.9 us).
        let accel = QrmAccelerator::new(AcceleratorConfig::paper());
        let mut rng = seeded_rng(6);
        let t10 = {
            let g = AtomGrid::random(10, 10, 0.5, &mut rng);
            accel
                .run(&g, &Rect::centered(10, 10, 6, 6).unwrap())
                .unwrap()
                .time_us
        };
        let t90 = {
            let g = AtomGrid::random(90, 90, 0.5, &mut rng);
            accel
                .run(&g, &Rect::centered(90, 90, 54, 54).unwrap())
                .unwrap()
                .time_us
        };
        let ratio = t90 / t10;
        assert!(
            (1.5..8.0).contains(&ratio),
            "size-90/size-10 analysis ratio {ratio:.2} implausible"
        );
    }

    #[test]
    fn balanced_fills_headline_with_extended_config() {
        let mut rng = seeded_rng(31337);
        let mut filled = 0;
        let mut tried = 0;
        for _ in 0..6 {
            let grid = AtomGrid::random(50, 50, 0.5, &mut rng);
            if grid.atom_count() < 1000 {
                continue;
            }
            tried += 1;
            let target = Rect::centered(50, 50, 30, 30).unwrap();
            let report = QrmAccelerator::new(AcceleratorConfig::balanced())
                .run(&grid, &target)
                .unwrap();
            if report.plan.filled {
                filled += 1;
            }
        }
        assert!(tried >= 4);
        assert!(filled * 10 >= tried * 8, "filled {filled}/{tried}");
    }

    #[test]
    fn rearranger_trait_name() {
        assert_eq!(
            QrmAccelerator::new(AcceleratorConfig::paper()).name(),
            "QRM-FPGA (greedy)"
        );
    }
}

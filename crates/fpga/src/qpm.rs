//! The Quadrant Processing Module (paper §IV-B).
//!
//! One QPM owns one canonically-oriented quadrant. It alternates
//! row-wise and column-wise passes through the pipelined
//! [`ShiftUnit`] for a **static** number of
//! iterations (the hardware's pass schedule does not depend on data, which
//! is what makes the paper's latency "correlate solely with the initial
//! size of the array and the number of iterations", §V-B).
//!
//! Dataflow overlap: the column pass starts as soon as the row pass has
//! issued its last line — one new pass can begin every `Qw` cycles, while
//! each pass's own drain tail (`Qw` stages) overlaps the next pass. Total
//! compute for `P` passes is therefore `(P + 1) * Qw + pipeline
//! constants`, matching the paper's "2 x Qw plus the processing time of a
//! single row" per iteration.

use qrm_core::error::Error;
use qrm_core::geometry::{Axis, Rect};
use qrm_core::grid::AtomGrid;
use qrm_core::kernel::{plan_col_windows, plan_row_windows, KernelOutcome, KernelStrategy};

use crate::shift_unit::{LineJob, ShiftUnit};

/// QPM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpmConfig {
    /// Canonical target extent along rows.
    pub target_height: usize,
    /// Canonical target extent along columns.
    pub target_width: usize,
    /// Static iteration count (paper: 4).
    pub iterations: usize,
    /// Kernel strategy; `Greedy` is what the paper's hardware implements,
    /// `Balanced` models the extended datapath with the quota-planning
    /// scan in front of each row pass.
    pub strategy: KernelStrategy,
}

impl QpmConfig {
    /// Paper-faithful config: greedy kernel, 4 static iterations.
    pub const fn paper(target_height: usize, target_width: usize) -> Self {
        QpmConfig {
            target_height,
            target_width,
            iterations: 4,
            strategy: KernelStrategy::Greedy,
        }
    }
}

/// Timing of one pass inside the QPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTiming {
    /// Pass axis.
    pub axis: Axis,
    /// Cycle at which the pass starts issuing lines.
    pub start: u64,
    /// Cycle at which the last line retires.
    pub finish: u64,
    /// Extra planning cycles charged before the pass (balanced strategy).
    pub planning: u64,
}

/// Result of processing one quadrant.
#[derive(Debug, Clone)]
pub struct QpmReport {
    /// Functional outcome, bit-exact with the software kernel in
    /// hardware (static-iterations) mode.
    pub outcome: KernelOutcome,
    /// Per-pass timing.
    pub passes: Vec<PassTiming>,
    /// Total compute cycles (finish of the last pass).
    pub total_cycles: u64,
}

/// The quadrant processor.
///
/// ```
/// use qrm_fpga::qpm::{QpmConfig, QuadrantProcessor};
/// use qrm_core::grid::AtomGrid;
///
/// # fn main() -> Result<(), qrm_core::Error> {
/// let mut rng = qrm_core::loading::seeded_rng(4);
/// let quadrant = AtomGrid::random(25, 25, 0.5, &mut rng);
/// let qpm = QuadrantProcessor::new(QpmConfig::paper(15, 15));
/// let report = qpm.process(&quadrant)?;
/// // 8 passes of 25 lines each, plus the final drain.
/// assert!(report.total_cycles >= 8 * 25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuadrantProcessor {
    config: QpmConfig,
}

impl QuadrantProcessor {
    /// Creates a processor.
    pub fn new(config: QpmConfig) -> Self {
        QuadrantProcessor { config }
    }

    /// The processor's configuration.
    pub fn config(&self) -> &QpmConfig {
        &self.config
    }

    /// Extra cycles charged in front of a row pass for the balanced
    /// strategy's quota-planning scan: one streaming pass over the
    /// quadrant's column counters plus the floor scan.
    fn planning_cycles(&self, qh: usize, tw: usize) -> u64 {
        match self.config.strategy {
            KernelStrategy::Balanced => (qh + tw) as u64,
            _ => 0,
        }
    }

    /// Processes one canonical quadrant.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTarget`] when the target exceeds the
    /// quadrant extent.
    pub fn process(&self, quadrant: &AtomGrid) -> Result<QpmReport, Error> {
        let (qh, qw) = quadrant.dims();
        let (th, tw) = (self.config.target_height, self.config.target_width);
        if th > qh || tw > qw || th == 0 || tw == 0 {
            return Err(Error::InvalidTarget {
                reason: "target extent exceeds quadrant",
            });
        }
        let mut grid = quadrant.clone();
        let mut passes_out = Vec::new();
        let mut timings = Vec::new();
        let mut start: u64 = 0;

        for _ in 0..self.config.iterations {
            // Row pass.
            let planning = self.planning_cycles(qh, tw);
            start += planning;
            let windows = plan_row_windows(&grid, self.config.strategy, th, tw);
            let jobs: Vec<LineJob> = (0..qh)
                .map(|l| LineJob {
                    line: l,
                    bits: grid.row_bits(l).to_vec(),
                    window: windows.get(l).copied().unwrap_or((0, qw)),
                    enabled: true,
                })
                .collect();
            let trace = ShiftUnit::new(qw).run(Axis::Row, &jobs);
            for (line, bits) in trace.out_lines() {
                grid.set_row_bits(*line, bits);
            }
            passes_out.push(trace.to_local_pass());
            timings.push(PassTiming {
                axis: Axis::Row,
                start,
                finish: start + trace.cycles(),
                planning,
            });
            // The next pass can begin once all lines are issued.
            start += trace.issue_cycles();

            // Column pass (columns streamed as rows).
            let windows = plan_col_windows(self.config.strategy, qh, qw, th, tw);
            let gt = grid.transpose();
            let jobs: Vec<LineJob> = (0..qw)
                .map(|l| LineJob {
                    line: l,
                    bits: gt.row_bits(l).to_vec(),
                    window: windows.get(l).copied().unwrap_or((0, qh)),
                    enabled: true,
                })
                .collect();
            let trace = ShiftUnit::new(qh).run(Axis::Col, &jobs);
            let mut gt_new = gt.clone();
            for (line, bits) in trace.out_lines() {
                gt_new.set_row_bits(*line, bits);
            }
            grid = gt_new.transpose();
            passes_out.push(trace.to_local_pass());
            timings.push(PassTiming {
                axis: Axis::Col,
                start,
                finish: start + trace.cycles(),
                planning: 0,
            });
            start += trace.issue_cycles();
        }

        let total_cycles = timings.iter().map(|t| t.finish).max().unwrap_or(0);
        let target = Rect::new(0, 0, th, tw);
        let filled = grid.is_filled(&target)?;
        Ok(QpmReport {
            outcome: KernelOutcome {
                passes: passes_out,
                final_grid: grid,
                iterations: self.config.iterations,
                filled,
            },
            passes: timings,
            total_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::kernel::{KernelConfig, ShiftKernel};
    use qrm_core::loading::seeded_rng;

    fn sw_outcome(
        quadrant: &AtomGrid,
        th: usize,
        tw: usize,
        iterations: usize,
        strategy: KernelStrategy,
    ) -> KernelOutcome {
        ShiftKernel::new(
            KernelConfig::new(th, tw)
                .with_strategy(strategy)
                .with_max_iterations(iterations)
                .with_static_iterations(true),
        )
        .run(quadrant)
        .unwrap()
    }

    #[test]
    fn functionally_identical_to_software_kernel() {
        let mut rng = seeded_rng(42);
        for strategy in [KernelStrategy::Greedy, KernelStrategy::Balanced] {
            for _ in 0..6 {
                let q = AtomGrid::random(12, 12, 0.5, &mut rng);
                let hw = QuadrantProcessor::new(QpmConfig {
                    target_height: 7,
                    target_width: 7,
                    iterations: 4,
                    strategy,
                })
                .process(&q)
                .unwrap();
                let sw = sw_outcome(&q, 7, 7, 4, strategy);
                assert_eq!(hw.outcome.passes, sw.passes, "{strategy:?} passes");
                assert_eq!(hw.outcome.final_grid, sw.final_grid, "{strategy:?} grid");
                assert_eq!(hw.outcome.filled, sw.filled);
            }
        }
    }

    #[test]
    fn timing_matches_dataflow_formula() {
        // Greedy, square quadrant: P passes of Qw lines each; pass p
        // starts at p*Qw and finishes at p*Qw + 2*Qw.
        let mut rng = seeded_rng(5);
        let q = AtomGrid::random(20, 20, 0.5, &mut rng);
        let report = QuadrantProcessor::new(QpmConfig::paper(12, 12))
            .process(&q)
            .unwrap();
        let qw = 20u64;
        let p = report.passes.len() as u64;
        assert_eq!(p, 8);
        for (i, t) in report.passes.iter().enumerate() {
            assert_eq!(t.start, i as u64 * qw, "pass {i} start");
            assert_eq!(t.finish, i as u64 * qw + 2 * qw, "pass {i} finish");
        }
        assert_eq!(report.total_cycles, (p + 1) * qw);
    }

    #[test]
    fn balanced_charges_planning_cycles() {
        let mut rng = seeded_rng(6);
        let q = AtomGrid::random(10, 10, 0.5, &mut rng);
        let greedy = QuadrantProcessor::new(QpmConfig {
            target_height: 6,
            target_width: 6,
            iterations: 2,
            strategy: KernelStrategy::Greedy,
        })
        .process(&q)
        .unwrap();
        let balanced = QuadrantProcessor::new(QpmConfig {
            target_height: 6,
            target_width: 6,
            iterations: 2,
            strategy: KernelStrategy::Balanced,
        })
        .process(&q)
        .unwrap();
        assert!(balanced.total_cycles > greedy.total_cycles);
        assert_eq!(
            balanced.total_cycles - greedy.total_cycles,
            2 * (10 + 6) as u64
        );
    }

    #[test]
    fn rejects_oversized_target() {
        let q = AtomGrid::new(5, 5).unwrap();
        assert!(QuadrantProcessor::new(QpmConfig::paper(6, 3))
            .process(&q)
            .is_err());
    }

    #[test]
    fn static_iterations_do_not_depend_on_data() {
        // An empty quadrant and a full one take identical cycle counts.
        let empty = AtomGrid::new(16, 16).unwrap();
        let mut rng = seeded_rng(8);
        let random = AtomGrid::random(16, 16, 0.5, &mut rng);
        let cfg = QpmConfig::paper(8, 8);
        let a = QuadrantProcessor::new(cfg).process(&empty).unwrap();
        let b = QuadrantProcessor::new(cfg).process(&random).unwrap();
        assert_eq!(a.total_cycles, b.total_cycles);
    }
}

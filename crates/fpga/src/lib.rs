//! # qrm-fpga — cycle-accurate model of the QRM rearrangement accelerator
//!
//! This crate reproduces the FPGA design of paper §IV (Fig. 5/6) as a
//! cycle-level simulator:
//!
//! * [`shift_unit`] — the pipelined Shift Kernel of Fig. 6, modelled
//!   register-by-register with initiation interval 1 (a new line enters
//!   every clock cycle). Its command stream is bit-exact with the
//!   software kernel in [`qrm_core::kernel`].
//! * [`qpm`] — the Quadrant Processing Module: alternating row/column
//!   passes over one canonical quadrant, with dataflow overlap between
//!   passes (the column pass starts as soon as the row pass has streamed
//!   its last line).
//! * [`ldm`] / [`ocm`] — Load Data Module (DMA in + quadrant flips) and
//!   Output Concatenation Module (Row Combination Unit + DMA out).
//! * [`accelerator`] — the full four-quadrant dataflow top; produces both
//!   a functional [`Plan`](qrm_core::scheduler::Plan) and a cycle
//!   breakdown at a configurable clock (250 MHz by default).
//! * [`latency`] — closed-form latency model cross-checked against the
//!   simulator (used for fast parameter sweeps).
//! * [`resources`] — LUT/FF/BRAM cost model on the RFSoC device budget,
//!   calibrated to the utilisation anchors the paper reports (Fig. 8).
//!
//! The substitution rationale (simulator instead of silicon) is recorded
//! in the workspace `DESIGN.md`: the paper's reported numbers are cycle
//! counts at a fixed 250 MHz clock, so simulating the same pipeline at
//! cycle granularity reproduces the measured quantity.
//!
//! ## Quick example
//!
//! ```
//! use qrm_fpga::accelerator::{AcceleratorConfig, QrmAccelerator};
//! use qrm_core::geometry::Rect;
//! use qrm_core::grid::AtomGrid;
//!
//! # fn main() -> Result<(), qrm_core::Error> {
//! let mut rng = qrm_core::loading::seeded_rng(1);
//! let grid = AtomGrid::random(50, 50, 0.5, &mut rng);
//! let target = Rect::centered(50, 50, 30, 30)?;
//!
//! let accel = QrmAccelerator::new(AcceleratorConfig::paper());
//! let report = accel.run(&grid, &target)?;
//! // Headline regime: schedule analysis in about a microsecond.
//! assert!(report.time_us < 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerator;
pub mod clock;
pub mod fifo;
pub mod latency;
pub mod ldm;
pub mod memory;
pub mod ocm;
pub mod qpm;
pub mod resources;
pub mod shift_unit;
pub mod stream;

//! DDR memory model.
//!
//! The PS and PL communicate through DDR (paper §IV-A): the host writes
//! the detection bitfield, the accelerator reads it, and movement records
//! are written back. The model charges a first-access latency plus a
//! sustained-bandwidth term; it is intentionally simple — the paper's
//! latency is dominated by the compute pipeline, and this model's role is
//! to make the I/O contribution explicit and tunable.

/// DDR access-cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DdrModel {
    /// First-word read latency in PL cycles.
    pub read_latency_cycles: u64,
    /// First-word write latency in PL cycles.
    pub write_latency_cycles: u64,
    /// Sustained bandwidth in bits per PL cycle.
    pub bits_per_cycle: f64,
}

impl DdrModel {
    /// Plausible RFSoC DDR4 numbers at a 250 MHz fabric clock: ~100 ns
    /// first access (25 cycles) and 1024 bits/cycle sustained through the
    /// wide AXI port.
    pub const fn typical() -> Self {
        DdrModel {
            read_latency_cycles: 25,
            write_latency_cycles: 15,
            bits_per_cycle: 1024.0,
        }
    }

    /// Cycles to read a payload of `bits`.
    pub fn read_cycles(&self, bits: usize) -> u64 {
        if bits == 0 {
            return 0;
        }
        self.read_latency_cycles + (bits as f64 / self.bits_per_cycle).ceil() as u64
    }

    /// Cycles to write a payload of `bits`.
    pub fn write_cycles(&self, bits: usize) -> u64 {
        if bits == 0 {
            return 0;
        }
        self.write_latency_cycles + (bits as f64 / self.bits_per_cycle).ceil() as u64
    }
}

impl Default for DdrModel {
    fn default() -> Self {
        DdrModel::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_payload_is_free() {
        let m = DdrModel::typical();
        assert_eq!(m.read_cycles(0), 0);
        assert_eq!(m.write_cycles(0), 0);
    }

    #[test]
    fn latency_plus_bandwidth() {
        let m = DdrModel {
            read_latency_cycles: 10,
            write_latency_cycles: 5,
            bits_per_cycle: 100.0,
        };
        assert_eq!(m.read_cycles(1), 11);
        assert_eq!(m.read_cycles(250), 13);
        assert_eq!(m.write_cycles(1000), 15);
    }

    #[test]
    fn paper_bitfield_read_is_cheap() {
        // 50x50 bitfield: 2500 bits -> a handful of cycles beyond latency.
        let m = DdrModel::typical();
        assert!(m.read_cycles(2500) < 30);
    }
}

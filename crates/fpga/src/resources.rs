//! FPGA resource-utilisation model (paper Fig. 8).
//!
//! A structural cost model of the accelerator on the paper's RFSoC
//! device (Zynq UltraScale+ ZU49DR class: 425 280 LUTs, 850 560
//! flip-flops, 1 080 BRAM36 blocks). Costs are per-module closed forms in
//! the array size `W`:
//!
//! * each of the four QPM shift datapaths carries per-line registers,
//!   hole-detect logic and command encoders that grow **linearly** with
//!   the quadrant side (HLS maps the deep shift chains onto SRL LUT
//!   primitives, keeping FF growth linear rather than quadratic);
//! * the integration half (LDM stream fan-out, wide FIFOs, Row
//!   Combination Unit, AXI plumbing) is the other ~half of the budget,
//!   matching the paper's observation that "only about half of the
//!   resources are occupied by the four QPM";
//! * buffers sit in BRAM whose block count is governed by port width, not
//!   array size, hence the flat BRAM curve of Fig. 8.
//!
//! Constants are calibrated to the paper's anchors: 6.31 % LUT and
//! 6.19 % FF at `W = 90`, ~1 % at `W = 10`, BRAM ≈ 2.8 % throughout.

/// An FPGA device budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Total 6-input LUTs.
    pub luts: u64,
    /// Total flip-flops.
    pub ffs: u64,
    /// Total BRAM36 blocks.
    pub bram36: u64,
}

impl Device {
    /// The paper's RFSoC-class device.
    pub const ZU49DR: Device = Device {
        name: "Zynq UltraScale+ RFSoC ZU49DR",
        luts: 425_280,
        ffs: 850_560,
        bram36: 1_080,
    };
}

/// Absolute and relative utilisation of one resource class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Usage {
    /// Absolute count used.
    pub used: u64,
    /// Percentage of the device budget.
    pub percent: f64,
}

/// Utilisation of a synthesised accelerator instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Array size the instance was generated for.
    pub array_size: usize,
    /// LUT usage.
    pub lut: Usage,
    /// Flip-flop usage.
    pub ff: Usage,
    /// BRAM36 usage.
    pub bram: Usage,
}

/// Per-module cost breakdown (absolute counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleCosts {
    /// One quadrant processing module.
    pub qpm_lut: u64,
    /// One quadrant processing module.
    pub qpm_ff: u64,
    /// Load data module + stream fan-out.
    pub ldm_lut: u64,
    /// Load data module + stream fan-out.
    pub ldm_ff: u64,
    /// Output concatenation + row combination.
    pub ocm_lut: u64,
    /// Output concatenation + row combination.
    pub ocm_ff: u64,
    /// AXI/control plumbing.
    pub control_lut: u64,
    /// AXI/control plumbing.
    pub control_ff: u64,
}

/// Structural resource model.
#[derive(Debug, Clone, Copy)]
pub struct ResourceModel {
    device: Device,
}

// Calibration constants (see module docs).
const QPM_LUT_FIXED: u64 = 180; // control FSM + hole detect
const QPM_LUT_PER_COL: u64 = 70; // shift chain (SRL) + mux per column
const QPM_FF_FIXED: u64 = 160; // stage/control registers
const QPM_FF_PER_COL: u64 = 143; // line, column and command registers
const INTEGRATION_LUT_FIXED: u64 = 650; // LDM + OCM + AXI fixed logic
const INTEGRATION_LUT_PER_W: u64 = 141; // wide datapath muxing per site column
const INTEGRATION_FF_FIXED: u64 = 2348;
const INTEGRATION_FF_PER_W: u64 = 266;
const BRAM_INPUT: u64 = 8; // 1024-bit input stream buffer
const BRAM_PER_QPM: u64 = 2; // column + command buffers
const BRAM_OUTPUT: u64 = 8; // movement-record FIFO
const BRAM_MISC: u64 = 6; // DMA descriptors, control

impl ResourceModel {
    /// A model on the paper's device.
    pub fn new() -> Self {
        ResourceModel {
            device: Device::ZU49DR,
        }
    }

    /// A model on a custom device budget.
    pub fn on_device(device: Device) -> Self {
        ResourceModel { device }
    }

    /// The device budget used.
    pub fn device(&self) -> Device {
        self.device
    }

    /// Per-module absolute costs for a `size x size` instance.
    pub fn module_costs(&self, size: usize) -> ModuleCosts {
        let qw = (size / 2).max(1) as u64;
        let w = size as u64;
        ModuleCosts {
            qpm_lut: QPM_LUT_FIXED + QPM_LUT_PER_COL * qw,
            qpm_ff: QPM_FF_FIXED + QPM_FF_PER_COL * qw,
            ldm_lut: INTEGRATION_LUT_FIXED / 2 + INTEGRATION_LUT_PER_W * w / 2,
            ldm_ff: INTEGRATION_FF_FIXED / 2 + INTEGRATION_FF_PER_W * w / 2,
            ocm_lut: INTEGRATION_LUT_FIXED / 4 + INTEGRATION_LUT_PER_W * w / 2,
            ocm_ff: INTEGRATION_FF_FIXED / 4 + INTEGRATION_FF_PER_W * w / 2,
            control_lut: INTEGRATION_LUT_FIXED / 4,
            control_ff: INTEGRATION_FF_FIXED / 4,
        }
    }

    /// Total utilisation for a `size x size` instance.
    ///
    /// ```
    /// use qrm_fpga::resources::ResourceModel;
    /// let u = ResourceModel::new().utilization(90);
    /// // Fig. 8 anchors: ~6.31% LUT, ~6.19% FF at 90x90.
    /// assert!((u.lut.percent - 6.31).abs() < 0.35, "{}", u.lut.percent);
    /// assert!((u.ff.percent - 6.19).abs() < 0.35, "{}", u.ff.percent);
    /// ```
    pub fn utilization(&self, size: usize) -> Utilization {
        let m = self.module_costs(size);
        let lut_used = 4 * m.qpm_lut + m.ldm_lut + m.ocm_lut + m.control_lut;
        let ff_used = 4 * m.qpm_ff + m.ldm_ff + m.ocm_ff + m.control_ff;
        let bram_used = BRAM_INPUT + 4 * BRAM_PER_QPM + BRAM_OUTPUT + BRAM_MISC;
        Utilization {
            array_size: size,
            lut: self.usage(lut_used, self.device.luts),
            ff: self.usage(ff_used, self.device.ffs),
            bram: self.usage(bram_used, self.device.bram36),
        }
    }

    fn usage(&self, used: u64, total: u64) -> Usage {
        Usage {
            used,
            percent: used as f64 / total as f64 * 100.0,
        }
    }
}

impl Default for ResourceModel {
    fn default() -> Self {
        ResourceModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_at_90() {
        let u = ResourceModel::new().utilization(90);
        assert!((u.lut.percent - 6.31).abs() < 0.35, "lut {}", u.lut.percent);
        assert!((u.ff.percent - 6.19).abs() < 0.35, "ff {}", u.ff.percent);
    }

    #[test]
    fn lut_ff_grow_linearly() {
        let model = ResourceModel::new();
        let sizes = [10usize, 30, 50, 70, 90];
        let luts: Vec<u64> = sizes
            .iter()
            .map(|&s| model.utilization(s).lut.used)
            .collect();
        let ffs: Vec<u64> = sizes
            .iter()
            .map(|&s| model.utilization(s).ff.used)
            .collect();
        // constant first differences
        for w in luts.windows(3) {
            assert_eq!(w[1] - w[0], w[2] - w[1]);
        }
        for w in ffs.windows(3) {
            assert_eq!(w[1] - w[0], w[2] - w[1]);
        }
        // FF increases faster than LUT (paper: "FF increasing slightly
        // faster than LUT") in absolute terms.
        assert!(ffs[4] - ffs[0] > luts[4] - luts[0]);
    }

    #[test]
    fn lut_and_ff_percent_curves_nearly_overlap() {
        // Fig. 8 shows the LUT and FF percentage curves riding on top of
        // each other across the whole sweep.
        let model = ResourceModel::new();
        for size in [10usize, 30, 50, 70, 90] {
            let u = model.utilization(size);
            assert!(
                (u.lut.percent - u.ff.percent).abs() < 0.5,
                "size {size}: lut {} vs ff {}",
                u.lut.percent,
                u.ff.percent
            );
        }
    }

    #[test]
    fn bram_is_flat() {
        let model = ResourceModel::new();
        let b30 = model.utilization(30).bram;
        let b90 = model.utilization(90).bram;
        assert_eq!(b30.used, b90.used);
        assert!((b30.percent - 2.8).abs() < 0.5, "bram {}", b30.percent);
    }

    #[test]
    fn small_instance_is_about_one_percent() {
        let u = ResourceModel::new().utilization(10);
        assert!(u.lut.percent < 2.0, "lut {}", u.lut.percent);
        assert!(u.ff.percent < 2.0, "ff {}", u.ff.percent);
    }

    #[test]
    fn qpms_are_about_half_the_fabric_cost() {
        // Paper: "only about half of the resources are occupied by the
        // four QPM".
        let model = ResourceModel::new();
        for size in [30usize, 50, 90] {
            let m = model.module_costs(size);
            let u = model.utilization(size);
            let qpm_lut = 4 * m.qpm_lut;
            let frac = qpm_lut as f64 / u.lut.used as f64;
            assert!((0.3..0.7).contains(&frac), "size {size}: frac {frac:.2}");
        }
    }

    #[test]
    fn custom_device() {
        let tiny = Device {
            name: "tiny",
            luts: 1000,
            ffs: 1000,
            bram36: 10,
        };
        let u = ResourceModel::on_device(tiny).utilization(10);
        assert!(u.lut.percent > 100.0); // does not fit, honestly reported
    }
}

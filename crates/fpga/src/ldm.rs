//! The Load Data Module (paper §IV-B).
//!
//! The LDM streams the detection bitfield out of DDR over the 1024-bit
//! AXI link and feeds four Load Vector units that carve the array into
//! quadrants, applying the canonical flips on the fly ("the flip
//! operation is automatically performed to prepare the data"). Flips are
//! pure wiring in hardware and cost no extra cycles; the module's latency
//! is the DMA transfer.

use qrm_core::error::Error;
use qrm_core::grid::AtomGrid;
use qrm_core::quadrant::QuadrantMap;

use crate::memory::DdrModel;
use crate::stream::AxiStream;

/// LDM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LdmConfig {
    /// AXI link carrying the bitfield.
    pub axi: AxiStream,
    /// DDR the bitfield is read from.
    pub ddr: DdrModel,
}

/// Result of loading one frame.
#[derive(Debug, Clone)]
pub struct LdmReport {
    /// Canonically-oriented quadrant grids (NW, NE, SW, SE).
    pub quadrants: [AtomGrid; 4],
    /// Cycles spent on the input path (DDR first-access + streaming).
    pub cycles: u64,
    /// Payload bits transferred.
    pub bits: usize,
}

/// The load-data module.
///
/// ```
/// use qrm_fpga::ldm::{LdmConfig, LoadDataModule};
/// use qrm_core::grid::AtomGrid;
/// use qrm_core::quadrant::QuadrantMap;
///
/// # fn main() -> Result<(), qrm_core::Error> {
/// let mut rng = qrm_core::loading::seeded_rng(2);
/// let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
/// let map = QuadrantMap::new(20, 20)?;
/// let report = LoadDataModule::new(LdmConfig::default()).load(&grid, &map)?;
/// assert_eq!(report.bits, 400);
/// assert_eq!(report.quadrants[0].dims(), (10, 10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoadDataModule {
    config: LdmConfig,
}

impl LoadDataModule {
    /// Creates a module.
    pub fn new(config: LdmConfig) -> Self {
        LoadDataModule { config }
    }

    /// Input-path cycles and payload bits for streaming a
    /// `height x width` bitfield, without performing the split — used
    /// when the quadrant decomposition is already shared via
    /// [`qrm_core::engine::decompose`] (the flips are free wiring, so
    /// the timing depends only on the frame size).
    pub fn stream_timing(&self, height: usize, width: usize) -> (u64, usize) {
        let bits = height * width;
        let cycles = self.config.ddr.read_latency_cycles + self.config.axi.transfer_cycles(bits);
        (cycles, bits)
    }

    /// Streams `grid` in and splits it into canonical quadrants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `grid` does not match
    /// `map`.
    pub fn load(&self, grid: &AtomGrid, map: &QuadrantMap) -> Result<LdmReport, Error> {
        let (cycles, bits) = self.stream_timing(grid.height(), grid.width());
        let quadrants = map.split(grid)?;
        Ok(LdmReport {
            quadrants,
            cycles,
            bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn load_splits_and_counts_cycles() {
        let mut rng = seeded_rng(1);
        let grid = AtomGrid::random(50, 50, 0.5, &mut rng);
        let map = QuadrantMap::new(50, 50).unwrap();
        let report = LoadDataModule::new(LdmConfig::default())
            .load(&grid, &map)
            .unwrap();
        assert_eq!(report.bits, 2500);
        // 2500 bits over 1024-bit beats: 3 beats + 8 setup + 25 DDR.
        assert_eq!(report.cycles, 25 + 8 + 3);
        let total: usize = report.quadrants.iter().map(AtomGrid::atom_count).sum();
        assert_eq!(total, grid.atom_count());
    }

    #[test]
    fn dimension_mismatch_propagates() {
        let grid = AtomGrid::new(10, 10).unwrap();
        let map = QuadrantMap::new(20, 20).unwrap();
        assert!(LoadDataModule::new(LdmConfig::default())
            .load(&grid, &map)
            .is_err());
    }
}

//! Closed-form latency model of the accelerator.
//!
//! Derived directly from the dataflow structure (see [`crate::qpm`]):
//! for a `W x W` array with quadrant side `Qw = W / 2` and `I` static
//! iterations, the quadrant pipelines take `(2 I + 1) * Qw` cycles
//! (each of the `2 I` passes issues `Qw` lines back-to-back, plus one
//! final `Qw + Qw`-cycle drain that overlaps all but the last pass), the
//! balanced strategy adds an `(Qh + Tw)`-cycle planning scan per
//! iteration, and control/DMA/combination terms are size-dependent
//! constants. The model is cross-checked cycle-exact against the
//! simulator in this module's tests and powers the fast sweeps in
//! `qrm-bench`.

use qrm_core::kernel::KernelStrategy;

use crate::accelerator::AcceleratorConfig;

/// Closed-form latency predictor for square arrays.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    config: AcceleratorConfig,
}

impl LatencyModel {
    /// Builds a model matching an accelerator configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        LatencyModel { config }
    }

    /// Predicted analysis cycles for a `size x size` array with a
    /// centred even target of `target x target` sites.
    ///
    /// # Panics
    ///
    /// Panics for odd `size` (QRM requires even arrays).
    pub fn analysis_cycles(&self, size: usize, target: usize) -> u64 {
        assert!(size.is_multiple_of(2), "array size must be even");
        let qw = (size / 2) as u64;
        let tw = (target / 2) as u64;
        let iters = self.config.iterations as u64;
        let planning = match self.config.strategy {
            KernelStrategy::Balanced => iters * (qw + tw),
            _ => 0,
        };
        let compute = (2 * iters + 1) * qw + planning;
        let input = self.config.ldm.ddr.read_latency_cycles
            + self.config.ldm.axi.transfer_cycles(size * size);
        self.config.control_overhead_cycles + input + compute + self.config.ocm.combine_tail_cycles
    }

    /// Predicted analysis latency in microseconds.
    pub fn analysis_us(&self, size: usize, target: usize) -> f64 {
        self.config.clock.us(self.analysis_cycles(size, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::QrmAccelerator;
    use qrm_core::geometry::Rect;
    use qrm_core::grid::AtomGrid;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn matches_simulator_cycle_exact() {
        let mut rng = seeded_rng(9);
        for cfg in [AcceleratorConfig::paper(), AcceleratorConfig::balanced()] {
            let model = LatencyModel::new(cfg);
            let accel = QrmAccelerator::new(cfg);
            for size in [10usize, 20, 30, 50] {
                let target = (size * 3 / 5) & !1; // even ~60%
                let grid = AtomGrid::random(size, size, 0.5, &mut rng);
                let rect = Rect::centered(size, size, target, target).unwrap();
                let report = accel.run(&grid, &rect).unwrap();
                let predicted = model.analysis_cycles(size, target);
                if cfg.strategy == KernelStrategy::Balanced {
                    // Balanced planning cycles are charged per iteration in
                    // both paths; still exact.
                    assert_eq!(predicted, report.cycles.analysis(), "balanced size {size}");
                } else {
                    assert_eq!(predicted, report.cycles.analysis(), "size {size}");
                }
            }
        }
    }

    #[test]
    fn paper_headline_prediction() {
        let model = LatencyModel::new(AcceleratorConfig::paper());
        let us = model.analysis_us(50, 30);
        assert!((0.5..2.0).contains(&us), "headline {us:.2} us");
    }

    #[test]
    fn growth_is_linear_in_size() {
        let model = LatencyModel::new(AcceleratorConfig::paper());
        let t = |s: usize| model.analysis_cycles(s, (s * 3 / 5) & !1);
        let d1 = t(50) - t(30);
        let d2 = t(70) - t(50);
        // constant first differences up to DMA-beat granularity
        assert!(d1.abs_diff(d2) <= 4, "d1 {d1} d2 {d2}");
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_size_panics() {
        let _ = LatencyModel::new(AcceleratorConfig::paper()).analysis_cycles(9, 4);
    }
}

//! Cycle-accurate model of the pipelined Shift Kernel (paper Fig. 6).
//!
//! The unit processes one *pass* over a set of bit-vector lines. Lines
//! enter the pipeline one per clock cycle (initiation interval 1) and
//! traverse `line_len` stages; stage `k` inspects the line's current
//! least-significant bit — logically, array position `k` — and
//!
//! * if the position is an eligible hole (inside the line's shift window,
//!   empty, with atoms above it), issues a **shift command** and advances
//!   the suffix register one extra position ("we shift the entire row by
//!   one to the right to check the next bit");
//! * writes the resulting bit into the **column buffer** for position `k`
//!   (the row-stream → column-stream transposition of Fig. 6);
//! * records the command bit into the **shift-commands buffer**.
//!
//! Because each stage takes exactly one cycle, the emission time of every
//! command is statically known (line `l`, stage `k` → cycle `l + k`),
//! which is what lets the Row Combination Unit merge quadrant streams
//! without handshaking (§IV-C). The per-line `sen` enable and the
//! `(floor, limit)` windows realise the paper's manual-control mechanism
//! and the balanced-strategy parking floors.
//!
//! The functional output is bit-exact with
//! [`qrm_core::kernel::run_pass`]; the unit additionally reports exact
//! cycle counts and an optional per-cycle trace.

use qrm_core::bitline;
use qrm_core::geometry::Axis;
use qrm_core::kernel::{LocalPass, LocalShift, LocalWave};

/// One line of work for a pass.
#[derive(Debug, Clone)]
pub struct LineJob {
    /// Line index (row or column number in the quadrant).
    pub line: usize,
    /// Line contents, little-endian bit-packed.
    pub bits: Vec<u64>,
    /// `(floor, limit)` hole window; shifts fire only at positions within.
    pub window: (usize, usize),
    /// The `sen` enable: a disabled line passes through unchanged.
    pub enabled: bool,
}

/// One pipeline event, for waveform-style inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle of the event.
    pub cycle: u64,
    /// Line being processed.
    pub line: usize,
    /// Pipeline stage (= scan position).
    pub stage: usize,
    /// Whether a shift command fired.
    pub fired: bool,
    /// Bit written to the column buffer.
    pub column_bit: bool,
}

/// Result of streaming one pass through the unit.
#[derive(Debug, Clone)]
pub struct PassTrace {
    axis: Axis,
    line_len: usize,
    /// `commands[k]` = shifts issued at scan position `k`.
    commands: Vec<Vec<LocalShift>>,
    /// Final line contents, in input order.
    out_lines: Vec<(usize, Vec<u64>)>,
    /// Total cycles from first line in to last line retired.
    cycles: u64,
    /// Cycles spent issuing lines (= number of lines; II = 1).
    issue_cycles: u64,
    events: Vec<TraceEvent>,
}

impl PassTrace {
    /// Total simulation cycles for the pass.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Line-issue cycles (one line per cycle).
    pub fn issue_cycles(&self) -> u64 {
        self.issue_cycles
    }

    /// Pipeline depth (= line length).
    pub fn depth(&self) -> usize {
        self.line_len
    }

    /// Final line contents keyed by line index, in input order.
    pub fn out_lines(&self) -> &[(usize, Vec<u64>)] {
        &self.out_lines
    }

    /// Per-cycle trace events (empty unless tracing was enabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total shift commands issued.
    pub fn shift_count(&self) -> usize {
        self.commands.iter().map(Vec::len).sum()
    }

    /// Converts the command stream into the kernel's [`LocalPass`] form:
    /// wave `k` holds the commands of scan position `k`, with trailing
    /// empty waves trimmed (identical to the software kernel).
    pub fn to_local_pass(&self) -> LocalPass {
        let mut waves: Vec<LocalWave> = self
            .commands
            .iter()
            .map(|shifts| LocalWave {
                shifts: shifts.clone(),
            })
            .collect();
        while waves.last().is_some_and(LocalWave::is_empty) {
            waves.pop();
        }
        LocalPass {
            axis: self.axis,
            waves,
        }
    }
}

/// The pipelined shift unit.
///
/// ```
/// use qrm_fpga::shift_unit::{LineJob, ShiftUnit};
/// use qrm_core::geometry::Axis;
///
/// // Two 4-bit lines: ".#.#" and "..##" (LSB = position 0).
/// let jobs = vec![
///     LineJob { line: 0, bits: vec![0b1010], window: (0, 4), enabled: true },
///     LineJob { line: 1, bits: vec![0b1100], window: (0, 4), enabled: true },
/// ];
/// let unit = ShiftUnit::new(4);
/// let trace = unit.run(Axis::Row, &jobs);
/// // II=1 pipeline: 2 lines + 4 stages.
/// assert_eq!(trace.cycles(), 2 + 4);
/// assert!(trace.shift_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ShiftUnit {
    line_len: usize,
    trace_events: bool,
}

/// A line in flight through the pipeline.
#[derive(Debug, Clone)]
struct InFlight {
    line: usize,
    /// Suffix register: bit 0 is the bit at the current stage position.
    reg: Vec<u64>,
    /// Remaining width held in `reg`.
    remaining: usize,
    window: (usize, usize),
    enabled: bool,
    /// Finalised output bits.
    out: Vec<u64>,
}

impl ShiftUnit {
    /// Creates a unit for lines of `line_len` positions.
    ///
    /// # Panics
    ///
    /// Panics when `line_len` is zero.
    pub fn new(line_len: usize) -> Self {
        assert!(line_len > 0, "line length must be positive");
        ShiftUnit {
            line_len,
            trace_events: false,
        }
    }

    /// Enables per-cycle trace-event collection.
    #[must_use]
    pub fn with_trace(mut self, enabled: bool) -> Self {
        self.trace_events = enabled;
        self
    }

    /// Streams `jobs` through the pipeline along `axis`, one line per
    /// cycle, and returns the full pass trace.
    ///
    /// # Panics
    ///
    /// Panics when a job's bit vector is shorter than the line length.
    pub fn run(&self, axis: Axis, jobs: &[LineJob]) -> PassTrace {
        let depth = self.line_len;
        let words = bitline::words_for(depth);
        let mut commands: Vec<Vec<LocalShift>> = vec![Vec::new(); depth];
        let mut out_lines: Vec<(usize, Vec<u64>)> = Vec::with_capacity(jobs.len());
        let mut events = Vec::new();

        // stage k at index k; None = bubble.
        let mut pipeline: Vec<Option<InFlight>> = vec![None; depth];
        let mut next_in = 0usize;
        let mut cycles: u64 = 0;
        let mut retired = 0usize;

        while retired < jobs.len() {
            // Advance stages from the back so each line moves one stage
            // per cycle.
            for k in (0..depth).rev() {
                let Some(mut fl) = pipeline[k].take() else {
                    continue;
                };
                // Stage k logic: `reg` bit 0 is array position k.
                debug_assert_eq!(fl.remaining, depth - k);
                let (floor, limit) = fl.window;
                let occupied = bitline::get(&fl.reg, 0);
                let atoms_above = bitline::highest_one(&fl.reg).is_some_and(|t| t >= 1);
                let fire = fl.enabled && k >= floor && k < limit && !occupied && atoms_above;
                if fire {
                    commands[k].push(LocalShift {
                        line: fl.line,
                        hole: k,
                    });
                    // Suffix shift: position k takes the old k+1 value;
                    // the valid span k..depth is unchanged (top fills 0).
                    shift_reg(&mut fl.reg);
                }
                let column_bit = bitline::get(&fl.reg, 0);
                if column_bit {
                    bitline::set(&mut fl.out, k, true);
                }
                if self.trace_events {
                    events.push(TraceEvent {
                        cycle: cycles,
                        line: fl.line,
                        stage: k,
                        fired: fire,
                        column_bit,
                    });
                }
                // Consume the inspected position and move to stage k+1.
                shift_reg(&mut fl.reg);
                fl.remaining -= 1;
                if k + 1 < depth {
                    pipeline[k + 1] = Some(fl);
                } else {
                    out_lines.push((fl.line, fl.out));
                    retired += 1;
                }
            }
            // Issue a new line into stage 0 (II = 1).
            if next_in < jobs.len() && pipeline[0].is_none() {
                let job = &jobs[next_in];
                assert!(
                    job.bits.len() >= words,
                    "line {} bits shorter than line length",
                    job.line
                );
                pipeline[0] = Some(InFlight {
                    line: job.line,
                    reg: job.bits.clone(),
                    remaining: depth,
                    window: job.window,
                    enabled: job.enabled,
                    out: vec![0u64; words],
                });
                next_in += 1;
            }
            cycles += 1;
        }

        PassTrace {
            axis,
            line_len: depth,
            commands,
            out_lines,
            cycles,
            issue_cycles: jobs.len() as u64,
            events,
        }
    }
}

/// Shifts a multi-word register right by one bit.
fn shift_reg(reg: &mut [u64]) {
    let n = reg.len();
    for i in 0..n {
        let next = if i + 1 < n { reg[i + 1] } else { 0 };
        reg[i] = (reg[i] >> 1) | (next << 63);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::grid::AtomGrid;
    use qrm_core::kernel::{plan_col_windows, plan_row_windows, run_pass, KernelStrategy};
    use qrm_core::loading::seeded_rng;

    fn jobs_from_grid(g: &AtomGrid, windows: &[(usize, usize)]) -> Vec<LineJob> {
        (0..g.height())
            .map(|l| LineJob {
                line: l,
                bits: g.row_bits(l).to_vec(),
                window: windows.get(l).copied().unwrap_or((0, g.width())),
                enabled: true,
            })
            .collect()
    }

    fn grid_from_out(height: usize, width: usize, out: &[(usize, Vec<u64>)]) -> AtomGrid {
        let mut g = AtomGrid::new(height, width).unwrap();
        for (line, bits) in out {
            g.set_row_bits(*line, bits);
        }
        g
    }

    #[test]
    fn single_line_compaction() {
        let jobs = vec![LineJob {
            line: 0,
            bits: vec![0b10110],
            window: (0, 5),
            enabled: true,
        }];
        let trace = ShiftUnit::new(5).run(Axis::Row, &jobs);
        // one traversal of ".##.#": hole 0 fires (-> "##.#."), hole at 3
        // fires later in the scan.
        assert!(trace.shift_count() >= 2);
        let out = &trace.out_lines()[0].1;
        assert_eq!(bitline::count_ones(out), 3);
        assert_eq!(trace.cycles(), 1 + 5);
    }

    #[test]
    fn pipeline_cycle_count_is_lines_plus_depth() {
        let mut rng = seeded_rng(3);
        let g = AtomGrid::random(12, 9, 0.5, &mut rng);
        let windows = vec![(0usize, 9usize); 12];
        let trace = ShiftUnit::new(9).run(Axis::Row, &jobs_from_grid(&g, &windows));
        assert_eq!(trace.cycles(), 12 + 9);
        assert_eq!(trace.issue_cycles(), 12);
        assert_eq!(trace.depth(), 9);
    }

    #[test]
    fn matches_software_kernel_pass_exactly() {
        let mut rng = seeded_rng(7);
        for strategy in [
            KernelStrategy::Greedy,
            KernelStrategy::GreedyTargetOnly,
            KernelStrategy::Balanced,
        ] {
            for _ in 0..10 {
                let g = AtomGrid::random(14, 14, 0.5, &mut rng);
                let windows = plan_row_windows(&g, strategy, 8, 8);
                // software
                let mut sw = g.clone();
                let sw_pass = run_pass(&mut sw, Axis::Row, &windows, None);
                // hardware
                let trace = ShiftUnit::new(14).run(Axis::Row, &jobs_from_grid(&g, &windows));
                let hw_pass = trace.to_local_pass();
                assert_eq!(hw_pass, sw_pass, "{strategy:?}");
                let hw_grid = grid_from_out(14, 14, trace.out_lines());
                assert_eq!(hw_grid, sw, "{strategy:?} grids");
            }
        }
    }

    #[test]
    fn matches_software_kernel_column_pass() {
        let mut rng = seeded_rng(9);
        let g = AtomGrid::random(10, 10, 0.5, &mut rng);
        let windows = plan_col_windows(KernelStrategy::Balanced, 10, 10, 6, 6);
        let mut sw = g.clone();
        let sw_pass = run_pass(&mut sw, Axis::Col, &windows, None);
        // hardware runs on the transposed view (columns as rows)
        let gt = g.transpose();
        let trace = ShiftUnit::new(10).run(Axis::Col, &jobs_from_grid(&gt, &windows));
        assert_eq!(trace.to_local_pass(), sw_pass);
        let hw_grid = grid_from_out(10, 10, trace.out_lines()).transpose();
        assert_eq!(hw_grid, sw);
    }

    #[test]
    fn disabled_lines_pass_through() {
        let jobs = vec![LineJob {
            line: 0,
            bits: vec![0b1010],
            window: (0, 4),
            enabled: false,
        }];
        let trace = ShiftUnit::new(4).run(Axis::Row, &jobs);
        assert_eq!(trace.shift_count(), 0);
        assert_eq!(trace.out_lines()[0].1[0], 0b1010);
    }

    #[test]
    fn window_bounds_respected() {
        // atoms at 2 and 5; window (3, 6): only the hole at 3 and 4 fire.
        let jobs = vec![LineJob {
            line: 0,
            bits: vec![0b100100],
            window: (3, 6),
            enabled: true,
        }];
        let trace = ShiftUnit::new(6).run(Axis::Row, &jobs);
        let pass = trace.to_local_pass();
        for wave in &pass.waves {
            for s in &wave.shifts {
                assert!((3..6).contains(&s.hole));
            }
        }
        // atom at 2 must not have moved
        assert!(bitline::get(&trace.out_lines()[0].1, 2));
    }

    #[test]
    fn trace_events_cover_all_stages() {
        let mut rng = seeded_rng(2);
        let g = AtomGrid::random(4, 6, 0.5, &mut rng);
        let windows = vec![(0usize, 6usize); 4];
        let trace = ShiftUnit::new(6)
            .with_trace(true)
            .run(Axis::Row, &jobs_from_grid(&g, &windows));
        assert_eq!(trace.events().len(), 4 * 6);
        // static timing: line l stage k at a unique cycle, ordering holds
        for e in trace.events() {
            assert!(e.cycle >= e.stage as u64);
        }
    }

    #[test]
    fn multiword_lines() {
        let mut rng = seeded_rng(11);
        let g = AtomGrid::random(6, 90, 0.5, &mut rng);
        let windows = vec![(0usize, 90usize); 6];
        let mut sw = g.clone();
        let sw_pass = run_pass(&mut sw, Axis::Row, &windows, None);
        let trace = ShiftUnit::new(90).run(Axis::Row, &jobs_from_grid(&g, &windows));
        assert_eq!(trace.to_local_pass(), sw_pass);
        assert_eq!(grid_from_out(6, 90, trace.out_lines()), sw);
    }
}

//! Property-based hardware/software equivalence for the shift unit.

use proptest::prelude::*;
use qrm_core::geometry::Axis;
use qrm_core::grid::AtomGrid;
use qrm_core::kernel::{plan_row_windows, run_pass, KernelStrategy};
use qrm_fpga::shift_unit::{LineJob, ShiftUnit};
use rand::SeedableRng;

fn arb_quadrant() -> impl Strategy<Value = AtomGrid> {
    (2usize..26, 0.1f64..0.9, any::<u64>()).prop_map(|(side, fill, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        AtomGrid::random(side, side, fill, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shift_unit_is_bit_exact_with_software_pass(
        quadrant in arb_quadrant(),
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            KernelStrategy::Greedy,
            KernelStrategy::GreedyTargetOnly,
            KernelStrategy::Balanced,
        ][strategy_idx];
        let side = quadrant.height();
        let target = (side / 2).max(1);
        let windows = plan_row_windows(&quadrant, strategy, target, target);

        let mut sw = quadrant.clone();
        let sw_pass = run_pass(&mut sw, Axis::Row, &windows, None);

        let jobs: Vec<LineJob> = (0..side)
            .map(|l| LineJob {
                line: l,
                bits: quadrant.row_bits(l).to_vec(),
                window: windows.get(l).copied().unwrap_or((0, side)),
                enabled: true,
            })
            .collect();
        let trace = ShiftUnit::new(side).run(Axis::Row, &jobs);
        prop_assert_eq!(trace.to_local_pass(), sw_pass);

        let mut hw = AtomGrid::new(side, side).unwrap();
        for (line, bits) in trace.out_lines() {
            hw.set_row_bits(*line, bits);
        }
        prop_assert_eq!(hw, sw);
        // the pipeline cycle count is static: lines + depth
        prop_assert_eq!(trace.cycles(), (side + side) as u64);
    }

    #[test]
    fn shift_unit_conserves_atoms(quadrant in arb_quadrant()) {
        let side = quadrant.height();
        let jobs: Vec<LineJob> = (0..side)
            .map(|l| LineJob {
                line: l,
                bits: quadrant.row_bits(l).to_vec(),
                window: (0, side),
                enabled: true,
            })
            .collect();
        let trace = ShiftUnit::new(side).run(Axis::Row, &jobs);
        let total: usize = trace
            .out_lines()
            .iter()
            .map(|(_, bits)| qrm_core::bitline::count_ones(bits))
            .sum();
        prop_assert_eq!(total, quadrant.atom_count());
    }
}

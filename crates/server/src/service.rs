//! The long-lived planning service: registry, admission gate, and the
//! concurrent submit path.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use qrm_core::planner::Planner;
use qrm_core::trace::ShotTrace;

use qrm_control::pipeline::{Pipeline, PipelineConfig, PlannerChoice};

use crate::cache::ResponseCache;
use crate::request::{BatchReport, ServiceError, SubmitBatch};
use crate::stats::{LatencyHistogram, NetStats, PlannerStats, SchedulerTotals, ServiceStats};

/// Service-level configuration (everything *not* per-planner).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceConfig {
    /// Maximum submissions planning concurrently; further submissions
    /// queue (blocking their calling thread) until a slot frees.
    /// `0` (the default) means unlimited — every submission is admitted
    /// immediately and only the worker pool itself limits parallelism.
    pub max_inflight: usize,
    /// Byte budget of the content-addressed response cache. `0` (the
    /// default) disables caching entirely.
    pub cache_bytes: usize,
    /// Maximum total recorded events a single traced submission may
    /// return; a traced batch exceeding it fails with
    /// [`ServiceError::TraceTooLarge`] (`trace_too_large` on the wire).
    /// `0` (the default) means [`DEFAULT_TRACE_EVENT_CAP`].
    pub trace_event_cap: usize,
}

/// Default cap on the total events of a traced submission (~1M events;
/// tens of MB of JSON) — generous for demos and debugging, small enough
/// that a hostile spec cannot make the service assemble an unbounded
/// response body.
pub const DEFAULT_TRACE_EVENT_CAP: usize = 1 << 20;

/// One registered planner: its long-lived resolved instance, the
/// pipeline configured around it, and its serving counters.
struct Registration {
    pipeline: Pipeline,
    /// Resolved **once** at registration; every submission plans through
    /// this same instance, so its internal context pool stays warm
    /// across batches and across concurrent callers ([`Planner`] is
    /// `Send + Sync` by contract).
    planner: Box<dyn Planner>,
    batches: AtomicU64,
    shots: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

/// Builds a [`PlanService`]: registrations are declared up front, then
/// frozen, so the serving registry needs no locking at all.
#[derive(Default)]
pub struct PlanServiceBuilder {
    config: ServiceConfig,
    regs: BTreeMap<String, Registration>,
}

impl std::fmt::Debug for PlanServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanServiceBuilder")
            .field("config", &self.config)
            .field("registrations", &self.regs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl PlanServiceBuilder {
    /// Caps concurrent planning at `max_inflight` submissions (`0` =
    /// unlimited, the default).
    #[must_use]
    pub fn max_inflight(mut self, max_inflight: usize) -> Self {
        self.config.max_inflight = max_inflight;
        self
    }

    /// Enables the content-addressed response cache with the given byte
    /// budget (`0` = disabled, the default). Because a spec fully
    /// determines its report payload, hits return payloads
    /// byte-identical to a recompute — and they **bypass the admission
    /// gate entirely**, so a cached answer is never queued behind
    /// planning work.
    #[must_use]
    pub fn cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.config.cache_bytes = cache_bytes;
        self
    }

    /// Caps the total recorded events of one traced submission (`0` =
    /// [`DEFAULT_TRACE_EVENT_CAP`]).
    #[must_use]
    pub fn trace_event_cap(mut self, trace_event_cap: usize) -> Self {
        self.config.trace_event_cap = trace_event_cap;
        self
    }

    /// Registers `choice` under `name` with an explicitly configured
    /// pipeline (imaging, loss, rounds, workers…). The config's own
    /// `planner` field is overwritten with `choice` so the registration
    /// cannot be internally inconsistent, and the planner is resolved
    /// immediately — construction cost is paid here, never on the
    /// submit path. Registering an existing name replaces it.
    #[must_use]
    pub fn register(
        mut self,
        name: impl Into<String>,
        choice: PlannerChoice,
        mut pipeline: PipelineConfig,
    ) -> Self {
        pipeline.planner = choice;
        let planner = pipeline.planner.resolve(pipeline.workers);
        self.regs.insert(
            name.into(),
            Registration {
                pipeline: Pipeline::new(pipeline),
                planner,
                batches: AtomicU64::new(0),
                shots: AtomicU64::new(0),
                latency: Mutex::new(LatencyHistogram::new()),
            },
        );
        self
    }

    /// [`register`](Self::register) with a default pipeline at the
    /// given batch worker count.
    #[must_use]
    pub fn register_default(
        self,
        name: impl Into<String>,
        choice: PlannerChoice,
        workers: usize,
    ) -> Self {
        let pipeline = PipelineConfig {
            workers,
            ..PipelineConfig::default()
        };
        self.register(name, choice, pipeline)
    }

    /// Freezes the registry and starts the service clock: pool counters
    /// reported by [`PlanService::stats`] are deltas from this moment.
    pub fn build(self) -> PlanService {
        PlanService {
            regs: self.regs,
            gate: Gate::new(self.config.max_inflight),
            cache: ResponseCache::new(self.config.cache_bytes),
            trace_event_cap: match self.config.trace_event_cap {
                0 => DEFAULT_TRACE_EVENT_CAP,
                cap => cap,
            },
            batches_served: AtomicU64::new(0),
            shots_served: AtomicU64::new(0),
            scheduler: Mutex::new(SchedulerTotals::default()),
            pool_baseline: rayon::global_pool_stats(),
        }
    }
}

/// The admission gate: a counting semaphore with **strict FIFO**
/// admission, queue-depth, and high-water-mark accounting.
///
/// Every arrival takes a monotonically increasing ticket and waits
/// until the slot count allows it *and* its ticket is first in line.
/// (An earlier revision only waited on the slot count, so an arrival
/// that raced a slot release could barge past submissions that had
/// been queued for ages — with small batches, a steady stream of
/// newcomers could starve a queued waiter indefinitely. Tickets make
/// admission order arrival order, and the `queued`/`scheduler` fields
/// of `GET /v1/stats` make any residual waiting observable.)
struct Gate {
    max_inflight: usize,
    state: Mutex<GateState>,
    ready: Condvar,
}

#[derive(Default)]
struct GateState {
    inflight: usize,
    queued: usize,
    peak_inflight: usize,
    peak_queued: usize,
    /// Next ticket to hand to an arriving submission.
    next_ticket: u64,
    /// The ticket currently first in line for admission.
    admit_ticket: u64,
}

impl Gate {
    fn new(max_inflight: usize) -> Self {
        Gate {
            max_inflight,
            state: Mutex::new(GateState::default()),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().expect("service gate poisoned")
    }

    /// Blocks until every earlier arrival has been admitted and a slot
    /// is free, then occupies the slot for the lifetime of the returned
    /// permit.
    fn admit(&self) -> Permit<'_> {
        let mut state = self.lock();
        if self.max_inflight != 0 {
            let ticket = state.next_ticket;
            state.next_ticket += 1;
            if state.inflight >= self.max_inflight || state.admit_ticket != ticket {
                state.queued += 1;
                state.peak_queued = state.peak_queued.max(state.queued);
                while state.inflight >= self.max_inflight || state.admit_ticket != ticket {
                    state = self.ready.wait(state).expect("service gate poisoned");
                }
                state.queued -= 1;
            }
            state.admit_ticket += 1;
        }
        state.inflight += 1;
        state.peak_inflight = state.peak_inflight.max(state.inflight);
        Permit { gate: self }
    }
}

/// RAII admission slot; dropping it (success *or* error/panic on the
/// submit path) frees the slot and wakes the queued submissions so the
/// holder of the next ticket can take it. (`notify_all`, not
/// `notify_one`: only one *specific* waiter — the next ticket — may
/// proceed, and a single wake could land on any of them.)
struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.lock();
        state.inflight -= 1;
        drop(state);
        self.gate.ready.notify_all();
    }
}

/// The long-lived, in-process planning service.
///
/// Owns one resolved planner (and one configured [`Pipeline`]) per
/// registration, accepts [`SubmitBatch`] requests from any number of
/// threads through [`submit`](Self::submit) (`&self` — share it behind
/// an `Arc` or `std::thread::scope`), runs them on the process-global
/// worker pool through the warm context pool of each planner, and
/// aggregates serving stats ([`stats`](Self::stats)).
///
/// Determinism contract: a submission's [`BatchReport::reports`] is
/// bit-identical to running the spec's workload directly through
/// `Pipeline::run_batch` with the same configuration, at any pool size
/// and under any submission concurrency. See `tests/service.rs`.
pub struct PlanService {
    regs: BTreeMap<String, Registration>,
    gate: Gate,
    /// Content-addressed response cache; disabled (zero budget) unless
    /// [`PlanServiceBuilder::cache_bytes`] opted in.
    cache: ResponseCache,
    /// Resolved event cap for traced submissions (never zero).
    trace_event_cap: usize,
    batches_served: AtomicU64,
    shots_served: AtomicU64,
    /// Lifetime dataflow-scheduler totals, folded in per batch under a
    /// short lock on the submit path.
    scheduler: Mutex<SchedulerTotals>,
    pool_baseline: rayon::PoolStats,
}

impl std::fmt::Debug for PlanService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanService")
            .field("registrations", &self.regs.keys().collect::<Vec<_>>())
            .field(
                "batches_served",
                &self.batches_served.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl PlanService {
    /// Starts building a service.
    pub fn builder() -> PlanServiceBuilder {
        PlanServiceBuilder::default()
    }

    /// The registered planner names, in sorted order.
    pub fn planners(&self) -> impl Iterator<Item = &str> {
        self.regs.keys().map(String::as_str)
    }

    /// Serves one batch submission to completion and returns its
    /// report.
    ///
    /// Callable concurrently from any number of threads. When the
    /// response cache is enabled and holds this submission's canonical
    /// key, the cached payload is returned immediately — byte-identical
    /// to a recompute (the spec fully determines it), **without taking
    /// an admission ticket**, so cached answers neither wait behind nor
    /// reorder queued planning work. Otherwise the submission expands
    /// its workload (cheap, unthrottled), waits for an admission slot if
    /// the service is at `max_inflight`, and runs the batched pipeline
    /// on the worker pool via the registration's long-lived planner — so
    /// every batch plans with warm contexts.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownPlanner`] when no registration matches;
    /// [`ServiceError::Planning`] for workload or pipeline failures;
    /// [`ServiceError::TraceTooLarge`] when a traced submission's
    /// recorded events exceed the service's cap.
    pub fn submit(&self, request: &SubmitBatch) -> Result<BatchReport, ServiceError> {
        let reg = self
            .regs
            .get(&request.planner)
            .ok_or_else(|| ServiceError::UnknownPlanner(request.planner.clone()))?;

        // Traced submissions bypass the cache in both directions: their
        // payload carries the (potentially huge) trace, which the cache
        // neither stores nor should serve to untraced requests.
        let key = (!request.trace && self.cache.enabled()).then(|| request.cache_key());
        if let Some(key) = &key {
            let t0 = Instant::now();
            if let Some(reports) = self.cache.lookup(key) {
                let wall_us = t0.elapsed().as_secs_f64() * 1e6;
                self.record_served(reg, reports.len(), wall_us);
                return Ok(BatchReport {
                    planner: request.planner.clone(),
                    reports: reports.as_ref().clone(),
                    wall_us,
                    trace: None,
                });
            }
        }

        let workload = request.spec.workload()?;
        // The scenario's overrides (loss, round budget) and the trace
        // flag configure a per-request pipeline around the
        // registration's long-lived planner; the default scenario
        // reproduces the registered configuration exactly.
        let mut config = workload.configure(reg.pipeline.config());
        config.record_trace = request.trace;
        let pipeline = Pipeline::new(config);

        let _permit = self.gate.admit();
        let t0 = Instant::now();
        let run = pipeline.run_batch_zones_tracked(
            &*reg.planner,
            &workload.truths,
            &workload.zones,
            request.spec.seed,
        )?;
        let wall_us = t0.elapsed().as_secs_f64() * 1e6;

        if let Some(traces) = &run.traces {
            let events: usize = traces.iter().map(ShotTrace::events).sum();
            if events > self.trace_event_cap {
                return Err(ServiceError::TraceTooLarge {
                    events,
                    cap: self.trace_event_cap,
                });
            }
        }

        self.scheduler
            .lock()
            .expect("scheduler totals poisoned")
            .absorb(&run.stats);
        self.record_served(reg, run.reports.len(), wall_us);

        let reports = if let Some(key) = key {
            let shared = Arc::new(run.reports);
            self.cache.insert(key, Arc::clone(&shared));
            // Usually the cache kept its clone and this falls back to a
            // deep copy; if the entry was oversized (never stored) the
            // Arc is unique and the payload moves out for free.
            Arc::try_unwrap(shared).unwrap_or_else(|shared| shared.as_ref().clone())
        } else {
            run.reports
        };

        Ok(BatchReport {
            planner: request.planner.clone(),
            reports,
            wall_us,
            trace: run.traces,
        })
    }

    /// Folds one served batch (computed or cache hit) into the
    /// per-registration and service-wide counters.
    fn record_served(&self, reg: &Registration, shots: usize, wall_us: f64) {
        reg.batches.fetch_add(1, Ordering::Relaxed);
        reg.shots.fetch_add(shots as u64, Ordering::Relaxed);
        reg.latency
            .lock()
            .expect("latency histogram poisoned")
            .record(wall_us);
        self.batches_served.fetch_add(1, Ordering::Relaxed);
        self.shots_served.fetch_add(shots as u64, Ordering::Relaxed);
    }

    /// Snapshots the service: queue/inflight gauges with their
    /// high-water marks, served totals, per-registration latency
    /// histograms and context warmth, and the worker pool's activity
    /// since the service was built.
    pub fn stats(&self) -> ServiceStats {
        let gate = self.gate.lock();
        let (queued, inflight, peak_queued, peak_inflight) = (
            gate.queued,
            gate.inflight,
            gate.peak_queued,
            gate.peak_inflight,
        );
        drop(gate);
        ServiceStats {
            queued,
            inflight,
            peak_queued,
            peak_inflight,
            batches_served: self.batches_served.load(Ordering::Relaxed),
            shots_served: self.shots_served.load(Ordering::Relaxed),
            pool: rayon::global_pool_stats().since(&self.pool_baseline),
            scheduler: *self.scheduler.lock().expect("scheduler totals poisoned"),
            cache: self.cache.stats(),
            // The service itself has no transport: the HTTP front end
            // splices live connection gauges in before serialization.
            net: NetStats::default(),
            planners: self
                .regs
                .iter()
                .map(|(name, reg)| PlannerStats {
                    name: name.clone(),
                    algorithm: reg.planner.name().to_string(),
                    batches: reg.batches.load(Ordering::Relaxed),
                    shots: reg.shots.load(Ordering::Relaxed),
                    latency: reg
                        .latency
                        .lock()
                        .expect("latency histogram poisoned")
                        .clone(),
                    contexts: reg.planner.context_stats(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::BatchSpec;
    use qrm_core::scheduler::QrmConfig;

    fn small_service(max_inflight: usize) -> PlanService {
        PlanService::builder()
            .max_inflight(max_inflight)
            .register_default("qrm", PlannerChoice::Software(QrmConfig::default()), 1)
            .register_default("typical", PlannerChoice::Typical, 1)
            .build()
    }

    #[test]
    fn submit_serves_and_counts() {
        let service = small_service(0);
        let report = service
            .submit(&SubmitBatch::new("qrm", BatchSpec::new(2, 12, 5)))
            .unwrap();
        assert_eq!(report.shots(), 2);
        assert_eq!(report.planner, "qrm");
        assert!(report.wall_us > 0.0);

        let stats = service.stats();
        assert_eq!(stats.batches_served, 1);
        assert_eq!(stats.shots_served, 2);
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.inflight, 0);
        let qrm = stats.planners.iter().find(|p| p.name == "qrm").unwrap();
        assert_eq!(qrm.batches, 1);
        assert_eq!(qrm.latency.count(), 1);
        // QRM pools contexts; after one batch the pool is warm.
        let ctx = qrm.contexts.expect("QRM reports context stats");
        assert!(ctx.idle_contexts >= 1);
        // The stateless planner reports none.
        let typical = stats.planners.iter().find(|p| p.name == "typical").unwrap();
        assert!(typical.contexts.is_none());
        assert_eq!(typical.batches, 0);
        // The dataflow scheduler ran this batch and its counters made it
        // into the snapshot: both shots were planned, and every shot
        // costs at least an observe + plan + execute task per round plus
        // a terminal observe.
        assert!(stats.scheduler.planned_shots >= 2);
        assert!(stats.scheduler.plan_groups >= 1);
        assert!(stats.scheduler.tasks_dispatched > stats.scheduler.planned_shots);
    }

    #[test]
    fn admission_is_strictly_fifo() {
        // One slot, held by the test; three waiters queued one at a
        // time (each spawn waits until the previous waiter is visibly
        // queued, so ticket order equals spawn order). Releasing the
        // held slot must admit them in exactly that order even though
        // `notify_all` wakes everyone.
        let gate = Gate::new(1);
        let order = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let holder = gate.admit();
            for i in 0..3usize {
                let (gate, order) = (&gate, &order);
                scope.spawn(move || {
                    let permit = gate.admit();
                    order.lock().unwrap().push(i);
                    // Hold briefly so later tickets are genuinely
                    // forced to wait for this slot, not just the lock.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    drop(permit);
                });
                while gate.lock().queued != i + 1 {
                    std::thread::yield_now();
                }
            }
            assert_eq!(gate.lock().peak_queued, 3);
            drop(holder);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
        let end = gate.lock();
        assert_eq!(end.inflight, 0);
        assert_eq!(end.queued, 0);
        // Every ticket issued was admitted, in ticket order.
        assert_eq!(end.admit_ticket, end.next_ticket);
        assert_eq!(end.next_ticket, 4);
    }

    #[test]
    fn unknown_planner_is_an_error() {
        let service = small_service(0);
        let err = service
            .submit(&SubmitBatch::new("nope", BatchSpec::new(1, 12, 5)))
            .unwrap_err();
        assert!(matches!(err, ServiceError::UnknownPlanner(name) if name == "nope"));
        assert_eq!(service.stats().batches_served, 0);
    }

    #[test]
    fn degenerate_spec_is_a_planning_error() {
        let service = small_service(0);
        let err = service
            .submit(&SubmitBatch::new("qrm", BatchSpec::new(1, 0, 5)))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Planning(_)));
    }

    #[test]
    fn concurrent_submissions_all_serve_under_a_tight_gate() {
        let service = small_service(1);
        let spec = BatchSpec::new(1, 12, 77);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let report = service
                        .submit(&SubmitBatch::new("qrm", spec.clone()))
                        .unwrap();
                    assert_eq!(report.shots(), 1);
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.batches_served, 4);
        assert_eq!(stats.inflight, 0);
        assert_eq!(stats.queued, 0);
        // max_inflight = 1 means the gate never admitted two at once.
        assert_eq!(stats.peak_inflight, 1);
    }

    #[test]
    fn cache_hit_returns_identical_reports_and_counts() {
        let service = PlanService::builder()
            .cache_bytes(1 << 20)
            .register_default("qrm", PlannerChoice::Software(QrmConfig::default()), 1)
            .build();
        let request = SubmitBatch::new("qrm", BatchSpec::new(2, 12, 9));
        let first = service.submit(&request).unwrap();
        let second = service.submit(&request).unwrap();
        // The payload is the determinism contract; wall_us is not.
        assert_eq!(first.reports, second.reports);

        let stats = service.stats();
        assert_eq!(stats.cache.lookups, 2);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.insertions, 1);
        assert_eq!(stats.cache.entries, 1);
        assert!(stats.cache.bytes > 0);
        // A hit still counts as served, for the planner and the service.
        assert_eq!(stats.batches_served, 2);
        assert_eq!(stats.shots_served, 4);
        assert_eq!(stats.planners[0].batches, 2);
        assert_eq!(stats.planners[0].latency.count(), 2);
        // The hit bypassed the gate: only the miss took a ticket.
        assert_eq!(service.gate.lock().next_ticket, 0); // unlimited gate issues none
    }

    #[test]
    fn cache_disabled_by_default_reports_zeros() {
        let service = small_service(0);
        let request = SubmitBatch::new("qrm", BatchSpec::new(1, 12, 5));
        service.submit(&request).unwrap();
        service.submit(&request).unwrap();
        let stats = service.stats();
        assert_eq!(stats.cache, crate::stats::CacheStats::default());
    }

    #[test]
    fn cache_hits_bypass_the_gate_without_reordering_queued_work() {
        // FIFO-fairness regression for the gate bypass (extends
        // `admission_is_strictly_fifo`): with the single admission slot
        // held, queue two uncached submissions, then serve a stream of
        // cached hits. The hits must all complete while the slot is
        // still held (they never take tickets, so they cannot starve or
        // be starved), the queue depth must never grow past the two
        // real waiters, and the waiters must then be admitted in their
        // original ticket order.
        let service = PlanService::builder()
            .max_inflight(1)
            .cache_bytes(1 << 20)
            .register_default("qrm", PlannerChoice::Software(QrmConfig::default()), 1)
            .build();
        let warm = SubmitBatch::new("qrm", BatchSpec::new(1, 12, 42));
        service.submit(&warm).unwrap();

        std::thread::scope(|scope| {
            let holder = service.gate.admit();
            let tickets_before_waiters = service.gate.lock().next_ticket;
            for i in 0..2usize {
                let service = &service;
                scope.spawn(move || {
                    // Uncached (fresh seed): must queue behind the held
                    // slot.
                    let spec = BatchSpec::new(1, 12, 1000 + i as u64);
                    service.submit(&SubmitBatch::new("qrm", spec)).unwrap();
                });
                while service.gate.lock().queued != i + 1 {
                    std::thread::yield_now();
                }
            }

            // The gate is fully occupied and two waiters are queued;
            // cached hits must still be served immediately.
            for _ in 0..8 {
                let report = service.submit(&warm).unwrap();
                assert_eq!(report.shots(), 1);
            }
            let state = service.gate.lock();
            assert_eq!(state.queued, 2, "hits must not queue");
            // The hits took no tickets: only the two waiters arrived
            // since the holder took the slot.
            assert_eq!(state.next_ticket, tickets_before_waiters + 2);
            drop(state);
            drop(holder);
        });
        // The waiters were admitted in ticket order — the gate admits
        // strictly by ticket (`admission_is_strictly_fifo` pins the
        // ordering itself), and the accounting proves every ticket
        // issued was admitted with none skipped or barged.
        let end = service.gate.lock();
        assert_eq!(end.admit_ticket, end.next_ticket);
        assert_eq!(end.inflight, 0);
        assert_eq!(end.queued, 0);
        drop(end);
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 8);
        assert_eq!(stats.peak_queued, 2);
        assert_eq!(stats.batches_served, 11);
    }

    #[test]
    fn scenario_submissions_serve_every_variant() {
        use crate::request::Scenario;
        let service = small_service(0);
        let scenarios = [
            Scenario::DefectMap { dead_fraction: 0.1 },
            Scenario::AtomLoss { loss_prob: 0.02 },
            Scenario::Zones { rows: 2, cols: 2 },
            Scenario::CorrelatedFill {
                grain: 3,
                flip_prob: 0.05,
            },
        ];
        for scenario in scenarios {
            let spec = BatchSpec::new(2, 16, 7).with_scenario(scenario);
            let report = service.submit(&SubmitBatch::new("qrm", spec)).unwrap();
            assert_eq!(report.shots(), 2, "{scenario:?}");
            assert!(report.trace.is_none());
        }
    }

    #[test]
    fn traced_submission_replays_to_the_reported_final_state() {
        let service = small_service(0);
        let spec = BatchSpec::new(2, 12, 5);
        let request = SubmitBatch::new("qrm", spec.clone()).with_trace(true);
        let report = service.submit(&request).unwrap();
        let traces = report.trace.as_ref().expect("trace requested");
        assert_eq!(traces.len(), report.shots());
        let workload = spec.workload().unwrap();
        for (i, (truth, trace)) in workload.truths.iter().zip(traces).enumerate() {
            let replayed = qrm_core::trace::TraceReplayer::replay(truth, trace).unwrap();
            assert_eq!(replayed, report.reports[i].final_state, "shot {i}");
        }
        // Tracing only observes: the reports match an untraced run.
        let untraced = service.submit(&SubmitBatch::new("qrm", spec)).unwrap();
        assert_eq!(untraced.reports, report.reports);
        assert!(untraced.trace.is_none());
    }

    #[test]
    fn tiny_trace_cap_rejects_with_trace_too_large() {
        let service = PlanService::builder()
            .trace_event_cap(1)
            .register_default("qrm", PlannerChoice::Software(QrmConfig::default()), 1)
            .build();
        let request = SubmitBatch::new("qrm", BatchSpec::new(2, 12, 5)).with_trace(true);
        let err = service.submit(&request).unwrap_err();
        assert_eq!(err.code(), "trace_too_large");
        assert!(matches!(err, ServiceError::TraceTooLarge { events, cap: 1 } if events > 1));
        // The rejected batch was not recorded as served.
        assert_eq!(service.stats().batches_served, 0);
    }

    #[test]
    fn traced_submissions_bypass_the_cache() {
        let service = PlanService::builder()
            .cache_bytes(1 << 20)
            .register_default("qrm", PlannerChoice::Software(QrmConfig::default()), 1)
            .build();
        let spec = BatchSpec::new(1, 12, 9);
        let traced = SubmitBatch::new("qrm", spec.clone()).with_trace(true);
        service.submit(&traced).unwrap();
        service.submit(&traced).unwrap();
        // Neither traced submission touched the cache.
        assert_eq!(service.stats().cache.lookups, 0);
        assert_eq!(service.stats().cache.insertions, 0);
        // An untraced submission of the same spec computes and caches.
        let untraced = SubmitBatch::new("qrm", spec);
        service.submit(&untraced).unwrap();
        let report = service.submit(&untraced).unwrap();
        assert!(report.trace.is_none());
        let stats = service.stats();
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.cache.insertions, 1);
    }

    #[test]
    fn replacing_a_registration_keeps_one_entry() {
        let service = PlanService::builder()
            .register_default("p", PlannerChoice::Typical, 1)
            .register_default("p", PlannerChoice::Tetris, 1)
            .build();
        assert_eq!(service.planners().collect::<Vec<_>>(), vec!["p"]);
        let stats = service.stats();
        assert_eq!(stats.planners.len(), 1);
        assert_eq!(stats.planners[0].algorithm, "Tetris (Wang 2023)");
    }
}

//! Service observability: latency histograms and aggregate stats.
//!
//! Everything here is *snapshot* data — plain values copied out of the
//! service's internal counters under short locks, safe to hold, print,
//! or diff while the service keeps serving. Pool counters are reported
//! as **deltas since service construction**
//! ([`PoolStats::since`](rayon::PoolStats)), which excludes whatever
//! ran before the service was built. The pool itself is process-global,
//! so jobs other pool users run *while* the service is live are still
//! included — per-service attribution needs a process that serves
//! nothing else.

use qrm_core::engine::ContextPoolStats;

/// Histogram buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` µs; the last bucket is open-ended. 2^21 µs ≈ 2 s,
/// far beyond any single batch this service runs.
const BUCKETS: usize = 22;

/// A fixed-size power-of-two latency histogram (µs resolution).
///
/// Recording is O(1) and allocation-free, so it sits on the submit path
/// behind a mutex without becoming a hot spot. Bucket `i` spans
/// `[2^i, 2^(i+1))` µs (bucket 0 also catches sub-µs values); the last
/// bucket is open-ended.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_us: 0.0,
            max_us: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency observation (µs). NaN and negative inputs
    /// are clamped to 0 so a degenerate measurement cannot poison the
    /// histogram's moments or panic the bucket index.
    pub fn record(&mut self, us: f64) {
        let us = if us.is_nan() || us < 0.0 { 0.0 } else { us };
        let idx = if us < 1.0 {
            0
        } else {
            // f64 -> u64 is saturating in Rust, so huge latencies land
            // in the open-ended last bucket rather than wrapping.
            (us as u64).ilog2().min(BUCKETS as u32 - 1) as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.total_us += us;
        if us > self.max_us {
            self.max_us = us;
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency (µs); 0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64
        }
    }

    /// Largest latency recorded (µs).
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// Smallest bucket upper bound (µs) such that at least
    /// `fraction` (0..=1) of observations fall at or below it — a
    /// bucket-resolution percentile (e.g. `quantile_us(0.99)` for p99).
    /// A quantile landing in the open-ended last bucket reports
    /// [`max_us`](Self::max_us) (the bucket has no finite upper bound).
    /// Returns 0 when empty.
    pub fn quantile_us(&self, fraction: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let threshold = (fraction.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= threshold {
                return if i + 1 < BUCKETS {
                    (1u64 << (i + 1)) as f64
                } else {
                    self.max_us
                };
            }
        }
        self.max_us
    }

    /// Iterates the non-empty buckets as `(upper_bound_us, count)`
    /// pairs, in latency order. The open-ended last bucket reports
    /// `u64::MAX` as its bound.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let bound = if i + 1 < BUCKETS {
                    1u64 << (i + 1)
                } else {
                    u64::MAX
                };
                (bound, n)
            })
    }
}

/// Per-registration snapshot inside a [`ServiceStats`].
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlannerStats {
    /// Registration name.
    pub name: String,
    /// The planner's self-reported algorithm name. Owned (not
    /// `&'static str`) so the snapshot survives a serialization
    /// round-trip — a remote client's copy has no static source.
    pub algorithm: String,
    /// Batches this registration served.
    pub batches: u64,
    /// Shots across those batches.
    pub shots: u64,
    /// Service-time distribution of this registration's batches.
    pub latency: LatencyHistogram,
    /// Warm-context diagnostics, for planners that pool contexts
    /// (QRM; `None` for stateless planners).
    pub contexts: Option<ContextPoolStats>,
}

/// Dataflow-scheduler counters aggregated across every batch the
/// service has served — the wire-visible form of
/// [`DataflowStats`](qrm_core::engine::dataflow::DataflowStats).
/// `max_shot_lag` is the lifetime maximum; everything else is a sum.
///
/// The counters make scheduler health *observable*: a growing
/// `rounds_overlapped` shows stragglers are being overlapped instead of
/// stalling their batch, and `planned_shots / plan_groups` is the mean
/// readiness-window plan-group size. They describe schedules, never
/// results — reports stay bit-identical whatever these read.
///
/// On the wire this is an **additive** `ServiceStats` field: decoding a
/// pre-dataflow snapshot (no `scheduler` key) yields all zeros rather
/// than an error, per the `docs/PROTOCOL.md` schema-evolution rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct SchedulerTotals {
    /// Pool tasks the shot scheduler dispatched (observe + plan-group
    /// + execute).
    pub tasks_dispatched: u64,
    /// Plan-group tasks that planned at least one shot.
    pub plan_groups: u64,
    /// Shots planned across all groups.
    pub planned_shots: u64,
    /// Observations that started a round while a slower live shot was
    /// still behind — the overlap a barriered schedule forbids.
    pub rounds_overlapped: u64,
    /// Largest round gap ever observed between the fastest and the
    /// slowest live shot of a batch.
    pub max_shot_lag: u64,
}

impl SchedulerTotals {
    /// Folds one batch's scheduler counters into the lifetime totals.
    pub fn absorb(&mut self, run: &qrm_core::engine::dataflow::DataflowStats) {
        self.tasks_dispatched += run.tasks_dispatched;
        self.plan_groups += run.plan_groups;
        self.planned_shots += run.planned_shots;
        self.rounds_overlapped += run.rounds_overlapped;
        self.max_shot_lag = self.max_shot_lag.max(run.max_shot_lag);
    }
}

// Hand-written (not derived) so a snapshot from a pre-dataflow peer —
// whose `ServiceStats` has no `scheduler` key at all — decodes as
// zeros instead of failing on the missing field. The derive would use
// the default `deserialize_missing` (an error); overriding it is the
// vendored-serde idiom for additive schema evolution.
#[cfg(feature = "serde")]
impl serde::Deserialize for SchedulerTotals {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = value.as_map("SchedulerTotals")?;
        Ok(SchedulerTotals {
            tasks_dispatched: serde::field(map, "SchedulerTotals", "tasks_dispatched")?,
            plan_groups: serde::field(map, "SchedulerTotals", "plan_groups")?,
            planned_shots: serde::field(map, "SchedulerTotals", "planned_shots")?,
            rounds_overlapped: serde::field(map, "SchedulerTotals", "rounds_overlapped")?,
            max_shot_lag: serde::field(map, "SchedulerTotals", "max_shot_lag")?,
        })
    }

    fn deserialize_missing(_ty: &str, _field: &str) -> Result<Self, serde::Error> {
        Ok(SchedulerTotals::default())
    }
}

/// Response-cache counters, the wire-visible snapshot of
/// [`ResponseCache::stats`](crate::ResponseCache::stats).
///
/// `hits + misses == lookups` and `bytes <= budget_bytes` hold in every
/// snapshot (the cache updates all counters under one lock). A disabled
/// cache (`budget_bytes == 0`, the default) reports all zeros.
///
/// On the wire this is an **additive** `ServiceStats` field like
/// [`SchedulerTotals`]: decoding a pre-cache snapshot (no `cache` key)
/// yields all zeros rather than an error, per the `docs/PROTOCOL.md`
/// schema-evolution rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct CacheStats {
    /// Cache probes (`hits + misses`).
    pub lookups: u64,
    /// Lookups answered from a resident entry.
    pub hits: u64,
    /// Lookups that fell through to planning.
    pub misses: u64,
    /// Entries stored (replacing a resident key counts again).
    pub insertions: u64,
    /// Entries dropped to uphold the byte budget.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Bytes currently charged against the budget (the sum of
    /// [`entry_cost`](crate::cache::entry_cost) over resident entries).
    pub bytes: u64,
    /// High-water mark of `bytes` over the cache's lifetime.
    pub peak_bytes: u64,
    /// Configured byte budget; `0` means the cache is disabled.
    pub budget_bytes: u64,
}

// Hand-written for the same reason as `SchedulerTotals` above: a
// snapshot from a pre-cache peer has no `cache` key, and must decode as
// zeros instead of failing on the missing field.
#[cfg(feature = "serde")]
impl serde::Deserialize for CacheStats {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = value.as_map("CacheStats")?;
        Ok(CacheStats {
            lookups: serde::field(map, "CacheStats", "lookups")?,
            hits: serde::field(map, "CacheStats", "hits")?,
            misses: serde::field(map, "CacheStats", "misses")?,
            insertions: serde::field(map, "CacheStats", "insertions")?,
            evictions: serde::field(map, "CacheStats", "evictions")?,
            entries: serde::field(map, "CacheStats", "entries")?,
            bytes: serde::field(map, "CacheStats", "bytes")?,
            peak_bytes: serde::field(map, "CacheStats", "peak_bytes")?,
            budget_bytes: serde::field(map, "CacheStats", "budget_bytes")?,
        })
    }

    fn deserialize_missing(_ty: &str, _field: &str) -> Result<Self, serde::Error> {
        Ok(CacheStats::default())
    }
}

/// HTTP front-end connection gauges, maintained by `qrm_net`'s
/// readiness event loop and spliced into the `GET /v1/stats` snapshot
/// (an in-process [`PlanService::stats`](crate::PlanService::stats)
/// reports all zeros here — the front end owns these counters, the
/// service never sees a socket).
///
/// `open_connections` is a live gauge; everything else is monotone.
/// `accepted_total == open_connections + closed_total` holds in every
/// snapshot, and `closed_total` is the sum of the per-cause
/// `closed_*` counters.
///
/// On the wire this is an **additive** `ServiceStats` field like
/// [`SchedulerTotals`] and [`CacheStats`]: decoding a pre-net snapshot
/// (no `net` key) yields all zeros rather than an error, per the
/// `docs/PROTOCOL.md` schema-evolution rules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct NetStats {
    /// Connections currently open (accepted, not yet closed).
    pub open_connections: u64,
    /// High-water mark of `open_connections` over the server's life.
    pub peak_open: u64,
    /// Connections accepted since the server started.
    pub accepted_total: u64,
    /// Connections closed since the server started (any cause).
    pub closed_total: u64,
    /// Requests fully parsed and dispatched (all routes).
    pub requests_served: u64,
    /// Requests refused with `401 unauthorized`.
    pub auth_failures: u64,
    /// Closes: idle keep-alive timeout between requests.
    pub closed_idle: u64,
    /// Closes: total request deadline expired mid-request.
    pub closed_request_timeout: u64,
    /// Closes: the peer stopped draining a response past the deadline.
    pub closed_write_stalled: u64,
    /// Closes: the peer closed first (or asked to via
    /// `Connection: close`), including mid-request half-closes and
    /// resets.
    pub closed_peer: u64,
    /// Closes: a framing violation ended the connection after its
    /// typed error reply.
    pub closed_framing: u64,
    /// Closes: server shutdown (or fault-injection sever).
    pub closed_shutdown: u64,
    /// Closes: the connection cap was reached; accepted and
    /// immediately shed.
    pub closed_over_capacity: u64,
}

// Hand-written for the same reason as `SchedulerTotals` and
// `CacheStats` above: a snapshot from a pre-net peer has no `net` key,
// and must decode as zeros instead of failing on the missing field.
#[cfg(feature = "serde")]
impl serde::Deserialize for NetStats {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = value.as_map("NetStats")?;
        Ok(NetStats {
            open_connections: serde::field(map, "NetStats", "open_connections")?,
            peak_open: serde::field(map, "NetStats", "peak_open")?,
            accepted_total: serde::field(map, "NetStats", "accepted_total")?,
            closed_total: serde::field(map, "NetStats", "closed_total")?,
            requests_served: serde::field(map, "NetStats", "requests_served")?,
            auth_failures: serde::field(map, "NetStats", "auth_failures")?,
            closed_idle: serde::field(map, "NetStats", "closed_idle")?,
            closed_request_timeout: serde::field(map, "NetStats", "closed_request_timeout")?,
            closed_write_stalled: serde::field(map, "NetStats", "closed_write_stalled")?,
            closed_peer: serde::field(map, "NetStats", "closed_peer")?,
            closed_framing: serde::field(map, "NetStats", "closed_framing")?,
            closed_shutdown: serde::field(map, "NetStats", "closed_shutdown")?,
            closed_over_capacity: serde::field(map, "NetStats", "closed_over_capacity")?,
        })
    }

    fn deserialize_missing(_ty: &str, _field: &str) -> Result<Self, serde::Error> {
        Ok(NetStats::default())
    }
}

/// One consistent snapshot of the whole service, from
/// [`PlanService::stats`](crate::PlanService::stats).
///
/// `Default` is the all-zero snapshot of a service that has served
/// nothing (no planners registered) — what a router-side load report
/// carries in its service-stats slot, since a router exposes
/// `RouterStats` instead.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ServiceStats {
    /// Submissions currently waiting for admission (queue depth).
    pub queued: usize,
    /// Submissions currently planning/executing.
    pub inflight: usize,
    /// High-water mark of `queued` over the service's lifetime.
    pub peak_queued: usize,
    /// High-water mark of `inflight` over the service's lifetime.
    pub peak_inflight: usize,
    /// Batches served successfully.
    pub batches_served: u64,
    /// Shots across all served batches.
    pub shots_served: u64,
    /// Worker-pool activity **since service construction** (threads is
    /// the current pool size; all counters are deltas).
    pub pool: rayon::PoolStats,
    /// Per-registration breakdown, in registration-name order.
    pub planners: Vec<PlannerStats>,
    /// Dataflow-scheduler totals across all served batches. Additive
    /// field: pre-dataflow decoders ignore the unknown key, and
    /// pre-dataflow snapshots decode here as zeros.
    pub scheduler: SchedulerTotals,
    /// Response-cache counters. Additive field, same rule: pre-cache
    /// decoders ignore the unknown key, and pre-cache snapshots decode
    /// here as zeros.
    pub cache: CacheStats,
    /// HTTP front-end connection gauges, spliced in by `qrm_net`'s
    /// event loop (zeros in-process). Declared (and serialized) last,
    /// same additive rule: pre-net decoders ignore the unknown key,
    /// and pre-net snapshots decode here as zeros.
    pub net: NetStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = LatencyHistogram::new();
        for us in [0.5, 1.0, 3.0, 1000.0, 1_000_000.0] {
            h.record(us);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean_us() - 200_200.9).abs() < 1.0);
        assert_eq!(h.max_us(), 1_000_000.0);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // 0.5 and 1.0 land in bucket 0 (<2 µs), 3.0 in [2,4), 1000 in
        // [512,1024), 1e6 in [2^19, 2^20).
        assert_eq!(buckets, vec![(2, 2), (4, 1), (1024, 1), (1 << 20, 1)]);
        assert_eq!(h.quantile_us(0.5), 4.0);
        assert_eq!(h.quantile_us(1.0), (1u64 << 20) as f64);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn huge_latency_saturates_into_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(1e10); // ~2.8 hours, far past the last finite bound
        assert_eq!(h.count(), 1);
        // The open-ended bucket has no finite bound, and a quantile
        // landing in it reports the true maximum, never less than it.
        assert_eq!(h.nonzero_buckets().collect::<Vec<_>>(), vec![(u64::MAX, 1)]);
        assert_eq!(h.quantile_us(0.99), 1e10);
        assert!(h.quantile_us(0.99) >= h.max_us());
    }

    #[test]
    fn degenerate_observations_clamp_instead_of_panicking() {
        let mut h = LatencyHistogram::new();
        h.record(f64::NAN);
        h.record(-5.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.nonzero_buckets().collect::<Vec<_>>(), vec![(2, 2)]);
    }
}

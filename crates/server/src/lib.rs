//! # qrm-server — long-lived in-process planning service
//!
//! The workspace's request-level concurrency layer, closing the
//! ROADMAP's "batch-level service API" item. Below this crate, the
//! stack parallelises *calls* (a `plan_batch`, a `run_batch` round);
//! this crate serves *requests*: a [`PlanService`] owns one long-lived,
//! already-resolved planner per registered
//! [`PlannerChoice`](qrm_control::pipeline::PlannerChoice) + pipeline
//! configuration, accepts typed [`SubmitBatch`] requests concurrently
//! from any number of threads, admits them through a bounded gate, and
//! runs each on the process-global work-stealing pool — every
//! submission planning **warm** through its planner's context pool,
//! because the planner is constructed once at registration, never per
//! request.
//!
//! ## Layering
//!
//! ```text
//!   clients (threads)          qrm_server::PlanService
//!   ───────────────────►  registry ─ admission gate ─ stats
//!                                   │
//!                          qrm_control::Pipeline::run_batch_with
//!                          (image → detect → plan → execute rounds)
//!                                   │
//!                          qrm_core::engine  (batched task graph,
//!                                   │          warm PlanContext pool)
//!                          vendored rayon   (persistent work-stealing
//!                                             worker pool)
//! ```
//!
//! ## Determinism
//!
//! A [`BatchSpec`] expands deterministically to its workload, and a
//! submission's [`BatchReport::reports`] is **bit-identical** to running
//! that workload directly through `Pipeline::run_batch` — at any pool
//! size, any `max_inflight`, and under any concurrent submission mix
//! (`tests/service.rs` pins this for all seven planners). The service
//! adds throughput and observability, never behaviour.
//!
//! Determinism also powers the opt-in [`ResponseCache`]
//! ([`PlanServiceBuilder::cache_bytes`]): since a spec fully determines
//! its payload, repeated submissions are answered from a
//! content-addressed LRU cache in O(1), byte-identical to a recompute —
//! and cache hits bypass the admission gate entirely, so cached answers
//! never queue behind planning work.
//!
//! ## Quickstart
//!
//! ```
//! use qrm_control::pipeline::PlannerChoice;
//! use qrm_core::scheduler::QrmConfig;
//! use qrm_server::{BatchSpec, PlanService, SubmitBatch};
//!
//! # fn main() -> Result<(), qrm_server::ServiceError> {
//! // Register planners once; resolve cost is paid here, not per request.
//! let service = PlanService::builder()
//!     .max_inflight(2)
//!     .register_default("qrm", PlannerChoice::Software(QrmConfig::default()), 1)
//!     .register_default("typical", PlannerChoice::Typical, 1)
//!     .build();
//!
//! // Submit from any thread; identical specs yield identical reports.
//! let request = SubmitBatch::new("qrm", BatchSpec::new(2, 12, 7));
//! let report = service.submit(&request)?;
//! assert_eq!(report.shots(), 2);
//! assert_eq!(service.submit(&request)?.reports, report.reports);
//!
//! let stats = service.stats();
//! assert_eq!(stats.batches_served, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod request;
mod service;
mod stats;

pub use cache::ResponseCache;
pub use request::{BatchReport, BatchSpec, Scenario, ServiceError, SubmitBatch, Workload};
pub use service::{PlanService, PlanServiceBuilder, ServiceConfig, DEFAULT_TRACE_EVENT_CAP};
pub use stats::{
    CacheStats, LatencyHistogram, NetStats, PlannerStats, SchedulerTotals, ServiceStats,
};

//! Content-addressed response cache: canonical request bytes → planned
//! report payloads, LRU-evicted under a byte budget.
//!
//! Determinism is what makes this cache *correct* rather than merely
//! fast: a [`SubmitBatch`](crate::SubmitBatch) fully determines its
//! report payload (the workspace's bit-identity contract), so a hit may
//! be served without planning anything — the returned payload is
//! guaranteed byte-identical to a recompute, which
//! `crates/wire/tests/cache_bytes.rs` pins at the wire level. Keys are
//! the canonical bytes of [`SubmitBatch::cache_key`](crate::SubmitBatch::cache_key),
//! so two requests share an entry exactly when their wire encodings are
//! byte-identical.
//!
//! The cache is shared-state with interior locking (one short mutex per
//! operation, values handed out as `Arc` clones), sized by the
//! deterministic cost model of [`entry_cost`], and observable through
//! [`CacheStats`] — which upholds `hits + misses == lookups` and
//! `bytes <= budget` at every externally visible instant
//! (`crates/server/tests/cache_props.rs` proves both under concurrency).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use qrm_control::pipeline::PipelineReport;
use qrm_core::grid::AtomGrid;

use crate::stats::CacheStats;

/// Fixed per-entry bookkeeping charge (map nodes, recency index,
/// counters), in bytes.
const ENTRY_OVERHEAD: usize = 64;

/// Fixed per-report and per-round charges covering the non-grid fields
/// (counts, flags, the two `f64`s) plus container headers.
const REPORT_OVERHEAD: usize = 32;
const ROUND_OVERHEAD: usize = 48;

/// The grid's bit-plane storage: one `u64` word per 64 columns, per
/// row, plus the three dimension fields.
fn grid_cost(grid: &AtomGrid) -> usize {
    grid.width().div_ceil(64) * grid.height() * 8 + 24
}

/// The deterministic byte-cost model the cache budgets with: the key's
/// own bytes plus, per report, its final-state grid and every round's
/// post-round grid (the dominant storage, counted exactly from the
/// grids' word layout) plus fixed per-container overheads.
///
/// The model is part of the cache's *observable contract* — the
/// `bytes` field of [`CacheStats`] is exactly the sum of this function
/// over the resident entries, which is what lets the property suite
/// assert the byte budget is never exceeded.
#[must_use]
pub fn entry_cost(key: &[u8], reports: &[PipelineReport]) -> usize {
    let payload: usize = reports
        .iter()
        .map(|report| {
            REPORT_OVERHEAD
                + grid_cost(&report.final_state)
                + report
                    .rounds
                    .iter()
                    .map(|round| ROUND_OVERHEAD + grid_cost(&round.state))
                    .sum::<usize>()
        })
        .sum();
    ENTRY_OVERHEAD + key.len() + payload
}

/// One resident entry: the shared payload, its charged cost, and its
/// position in the recency order.
struct Entry {
    reports: Arc<Vec<PipelineReport>>,
    cost: usize,
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    /// Key → entry. A `BTreeMap` keeps iteration deterministic, which
    /// keeps every observable behaviour of the cache reproducible.
    entries: BTreeMap<Vec<u8>, Entry>,
    /// Recency index: stamp → key, smallest stamp = least recently
    /// used. Stamps are unique (a counter), so this is a total order.
    recency: BTreeMap<u64, Vec<u8>>,
    next_stamp: u64,
    bytes: usize,
    peak_bytes: usize,
    lookups: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

impl Inner {
    /// Moves `key`'s entry to most-recently-used.
    fn touch(&mut self, key: &[u8]) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let entry = self.entries.get_mut(key).expect("touched key is resident");
        self.recency.remove(&entry.stamp);
        entry.stamp = stamp;
        self.recency.insert(stamp, key.to_vec());
    }

    /// Drops least-recently-used entries until `bytes <= budget`.
    fn evict_to(&mut self, budget: usize) {
        while self.bytes > budget {
            let (&stamp, _) = self
                .recency
                .iter()
                .next()
                .expect("over-budget cache has a resident entry");
            let key = self.recency.remove(&stamp).expect("stamp indexed");
            let entry = self.entries.remove(&key).expect("recency key resident");
            self.bytes -= entry.cost;
            self.evictions += 1;
        }
    }
}

/// The content-addressed LRU response cache behind
/// [`PlanService`](crate::PlanService): canonical request bytes →
/// shared report payloads, bounded by a byte budget.
///
/// A budget of `0` disables the cache entirely (the default —
/// [`PlanServiceBuilder::cache_bytes`](crate::PlanServiceBuilder::cache_bytes)
/// opts in). All methods are `&self` and safe to call from any number
/// of threads.
pub struct ResponseCache {
    budget: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResponseCache")
            .field("budget_bytes", &self.budget)
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .finish_non_exhaustive()
    }
}

impl ResponseCache {
    /// Creates a cache holding at most `budget_bytes` of entries
    /// (measured by [`entry_cost`]); `0` disables caching.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        ResponseCache {
            budget: budget_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Whether the cache stores anything at all (`budget > 0`).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    /// The configured byte budget.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("response cache poisoned")
    }

    /// Looks `key` up, counting the lookup as a hit or a miss. A hit
    /// refreshes the entry to most-recently-used and returns the
    /// shared payload.
    pub fn lookup(&self, key: &[u8]) -> Option<Arc<Vec<PipelineReport>>> {
        let mut inner = self.lock();
        inner.lookups += 1;
        if let Some(entry) = inner.entries.get(key) {
            let reports = Arc::clone(&entry.reports);
            inner.hits += 1;
            inner.touch(key);
            Some(reports)
        } else {
            inner.misses += 1;
            None
        }
    }

    /// Stores `reports` under `key` as the most-recently-used entry,
    /// evicting least-recently-used entries until the budget holds
    /// again. Re-inserting a resident key replaces its payload and
    /// refreshes its recency. An entry whose [`entry_cost`] alone
    /// exceeds the budget is not stored (evicting everything else
    /// still could not make it fit); a disabled cache stores nothing.
    pub fn insert(&self, key: Vec<u8>, reports: Arc<Vec<PipelineReport>>) {
        let cost = entry_cost(&key, &reports);
        if cost > self.budget {
            return;
        }
        let mut inner = self.lock();
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        if let Some(old) = inner.entries.remove(&key) {
            inner.recency.remove(&old.stamp);
            inner.bytes -= old.cost;
        }
        inner.bytes += cost;
        inner.insertions += 1;
        inner.recency.insert(stamp, key.clone());
        inner.entries.insert(
            key,
            Entry {
                reports,
                cost,
                stamp,
            },
        );
        inner.evict_to(self.budget);
        inner.peak_bytes = inner.peak_bytes.max(inner.bytes);
    }

    /// Whether `key` is resident, **without** touching recency or the
    /// hit/miss counters — a pure probe for diagnostics and the
    /// property suite.
    #[must_use]
    pub fn contains(&self, key: &[u8]) -> bool {
        self.lock().entries.contains_key(key)
    }

    /// Resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One consistent counter snapshot. `hits + misses == lookups` and
    /// `bytes <= budget_bytes` hold in every snapshot, under any
    /// concurrency.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            lookups: inner.lookups,
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.entries.len() as u64,
            bytes: inner.bytes as u64,
            peak_bytes: inner.peak_bytes as u64,
            budget_bytes: self.budget as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(shots: usize) -> Arc<Vec<PipelineReport>> {
        let grid = AtomGrid::new(8, 8).expect("grid");
        Arc::new(
            (0..shots)
                .map(|_| PipelineReport {
                    rounds: Vec::new(),
                    final_state: grid.clone(),
                    filled: true,
                })
                .collect(),
        )
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = ResponseCache::new(0);
        assert!(!cache.enabled());
        cache.insert(vec![1], payload(1));
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&[1]), None);
        let stats = cache.stats();
        assert_eq!((stats.lookups, stats.misses, stats.insertions), (1, 1, 0));
    }

    #[test]
    fn hit_returns_the_stored_payload_and_counts() {
        let cache = ResponseCache::new(1 << 20);
        let reports = payload(2);
        cache.insert(vec![7], Arc::clone(&reports));
        assert_eq!(cache.lookup(&[7]).as_deref(), Some(reports.as_ref()));
        assert_eq!(cache.lookup(&[8]), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, entry_cost(&[7], &reports) as u64);
    }

    #[test]
    fn lru_eviction_is_exact_and_lookup_refreshes() {
        let one = payload(1);
        let cost = entry_cost(&[0], &one);
        // Room for exactly two entries.
        let cache = ResponseCache::new(2 * cost);
        cache.insert(vec![0], Arc::clone(&one));
        cache.insert(vec![1], Arc::clone(&one));
        // Refresh key 0 so key 1 becomes the LRU victim.
        assert!(cache.lookup(&[0]).is_some());
        cache.insert(vec![2], Arc::clone(&one));
        assert!(cache.contains(&[0]));
        assert!(!cache.contains(&[1]));
        assert!(cache.contains(&[2]));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.bytes <= stats.budget_bytes);
    }

    #[test]
    fn oversized_entries_are_rejected_outright() {
        let one = payload(1);
        let cache = ResponseCache::new(entry_cost(&[0], &one) - 1);
        cache.insert(vec![0], one);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn reinserting_a_key_replaces_without_double_charging() {
        let cache = ResponseCache::new(1 << 20);
        cache.insert(vec![3], payload(1));
        cache.insert(vec![3], payload(2));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.bytes, entry_cost(&[3], &payload(2)) as u64);
    }
}

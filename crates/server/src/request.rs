//! The typed request/response surface of the planning service.
//!
//! A [`SubmitBatch`] names a registered planner and carries a
//! [`BatchSpec`] — a *deterministic description* of the workload rather
//! than the workload itself. The spec expands to the same grids, zones
//! and pipeline overrides on every machine ([`BatchSpec::workload`]),
//! which is what makes the service testable end to end: a client, the
//! service, and a direct
//! [`Pipeline::run_batch`](qrm_control::pipeline::Pipeline) call
//! can all materialise the identical batch and compare reports
//! bit-for-bit.
//!
//! [`Scenario`] extends the spec beyond uniform loading: dead-trap
//! defect maps, in-transit atom loss, multi-zone target patterns and
//! spatially correlated fills — each still a pure function of the spec,
//! so every scenario inherits the same bit-identity contract. Setting
//! [`SubmitBatch::trace`] additionally asks the service to return a
//! replayable [`ShotTrace`] per shot.

use qrm_core::error::Error;
use qrm_core::geometry::Rect;
use qrm_core::grid::AtomGrid;
use qrm_core::loading::seeded_rng;
use qrm_core::trace::ShotTrace;
use rand::Rng;

use qrm_control::pipeline::{PipelineConfig, PipelineReport, Zone};

/// Salt applied to [`BatchSpec::seed`] for the defect-map stream, so
/// dead-trap placement is independent of the loading stream (the truth
/// grids of a `DefectMap` batch match the `UniformFill` grids site for
/// site outside the dead traps).
const DEFECT_SALT: u64 = 0xdefe_c7ab_1e5a_17e5;

/// How a [`BatchSpec`] loads the array and shapes its target pattern.
///
/// Every variant is a pure function of the spec — two equal specs
/// expand to bit-identical workloads — so hostile scenarios inherit
/// the full determinism contract of the uniform path. The default,
/// [`UniformFill`](Scenario::UniformFill), reproduces the pre-scenario
/// workload construction byte for byte (and is omitted from the wire
/// encoding, keeping old fixtures canonical).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scenario {
    /// Independent per-trap Bernoulli loading at `fill` against the
    /// single centred target — the classic workload.
    #[default]
    UniformFill,
    /// Dead traps: a deterministic defect map (drawn from
    /// `seed ^ DEFECT_SALT`) clears a fraction of the non-target sites
    /// in every shot's loaded grid, starving the reservoir near the
    /// defects.
    DefectMap {
        /// Probability that a site is a dead trap. Sites inside the
        /// target are never killed (the workload must stay feasible).
        dead_fraction: f64,
    },
    /// In-transit atom loss: every move loses each flying atom with
    /// this probability, and the pipeline's round budget is doubled so
    /// refills can converge.
    AtomLoss {
        /// Per-move single-atom loss probability.
        loss_prob: f64,
    },
    /// A `rows x cols` lattice of independent target zones, each a
    /// centred ~60 % pattern within its tile — non-square, off-centre
    /// (relative to the full array) targets that exercise the planners'
    /// sub-grid path. The round budget scales with the zone count.
    Zones {
        /// Zone rows; must divide `size` into even tiles of side >= 4.
        rows: usize,
        /// Zone columns; same divisibility constraints as `rows`.
        cols: usize,
    },
    /// Spatially correlated loading: occupancy is drawn on a coarse
    /// `grain x grain`-site cell lattice at `fill`, then each site flips
    /// its cell's value with probability `flip_prob` — clumps and voids
    /// instead of independent traps.
    CorrelatedFill {
        /// Correlation length: side of a coherently-loaded cell, in
        /// sites.
        grain: usize,
        /// Per-site probability of disagreeing with the cell value.
        flip_prob: f64,
    },
}

/// A [`BatchSpec`] expanded to the concrete inputs of a pipeline run:
/// the true occupancy grids, the target zones, and the pipeline
/// overrides the scenario demands.
///
/// Deterministic — every call, on any machine, yields bit-identical
/// grids — so the equivalence contract between
/// [`submit`](crate::PlanService::submit) and a direct
/// [`run_batch_zones_tracked`](qrm_control::pipeline::Pipeline::run_batch_zones_tracked)
/// is checkable by anyone holding the spec.
#[derive(Debug, Clone)]
pub struct Workload {
    /// True occupancy grids, one per shot.
    pub truths: Vec<AtomGrid>,
    /// Target zones, in fill-priority order (a single full-array zone
    /// for every scenario except [`Scenario::Zones`]).
    pub zones: Vec<Zone>,
    /// Transport loss probability override ([`Scenario::AtomLoss`]),
    /// if the scenario sets one.
    pub loss_prob: Option<f64>,
    /// Multiplier on the pipeline's `max_rounds` budget (>= 1).
    pub rounds_factor: usize,
}

impl Workload {
    /// Applies this workload's overrides to a base pipeline
    /// configuration: the scenario's loss probability (when set) and
    /// the scaled round budget.
    #[must_use]
    pub fn configure(&self, base: &PipelineConfig) -> PipelineConfig {
        let mut config = base.clone();
        if let Some(loss_prob) = self.loss_prob {
            config.loss_prob = loss_prob;
        }
        config.max_rounds *= self.rounds_factor.max(1);
        config
    }
}

/// Deterministic description of one batch workload: `shots` random
/// `size x size` occupancy grids at `fill` probability (drawn from a
/// generator seeded with `seed`) against a centred target of ~60 %
/// linear size — optionally reshaped by a hostile [`Scenario`].
///
/// The spec is the unit of reproducibility: two equal specs expand to
/// bit-identical workloads, and `seed` doubles as the base seed of the
/// batched pipeline run (each shot then derives its own stream via
/// `Pipeline::shot_rng`).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpec {
    /// Independent shots in the batch.
    pub shots: usize,
    /// Array side length (QRM requires it even).
    pub size: usize,
    /// Per-trap loading probability of the generated grids.
    pub fill: f64,
    /// Seed of the workload generator *and* base seed of the batched
    /// pipeline run.
    pub seed: u64,
    /// Loading/target scenario. The default `UniformFill` reproduces
    /// the pre-scenario workload byte for byte and is omitted from the
    /// wire encoding.
    pub scenario: Scenario,
}

impl BatchSpec {
    /// Creates a uniform-fill spec with the default 55 % loading
    /// probability.
    pub fn new(shots: usize, size: usize, seed: u64) -> Self {
        BatchSpec {
            shots,
            size,
            fill: 0.55,
            seed,
            scenario: Scenario::UniformFill,
        }
    }

    /// Replaces the loading probability.
    #[must_use]
    pub fn with_fill(mut self, fill: f64) -> Self {
        self.fill = fill;
        self
    }

    /// Replaces the scenario.
    #[must_use]
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// The centred target rectangle the spec implies (~60 % linear size,
    /// forced even, at least 2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTarget`] for sizes too small to hold the
    /// target (`size < 2`).
    pub fn target(&self) -> Result<Rect, Error> {
        let side = ((self.size * 3 / 5) & !1).max(2);
        Rect::centered(self.size, self.size, side, side)
    }

    /// Checks the spec's parameters for semantic validity (probability
    /// ranges, zone divisibility) without materialising the workload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), Error> {
        fn probability(p: f64, reason: &'static str) -> Result<(), Error> {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(Error::InvalidSpec { reason })
            }
        }
        probability(self.fill, "fill outside [0, 1]")?;
        match self.scenario {
            Scenario::UniformFill => {}
            Scenario::DefectMap { dead_fraction } => {
                probability(dead_fraction, "dead_fraction outside [0, 1]")?;
            }
            Scenario::AtomLoss { loss_prob } => {
                probability(loss_prob, "loss_prob outside [0, 1]")?;
            }
            Scenario::Zones { rows, cols } => {
                if rows == 0 || cols == 0 {
                    return Err(Error::InvalidSpec {
                        reason: "zone lattice has zero extent",
                    });
                }
                if !self.size.is_multiple_of(rows) || !self.size.is_multiple_of(cols) {
                    return Err(Error::InvalidSpec {
                        reason: "size not divisible into the zone lattice",
                    });
                }
                let (tile_h, tile_w) = (self.size / rows, self.size / cols);
                if tile_h % 2 != 0 || tile_w % 2 != 0 || tile_h < 4 || tile_w < 4 {
                    return Err(Error::InvalidSpec {
                        reason: "zone tiles must be even-sided and at least 4 sites",
                    });
                }
            }
            Scenario::CorrelatedFill { grain, flip_prob } => {
                if grain == 0 {
                    return Err(Error::InvalidSpec {
                        reason: "correlation grain must be at least 1",
                    });
                }
                probability(flip_prob, "flip_prob outside [0, 1]")?;
            }
        }
        Ok(())
    }

    /// Expands the spec into its concrete [`Workload`]. Deterministic —
    /// every call, on any machine, yields bit-identical grids and
    /// zones.
    ///
    /// # Errors
    ///
    /// Propagates [`validate`](Self::validate) and
    /// [`target`](Self::target) failures for degenerate parameters.
    pub fn workload(&self) -> Result<Workload, Error> {
        self.validate()?;
        let size = self.size;
        let full_target = self.target()?;
        let full_zone = || vec![Zone::full_array(size, size, full_target)];
        match self.scenario {
            Scenario::UniformFill => Ok(Workload {
                truths: self.uniform_truths(),
                zones: full_zone(),
                loss_prob: None,
                rounds_factor: 1,
            }),
            Scenario::DefectMap { dead_fraction } => {
                // Draw the defect stream over every site (including the
                // protected target interior) so the map is independent
                // of the target geometry.
                let mut defect_rng = seeded_rng(self.seed ^ DEFECT_SALT);
                let mut dead = Vec::new();
                for row in 0..size {
                    for col in 0..size {
                        let hit = defect_rng.gen_bool(dead_fraction);
                        let in_target = row >= full_target.row
                            && row < full_target.row + full_target.height
                            && col >= full_target.col
                            && col < full_target.col + full_target.width;
                        if hit && !in_target {
                            dead.push((row, col));
                        }
                    }
                }
                let mut truths = self.uniform_truths();
                for grid in &mut truths {
                    for &(row, col) in &dead {
                        grid.set_unchecked(row, col, false);
                    }
                }
                Ok(Workload {
                    truths,
                    zones: full_zone(),
                    loss_prob: None,
                    rounds_factor: 1,
                })
            }
            Scenario::AtomLoss { loss_prob } => Ok(Workload {
                truths: self.uniform_truths(),
                zones: full_zone(),
                loss_prob: Some(loss_prob),
                rounds_factor: 2,
            }),
            Scenario::Zones { rows, cols } => {
                let (tile_h, tile_w) = (size / rows, size / cols);
                let zone_h = ((tile_h * 3 / 5) & !1).max(2);
                let zone_w = ((tile_w * 3 / 5) & !1).max(2);
                let local = Rect::centered(tile_h, tile_w, zone_h, zone_w)?;
                let mut zones = Vec::with_capacity(rows * cols);
                for tr in 0..rows {
                    for tc in 0..cols {
                        let (origin_r, origin_c) = (tr * tile_h, tc * tile_w);
                        zones.push(Zone {
                            tile: Rect::new(origin_r, origin_c, tile_h, tile_w),
                            target: Rect::new(
                                origin_r + local.row,
                                origin_c + local.col,
                                zone_h,
                                zone_w,
                            ),
                        });
                    }
                }
                Ok(Workload {
                    truths: self.uniform_truths(),
                    zones,
                    loss_prob: None,
                    rounds_factor: rows * cols,
                })
            }
            Scenario::CorrelatedFill { grain, flip_prob } => {
                let cells = size.div_ceil(grain);
                let mut rng = seeded_rng(self.seed);
                let mut truths = Vec::with_capacity(self.shots);
                for _ in 0..self.shots {
                    let lattice: Vec<bool> = (0..cells * cells)
                        .map(|_| rng.gen_bool(self.fill))
                        .collect();
                    let mut grid = AtomGrid::new(size, size)?;
                    for row in 0..size {
                        for col in 0..size {
                            let cell = lattice[(row / grain) * cells + col / grain];
                            let occupied = cell != rng.gen_bool(flip_prob);
                            grid.set_unchecked(row, col, occupied);
                        }
                    }
                    truths.push(grid);
                }
                Ok(Workload {
                    truths,
                    zones: full_zone(),
                    loss_prob: None,
                    rounds_factor: 1,
                })
            }
        }
    }

    /// The classic loading stream: `shots` independent uniform grids
    /// from `seeded_rng(seed)` — byte-identical to the pre-scenario
    /// workload construction.
    fn uniform_truths(&self) -> Vec<AtomGrid> {
        let mut rng = seeded_rng(self.seed);
        (0..self.shots)
            .map(|_| AtomGrid::random(self.size, self.size, self.fill, &mut rng))
            .collect()
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for BatchSpec {
    fn serialize(&self) -> serde::Value {
        let mut fields = vec![
            ("shots", serde::Serialize::serialize(&self.shots)),
            ("size", serde::Serialize::serialize(&self.size)),
            ("fill", serde::Serialize::serialize(&self.fill)),
            ("seed", serde::Serialize::serialize(&self.seed)),
        ];
        // Omitted at the default: pre-scenario specs stay canonical.
        if self.scenario != Scenario::UniformFill {
            fields.push(("scenario", serde::Serialize::serialize(&self.scenario)));
        }
        serde::Value::record(fields)
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for BatchSpec {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = value.as_map("BatchSpec")?;
        Ok(BatchSpec {
            shots: serde::field(map, "BatchSpec", "shots")?,
            size: serde::field(map, "BatchSpec", "size")?,
            fill: serde::field(map, "BatchSpec", "fill")?,
            seed: serde::field(map, "BatchSpec", "seed")?,
            scenario: serde::field::<Option<Scenario>>(map, "BatchSpec", "scenario")?
                .unwrap_or_default(),
        })
    }
}

/// A batch submission: which registered planner should run which
/// workload, and whether to return the replayable move traces.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitBatch {
    /// Registration name (chosen at
    /// [`register`](crate::PlanServiceBuilder::register) time).
    pub planner: String,
    /// The workload to plan.
    pub spec: BatchSpec,
    /// Ask the service to record and return one [`ShotTrace`] per shot
    /// in [`BatchReport::trace`]. Tracing only observes: `reports` are
    /// bit-identical with it on or off. Traced responses bypass the
    /// response cache and are subject to the service's event cap
    /// (`trace_too_large`).
    pub trace: bool,
}

impl SubmitBatch {
    /// Creates a submission (without trace capture).
    pub fn new(planner: impl Into<String>, spec: BatchSpec) -> Self {
        SubmitBatch {
            planner: planner.into(),
            spec,
            trace: false,
        }
    }

    /// Sets whether the response should carry replayable move traces.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// The canonical content-address of this submission: an injective
    /// byte rendering of exactly the fields the `/v1` wire encoding
    /// carries — length-prefixed planner name, then `shots`, `size`,
    /// `fill` (as its IEEE-754 bit pattern) and `seed`, all
    /// little-endian `u64`. A submission whose scenario or trace flag
    /// differs from the defaults appends a suffix: a one-byte scenario
    /// tag, the scenario's parameters (little-endian `u64` / IEEE-754
    /// bits), and the trace flag as one byte. Default submissions
    /// append nothing, so their keys are byte-identical to the
    /// pre-scenario release — a router ring built from old keys routes
    /// the same requests to the same backends.
    ///
    /// Canonicalization rule (`docs/PROTOCOL.md`): two submissions have
    /// equal cache keys **iff** their wire encodings are byte-identical.
    /// The length prefix makes the planner/spec boundary unambiguous,
    /// the wire codec's shortest-round-trip float writer maps
    /// distinct `fill` bit patterns to distinct JSON, and the suffix
    /// tag disambiguates the scenario variants — so equality of
    /// keys, of `SubmitBatch` values, and of wire bytes all coincide
    /// (pinned by a proptest in `crates/wire/tests/cache_bytes.rs`).
    /// Since a spec fully determines its report payload, equal keys
    /// also mean interchangeable responses — which is what lets the
    /// response cache and the router's consistent-hash ring both
    /// address by these bytes.
    #[must_use]
    pub fn cache_key(&self) -> Vec<u8> {
        let mut key = Vec::with_capacity(self.planner.len() + 64);
        key.extend_from_slice(&(self.planner.len() as u64).to_le_bytes());
        key.extend_from_slice(self.planner.as_bytes());
        key.extend_from_slice(&(self.spec.shots as u64).to_le_bytes());
        key.extend_from_slice(&(self.spec.size as u64).to_le_bytes());
        key.extend_from_slice(&self.spec.fill.to_bits().to_le_bytes());
        key.extend_from_slice(&self.spec.seed.to_le_bytes());
        if self.spec.scenario != Scenario::UniformFill || self.trace {
            match self.spec.scenario {
                Scenario::UniformFill => key.push(0),
                Scenario::DefectMap { dead_fraction } => {
                    key.push(1);
                    key.extend_from_slice(&dead_fraction.to_bits().to_le_bytes());
                }
                Scenario::AtomLoss { loss_prob } => {
                    key.push(2);
                    key.extend_from_slice(&loss_prob.to_bits().to_le_bytes());
                }
                Scenario::Zones { rows, cols } => {
                    key.push(3);
                    key.extend_from_slice(&(rows as u64).to_le_bytes());
                    key.extend_from_slice(&(cols as u64).to_le_bytes());
                }
                Scenario::CorrelatedFill { grain, flip_prob } => {
                    key.push(4);
                    key.extend_from_slice(&(grain as u64).to_le_bytes());
                    key.extend_from_slice(&flip_prob.to_bits().to_le_bytes());
                }
            }
            key.push(u8::from(self.trace));
        }
        key
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for SubmitBatch {
    fn serialize(&self) -> serde::Value {
        let mut fields = vec![
            ("planner", serde::Serialize::serialize(&self.planner)),
            ("spec", serde::Serialize::serialize(&self.spec)),
        ];
        // Omitted when false: pre-trace submissions stay canonical.
        if self.trace {
            fields.push(("trace", serde::Serialize::serialize(&self.trace)));
        }
        serde::Value::record(fields)
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for SubmitBatch {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let map = value.as_map("SubmitBatch")?;
        Ok(SubmitBatch {
            planner: serde::field(map, "SubmitBatch", "planner")?,
            spec: serde::field(map, "SubmitBatch", "spec")?,
            trace: serde::field::<Option<bool>>(map, "SubmitBatch", "trace")?.unwrap_or(false),
        })
    }
}

/// The service's response to one [`SubmitBatch`].
///
/// `reports` is the deterministic payload: it is **bit-identical** to
/// calling `Pipeline::run_batch` directly with the same configuration
/// and the spec's workload, regardless of how many submissions the
/// service was handling concurrently (the integration suite pins this
/// for every planner). `wall_us` is measurement, not payload — it
/// varies run to run and is excluded from the equivalence contract.
/// `trace`, when requested, is payload too: replaying shot `i`'s trace
/// on the spec's truth grid `i` reproduces `reports[i].final_state`
/// bit-exactly.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Deserialize))]
pub struct BatchReport {
    /// Registration name that served the batch.
    pub planner: String,
    /// Per-shot pipeline reports, in shot order.
    pub reports: Vec<PipelineReport>,
    /// Wall-clock service time of the batch (µs), queueing excluded.
    pub wall_us: f64,
    /// Replayable per-shot move traces, in shot order — present iff
    /// the submission set [`SubmitBatch::trace`].
    pub trace: Option<Vec<ShotTrace>>,
}

#[cfg(feature = "serde")]
impl serde::Serialize for BatchReport {
    fn serialize(&self) -> serde::Value {
        let mut fields = vec![
            ("planner", serde::Serialize::serialize(&self.planner)),
            ("reports", serde::Serialize::serialize(&self.reports)),
            ("wall_us", serde::Serialize::serialize(&self.wall_us)),
        ];
        // Omitted when absent: untraced reports stay canonical.
        if self.trace.is_some() {
            fields.push(("trace", serde::Serialize::serialize(&self.trace)));
        }
        serde::Value::record(fields)
    }
}

impl BatchReport {
    /// Shots whose target ended defect-free.
    pub fn filled(&self) -> usize {
        self.reports.iter().filter(|r| r.filled).count()
    }

    /// Shots in the batch.
    pub fn shots(&self) -> usize {
        self.reports.len()
    }
}

/// Why a submission failed.
#[derive(Debug)]
pub enum ServiceError {
    /// The submission named a planner no registration covers.
    UnknownPlanner(String),
    /// Workload expansion or planning/execution failed.
    Planning(Error),
    /// The requested trace exceeds the service's event cap
    /// ([`trace_event_cap`](crate::PlanServiceBuilder::trace_event_cap)).
    TraceTooLarge {
        /// Events the batch's traces recorded.
        events: usize,
        /// The service's configured cap.
        cap: usize,
    },
}

impl ServiceError {
    /// Stable machine-readable code for this error, used verbatim as
    /// the `code` of a wire-level `ErrorReply` (see
    /// `docs/PROTOCOL.md`). Codes are part of the protocol: existing
    /// values never change meaning, new variants add new codes.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownPlanner(_) => "unknown_planner",
            ServiceError::Planning(_) => "planning_failed",
            ServiceError::TraceTooLarge { .. } => "trace_too_large",
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownPlanner(name) => {
                write!(f, "no planner registered under {name:?}")
            }
            ServiceError::Planning(err) => write!(f, "planning failed: {err}"),
            ServiceError::TraceTooLarge { events, cap } => {
                write!(f, "trace of {events} events exceeds the cap of {cap}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::UnknownPlanner(_) => None,
            ServiceError::Planning(err) => Some(err),
            ServiceError::TraceTooLarge { .. } => None,
        }
    }
}

impl From<Error> for ServiceError {
    fn from(err: Error) -> Self {
        ServiceError::Planning(err)
    }
}

//! The typed request/response surface of the planning service.
//!
//! A [`SubmitBatch`] names a registered planner and carries a
//! [`BatchSpec`] — a *deterministic description* of the workload rather
//! than the workload itself. The spec expands to the same grids and
//! target on every machine ([`BatchSpec::workload`]), which is what
//! makes the service testable end to end: a client, the service, and a
//! direct [`Pipeline::run_batch`](qrm_control::pipeline::Pipeline) call
//! can all materialise the identical batch and compare reports
//! bit-for-bit.

use qrm_core::error::Error;
use qrm_core::geometry::Rect;
use qrm_core::grid::AtomGrid;
use qrm_core::loading::seeded_rng;

use qrm_control::pipeline::PipelineReport;

/// Deterministic description of one batch workload: `shots` random
/// `size x size` occupancy grids at `fill` probability (drawn from a
/// generator seeded with `seed`) against a centred target of ~60 %
/// linear size — the same construction the benchmark harness's
/// end-to-end sweeps use.
///
/// The spec is the unit of reproducibility: two equal specs expand to
/// bit-identical workloads, and `seed` doubles as the base seed of the
/// batched pipeline run (each shot then derives its own stream via
/// `Pipeline::shot_rng`).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatchSpec {
    /// Independent shots in the batch.
    pub shots: usize,
    /// Array side length (QRM requires it even).
    pub size: usize,
    /// Per-trap loading probability of the generated grids.
    pub fill: f64,
    /// Seed of the workload generator *and* base seed of the batched
    /// pipeline run.
    pub seed: u64,
}

impl BatchSpec {
    /// Creates a spec with the default 55 % loading probability.
    pub fn new(shots: usize, size: usize, seed: u64) -> Self {
        BatchSpec {
            shots,
            size,
            fill: 0.55,
            seed,
        }
    }

    /// Replaces the loading probability.
    #[must_use]
    pub fn with_fill(mut self, fill: f64) -> Self {
        self.fill = fill;
        self
    }

    /// The centred target rectangle the spec implies (~60 % linear size,
    /// forced even, at least 2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTarget`] for sizes too small to hold the
    /// target (`size < 2`).
    pub fn target(&self) -> Result<Rect, Error> {
        let side = ((self.size * 3 / 5) & !1).max(2);
        Rect::centered(self.size, self.size, side, side)
    }

    /// Expands the spec into its concrete workload: the true occupancy
    /// grids and the common target. Deterministic — every call, on any
    /// machine, yields bit-identical grids — so the equivalence contract
    /// between [`submit`](crate::PlanService::submit) and a direct
    /// `Pipeline::run_batch` is checkable by anyone holding the spec.
    ///
    /// # Errors
    ///
    /// Propagates [`target`](Self::target) failures for degenerate
    /// sizes.
    pub fn workload(&self) -> Result<(Vec<AtomGrid>, Rect), Error> {
        let target = self.target()?;
        let mut rng = seeded_rng(self.seed);
        let truths = (0..self.shots)
            .map(|_| AtomGrid::random(self.size, self.size, self.fill, &mut rng))
            .collect();
        Ok((truths, target))
    }
}

/// A batch submission: which registered planner should run which
/// workload.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SubmitBatch {
    /// Registration name (chosen at
    /// [`register`](crate::PlanServiceBuilder::register) time).
    pub planner: String,
    /// The workload to plan.
    pub spec: BatchSpec,
}

impl SubmitBatch {
    /// Creates a submission.
    pub fn new(planner: impl Into<String>, spec: BatchSpec) -> Self {
        SubmitBatch {
            planner: planner.into(),
            spec,
        }
    }

    /// The canonical content-address of this submission: an injective
    /// byte rendering of exactly the fields the `/v1` wire encoding
    /// carries — length-prefixed planner name, then `shots`, `size`,
    /// `fill` (as its IEEE-754 bit pattern) and `seed`, all
    /// little-endian `u64`.
    ///
    /// Canonicalization rule (`docs/PROTOCOL.md`): two submissions have
    /// equal cache keys **iff** their wire encodings are byte-identical.
    /// The length prefix makes the planner/spec boundary unambiguous,
    /// and the wire codec's shortest-round-trip float writer maps
    /// distinct `fill` bit patterns to distinct JSON — so equality of
    /// keys, of `SubmitBatch` values, and of wire bytes all coincide
    /// (pinned by a proptest in `crates/wire/tests/cache_bytes.rs`).
    /// Since a spec fully determines its report payload, equal keys
    /// also mean interchangeable responses — which is what lets the
    /// response cache and the router's consistent-hash ring both
    /// address by these bytes.
    #[must_use]
    pub fn cache_key(&self) -> Vec<u8> {
        let mut key = Vec::with_capacity(self.planner.len() + 40);
        key.extend_from_slice(&(self.planner.len() as u64).to_le_bytes());
        key.extend_from_slice(self.planner.as_bytes());
        key.extend_from_slice(&(self.spec.shots as u64).to_le_bytes());
        key.extend_from_slice(&(self.spec.size as u64).to_le_bytes());
        key.extend_from_slice(&self.spec.fill.to_bits().to_le_bytes());
        key.extend_from_slice(&self.spec.seed.to_le_bytes());
        key
    }
}

/// The service's response to one [`SubmitBatch`].
///
/// `reports` is the deterministic payload: it is **bit-identical** to
/// calling `Pipeline::run_batch` directly with the same configuration
/// and the spec's workload, regardless of how many submissions the
/// service was handling concurrently (the integration suite pins this
/// for every planner). `wall_us` is measurement, not payload — it
/// varies run to run and is excluded from the equivalence contract.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BatchReport {
    /// Registration name that served the batch.
    pub planner: String,
    /// Per-shot pipeline reports, in shot order.
    pub reports: Vec<PipelineReport>,
    /// Wall-clock service time of the batch (µs), queueing excluded.
    pub wall_us: f64,
}

impl BatchReport {
    /// Shots whose target ended defect-free.
    pub fn filled(&self) -> usize {
        self.reports.iter().filter(|r| r.filled).count()
    }

    /// Shots in the batch.
    pub fn shots(&self) -> usize {
        self.reports.len()
    }
}

/// Why a submission failed.
#[derive(Debug)]
pub enum ServiceError {
    /// The submission named a planner no registration covers.
    UnknownPlanner(String),
    /// Workload expansion or planning/execution failed.
    Planning(Error),
}

impl ServiceError {
    /// Stable machine-readable code for this error, used verbatim as
    /// the `code` of a wire-level `ErrorReply` (see
    /// `docs/PROTOCOL.md`). Codes are part of the protocol: existing
    /// values never change meaning, new variants add new codes.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownPlanner(_) => "unknown_planner",
            ServiceError::Planning(_) => "planning_failed",
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownPlanner(name) => {
                write!(f, "no planner registered under {name:?}")
            }
            ServiceError::Planning(err) => write!(f, "planning failed: {err}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::UnknownPlanner(_) => None,
            ServiceError::Planning(err) => Some(err),
        }
    }
}

impl From<Error> for ServiceError {
    fn from(err: Error) -> Self {
        ServiceError::Planning(err)
    }
}

//! Property suite for the content-addressed response cache
//! (`qrm_server::cache`): the byte budget is never exceeded, eviction
//! order is *exactly* LRU (checked against a reference model), and
//! interleaved concurrent lookups/inserts keep the counters consistent
//! (`hits + misses == lookups`, `bytes <= budget`).
//!
//! The remaining cache satellite — a hit's payload re-encodes to bytes
//! identical to a recompute — needs the wire codec and lives in
//! `crates/wire/tests/cache_bytes.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qrm_control::pipeline::PipelineReport;
use qrm_core::grid::AtomGrid;
use qrm_server::cache::{entry_cost, ResponseCache};

/// A payload whose [`entry_cost`] scales with `shots`, so budgets can
/// be tuned to hold an exact number of entries.
fn payload(shots: usize) -> Arc<Vec<PipelineReport>> {
    let grid = AtomGrid::new(8, 8).expect("grid");
    Arc::new(
        (0..shots)
            .map(|_| PipelineReport {
                rounds: Vec::new(),
                final_state: grid.clone(),
                filled: true,
            })
            .collect(),
    )
}

/// One scripted cache operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert `key` with a payload of `shots` reports.
    Insert { key: u8, shots: usize },
    /// Probe `key` (hit refreshes recency).
    Lookup { key: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..6, 1usize..4, any::<bool>()).prop_map(|(key, shots, is_insert)| {
        if is_insert {
            Op::Insert { key, shots }
        } else {
            Op::Lookup { key }
        }
    })
}

/// Reference model: MRU-first list of `(key, cost)`. Mirrors the
/// documented semantics exactly — insert replaces + refreshes, a
/// too-big entry is rejected outright, hits refresh, eviction pops from
/// the LRU end until the budget holds.
#[derive(Default)]
struct Model {
    entries: Vec<(u8, usize)>,
}

impl Model {
    fn bytes(&self) -> usize {
        self.entries.iter().map(|(_, cost)| cost).sum()
    }

    fn insert(&mut self, key: u8, cost: usize, budget: usize) {
        if cost > budget {
            return;
        }
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, cost));
        while self.bytes() > budget {
            self.entries.pop();
        }
    }

    fn lookup(&mut self, key: u8) -> bool {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            let entry = self.entries.remove(pos);
            self.entries.insert(0, entry);
            true
        } else {
            false
        }
    }

    fn contains(&self, key: u8) -> bool {
        self.entries.iter().any(|(k, _)| *k == key)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every operation: residency matches the reference LRU model
    /// key for key (so eviction picked exactly the least recently used
    /// victims), charged bytes match the model's sum and never exceed
    /// the budget, and the counter identity holds.
    #[test]
    fn lru_eviction_matches_the_reference_model(
        budget in 200usize..1200,
        ops in proptest::collection::vec(arb_op(), 1..80),
    ) {
        let cache = ResponseCache::new(budget);
        let mut model = Model::default();
        let mut expected_hits = 0u64;
        let mut expected_lookups = 0u64;

        for op in ops {
            match op {
                Op::Insert { key, shots } => {
                    let reports = payload(shots);
                    let cost = entry_cost(&[key], &reports);
                    cache.insert(vec![key], reports);
                    model.insert(key, cost, budget);
                }
                Op::Lookup { key } => {
                    let hit = cache.lookup(&[key]).is_some();
                    prop_assert_eq!(hit, model.lookup(key));
                    expected_lookups += 1;
                    expected_hits += u64::from(hit);
                }
            }
            let stats = cache.stats();
            prop_assert!(stats.bytes <= budget as u64, "budget exceeded: {stats:?}");
            prop_assert_eq!(stats.bytes, model.bytes() as u64);
            prop_assert_eq!(stats.entries, model.entries.len() as u64);
            prop_assert_eq!(stats.hits + stats.misses, stats.lookups);
            prop_assert_eq!(stats.lookups, expected_lookups);
            prop_assert_eq!(stats.hits, expected_hits);
            for key in 0u8..6 {
                prop_assert_eq!(
                    cache.contains(&[key]),
                    model.contains(key),
                    "residency diverged on key {} ",
                    key
                );
            }
        }
    }

    /// A resident entry's payload comes back exactly as stored,
    /// whatever churn surrounds it.
    #[test]
    fn hits_return_the_stored_payload(
        shots in 1usize..4,
        churn in proptest::collection::vec(arb_op(), 0..40),
    ) {
        // Budget large enough that key 200 (outside the churn key
        // space) is never evicted.
        let cache = ResponseCache::new(1 << 20);
        let stored = payload(shots);
        cache.insert(vec![200], Arc::clone(&stored));
        for op in churn {
            match op {
                Op::Insert { key, shots } => cache.insert(vec![key], payload(shots)),
                Op::Lookup { key } => {
                    cache.lookup(&[key]);
                }
            }
        }
        let got = cache.lookup(&[200]).expect("entry survives under-budget churn");
        prop_assert_eq!(got.as_ref(), stored.as_ref());
    }
}

/// Interleaved concurrent lookups and inserts from several threads:
/// the counter identity `hits + misses == lookups` survives, charged
/// bytes stay within budget, and the entry gauge matches residency.
#[test]
fn concurrent_ops_keep_counters_consistent() {
    let one = payload(1);
    let budget = 6 * entry_cost(&[0], &one); // room for ~6 of 8 keys
    let cache = ResponseCache::new(budget);
    let lookups = AtomicU64::new(0);
    let threads = 4;
    let ops_per_thread = 400;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let (cache, lookups) = (&cache, &lookups);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(9000 + t as u64);
                for _ in 0..ops_per_thread {
                    let key = rng.gen_range(0..8u8);
                    if rng.gen_bool(0.5) {
                        cache.insert(vec![key], payload(rng.gen_range(1..3usize)));
                    } else {
                        cache.lookup(&[key]);
                        lookups.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.lookups, lookups.load(Ordering::Relaxed));
    assert_eq!(stats.hits + stats.misses, stats.lookups);
    assert!(stats.bytes <= budget as u64);
    assert!(stats.peak_bytes <= budget as u64);
    let resident = (0u8..8).filter(|&k| cache.contains(&[k])).count();
    assert_eq!(stats.entries, resident as u64);
    assert_eq!(
        stats.bytes > 0,
        stats.entries > 0,
        "bytes and entries agree on emptiness"
    );
}

//! # qrm-baselines — published atom-rearrangement baselines
//!
//! Reimplementations of the three algorithms the paper benchmarks QRM
//! against in Fig. 7(b), each implementing
//! [`Planner`](qrm_core::planner::Planner) so they can be compared
//! head-to-head with QRM on identical instances:
//!
//! * [`tetris`] — Wang et al., *Accelerating the assembly of defect-free
//!   atomic arrays with maximum parallelisms* (PRApplied 19, 054032,
//!   2023): per-line assignment of atoms to target sites followed by
//!   displacement-grouped parallel moves.
//! * [`psca`] — Tian et al., *Parallel assembly of arbitrary defect-free
//!   atom arrays with a multitweezer algorithm* (PRApplied 19, 034048,
//!   2023): per-column parallel compression with row redistribution.
//! * [`mta1`] — Ebadi et al., *Quantum phases of matter on a 256-atom
//!   programmable quantum simulator* (Nature 595, 2021): sequential
//!   per-defect single-tweezer moves along collision-free paths.
//!
//! The crate also ships [`hybrid`] — QRM followed by targeted
//! single-tweezer repair — an extension combining the paper's fast
//! parallel schedule with MTA1-class assembly success.
//!
//! These are structural reimplementations from the published algorithm
//! descriptions, not ports of the authors' code (which is not public);
//! DESIGN.md §4 records the substitution. What the Fig. 7(b) benchmark
//! compares is *schedule-analysis time*, which is governed by the
//! algorithmic structure reproduced here: bit-parallel single passes
//! (QRM) vs per-line assignment DP (Tetris) vs iterative scalar
//! compression with per-move rescans (PSCA) vs per-defect path search
//! (MTA1).
//!
//! ## Quick example
//!
//! Every baseline is a [`Planner`](qrm_core::planner::Planner), so any
//! of them drops into code written against the trait:
//!
//! ```
//! use qrm_baselines::TetrisScheduler;
//! use qrm_core::geometry::Rect;
//! use qrm_core::grid::AtomGrid;
//! use qrm_core::loading::seeded_rng;
//! use qrm_core::planner::plan_and_execute;
//!
//! # fn main() -> Result<(), qrm_core::Error> {
//! let mut rng = seeded_rng(2);
//! let grid = AtomGrid::random(16, 16, 0.6, &mut rng);
//! let target = Rect::centered(16, 16, 8, 8)?;
//!
//! let (plan, report) = plan_and_execute(&TetrisScheduler::default(), &grid, &target)?;
//! assert_eq!(report.final_grid, plan.predicted);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hybrid;
pub mod mta1;
pub mod psca;
pub mod stepper;
pub mod tetris;

pub use hybrid::HybridScheduler;
pub use mta1::Mta1Scheduler;
pub use psca::PscaScheduler;
pub use tetris::TetrisScheduler;

//! Hybrid QRM + targeted repair (extension; the paper's §VI future-work
//! direction of combining the fast parallel schedule with completeness).
//!
//! QRM's greedy kernel occasionally converges with a few corner defects,
//! and no QRM configuration can repair a quadrant-starved instance
//! (atoms never cross quadrant boundaries). The hybrid runs QRM first —
//! microseconds of analysis, massively parallel moves — then routes
//! single reservoir atoms to any residual defects MTA1-style. The repair
//! stage costs `O(defects x W^2)` analysis but typically handles 0–3
//! defects, keeping the total analysis time close to pure QRM while
//! reaching MTA1-class assembly success.
//!
//! Like MTA1, the repair legs fly over occupied traps, so hybrid
//! schedules execute under
//! [`PathPolicy::EndpointsOnly`](qrm_core::executor::PathPolicy) (use
//! [`hybrid_executor`]).

use qrm_core::error::Error;
use qrm_core::executor::{Executor, PathPolicy};
use qrm_core::geometry::Rect;
use qrm_core::grid::AtomGrid;
use qrm_core::planner::Planner;
use qrm_core::schedule::Schedule;
use qrm_core::scheduler::{Plan, QrmConfig, QrmScheduler};

use crate::mta1::{Mta1Config, Mta1Scheduler};

/// Returns an executor configured for hybrid schedules (fly-over repair
/// legs).
pub fn hybrid_executor() -> Executor {
    Executor::new().with_path_policy(PathPolicy::EndpointsOnly)
}

/// Configuration of the [`HybridScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridConfig {
    /// The QRM stage.
    pub qrm: QrmConfig,
    /// Repair rounds for the residual defects.
    pub repair_rounds: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            qrm: QrmConfig::default(),
            repair_rounds: 2,
        }
    }
}

/// QRM followed by single-tweezer defect repair.
///
/// ```
/// use qrm_baselines::hybrid::{hybrid_executor, HybridScheduler};
/// use qrm_core::prelude::*;
///
/// let mut rng = qrm_core::loading::seeded_rng(5);
/// let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
/// let target = Rect::centered(20, 20, 12, 12)?;
/// let plan = HybridScheduler::default().plan(&grid, &target)?;
/// let report = hybrid_executor().run(&grid, &plan.schedule)?;
/// assert_eq!(report.final_grid, plan.predicted);
/// # Ok::<(), qrm_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct HybridScheduler {
    config: HybridConfig,
}

impl HybridScheduler {
    /// Creates a scheduler.
    pub fn new(config: HybridConfig) -> Self {
        HybridScheduler { config }
    }

    /// A hybrid over the paper-faithful greedy QRM (the configuration a
    /// downstream user would deploy on the paper's hardware: fast static
    /// schedule plus a tiny software repair tail).
    pub fn paper_qrm() -> Self {
        HybridScheduler {
            config: HybridConfig {
                qrm: QrmConfig::paper(),
                repair_rounds: 2,
            },
        }
    }
}

impl Planner for HybridScheduler {
    /// Hybrid repair legs fly over occupied traps like MTA1's, so the
    /// schedules need the endpoints-only executor ([`hybrid_executor`]).
    fn executor(&self) -> Executor {
        hybrid_executor()
    }

    fn name(&self) -> &'static str {
        "QRM + repair (hybrid)"
    }

    fn plan(&self, grid: &AtomGrid, target: &Rect) -> Result<Plan, Error> {
        // Stage 1: QRM.
        let qrm_plan = QrmScheduler::new(self.config.qrm.clone()).plan(grid, target)?;
        if qrm_plan.filled || self.config.repair_rounds == 0 {
            return Ok(qrm_plan);
        }
        // Stage 2: MTA1-style repair on the predicted occupancy.
        let repair = Mta1Scheduler::new(Mta1Config {
            max_rounds: self.config.repair_rounds,
        });
        let repair_plan = repair.plan(&qrm_plan.predicted, target)?;

        let mut schedule = Schedule::new(grid.height(), grid.width());
        schedule.extend(qrm_plan.schedule.iter().cloned());
        schedule.extend(repair_plan.schedule.iter().cloned());
        Ok(Plan {
            schedule,
            predicted: repair_plan.predicted,
            filled: repair_plan.filled,
            iterations: qrm_plan.iterations + repair_plan.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::kernel::KernelStrategy;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn hybrid_fills_where_greedy_qrm_does_not() {
        let mut rng = seeded_rng(60);
        let mut qrm_filled = 0;
        let mut hybrid_filled = 0;
        let mut tried = 0;
        let greedy = QrmScheduler::new(QrmConfig::paper());
        let hybrid = HybridScheduler::paper_qrm();
        for _ in 0..10 {
            let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
            if grid.atom_count() < 160 {
                continue;
            }
            tried += 1;
            let target = Rect::centered(20, 20, 12, 12).unwrap();
            qrm_filled += usize::from(greedy.plan(&grid, &target).unwrap().filled);
            let plan = hybrid.plan(&grid, &target).unwrap();
            let report = hybrid_executor().run(&grid, &plan.schedule).unwrap();
            assert_eq!(report.final_grid, plan.predicted);
            hybrid_filled += usize::from(plan.filled);
        }
        assert!(tried >= 6);
        assert!(hybrid_filled >= qrm_filled);
        assert!(
            hybrid_filled * 10 >= tried * 9,
            "hybrid filled {hybrid_filled}/{tried}"
        );
    }

    #[test]
    fn hybrid_repairs_quadrant_starvation() {
        // The instance QRM fundamentally cannot complete (see the
        // planner-contracts integration test): hybrid repair imports
        // atoms across the quadrant boundary.
        let mut grid = AtomGrid::new(12, 12).unwrap();
        grid.set_unchecked(0, 0, true);
        grid.set_unchecked(5, 5, true);
        for r in 0..12 {
            for c in 0..12 {
                if (r < 6 && c < 6) || (r + c) % 5 == 4 {
                    continue;
                }
                grid.set_unchecked(r, c, true);
            }
        }
        let target = Rect::centered(12, 12, 8, 8).unwrap();
        let plan = HybridScheduler::default().plan(&grid, &target).unwrap();
        assert!(plan.filled, "{} defects", plan.defects(&target).unwrap());
        let report = hybrid_executor().run(&grid, &plan.schedule).unwrap();
        assert!(report.target_filled(&target).unwrap());
    }

    #[test]
    fn no_repair_needed_means_pure_qrm_schedule() {
        let mut rng = seeded_rng(61);
        let grid = AtomGrid::random(16, 16, 0.6, &mut rng);
        let target = Rect::centered(16, 16, 8, 8).unwrap();
        let balanced =
            QrmScheduler::new(QrmConfig::default().with_strategy(KernelStrategy::Balanced));
        let qrm_plan = balanced.plan(&grid, &target).unwrap();
        if qrm_plan.filled {
            let hybrid = HybridScheduler::default().plan(&grid, &target).unwrap();
            assert_eq!(hybrid.schedule, qrm_plan.schedule);
        }
    }

    #[test]
    fn repair_moves_are_single_atom() {
        let mut rng = seeded_rng(62);
        let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
        let target = Rect::centered(20, 20, 12, 12).unwrap();
        let hybrid = HybridScheduler::paper_qrm();
        let qrm = QrmScheduler::new(QrmConfig::paper());
        let base_len = qrm.plan(&grid, &target).unwrap().schedule.len();
        let plan = hybrid.plan(&grid, &target).unwrap();
        for mv in plan.schedule.moves().iter().skip(base_len) {
            assert_eq!(mv.trap_count(), 1, "repair stage uses single tweezers");
        }
    }
}

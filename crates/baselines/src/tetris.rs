//! The Tetris maximum-parallelism baseline (Wang et al. 2023).
//!
//! Published structure: each line's atoms are *assigned* to target sites
//! by a minimum-displacement, order-preserving matching (the "Tetris
//! piece" alignment), and assignments are executed as parallel move
//! layers grouped by displacement. Horizontal alignment layers alternate
//! with vertical compression layers until the target is defect-free.
//!
//! The per-line matching is the classic 1D assignment dynamic program —
//! `O(atoms x slots)` per line, `O(W^3)` per phase — which is what makes
//! Tetris's analysis time an order of magnitude slower than QRM's
//! bit-parallel single passes (paper Fig. 7(b): QRM-CPU ≈ 20x faster).

use qrm_core::error::Error;
use qrm_core::geometry::{Axis, Position, Rect};
use qrm_core::grid::AtomGrid;
use qrm_core::planner::Planner;
use qrm_core::schedule::Schedule;
use qrm_core::scheduler::Plan;

use crate::stepper::{realize_plan, PlannedMove};

/// Tetris configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TetrisConfig {
    /// Maximum horizontal+vertical iterations.
    pub max_iterations: usize,
}

impl Default for TetrisConfig {
    fn default() -> Self {
        TetrisConfig { max_iterations: 6 }
    }
}

/// The Tetris scheduler.
///
/// ```
/// use qrm_baselines::TetrisScheduler;
/// use qrm_core::prelude::*;
///
/// let mut rng = qrm_core::loading::seeded_rng(12);
/// let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
/// let target = Rect::centered(20, 20, 12, 12)?;
/// let plan = TetrisScheduler::default().plan(&grid, &target)?;
/// let report = Executor::new().run(&grid, &plan.schedule)?;
/// assert_eq!(report.final_grid, plan.predicted);
/// # Ok::<(), qrm_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TetrisScheduler {
    config: TetrisConfig,
}

impl TetrisScheduler {
    /// Creates a scheduler.
    pub fn new(config: TetrisConfig) -> Self {
        TetrisScheduler { config }
    }
}

impl Planner for TetrisScheduler {
    fn name(&self) -> &'static str {
        "Tetris (Wang 2023)"
    }

    fn plan(&self, grid: &AtomGrid, target: &Rect) -> Result<Plan, Error> {
        if !target.fits_in(grid.height(), grid.width()) || target.area() == 0 {
            return Err(Error::InvalidTarget {
                reason: "target does not fit the array",
            });
        }
        let mut working = grid.clone();
        let mut schedule = Schedule::new(grid.height(), grid.width());
        let mut iterations = 0;

        for _ in 0..self.config.max_iterations {
            if working.is_filled(target)? {
                break;
            }
            iterations += 1;
            let before = schedule.len();

            // Horizontal alignment: every row assigns its atoms onto the
            // target column range.
            let slots: Vec<usize> = (target.col..target.col_end()).collect();
            let mut plan = Vec::new();
            for r in 0..working.height() {
                let atoms: Vec<usize> = (0..working.width())
                    .filter(|&c| working.get_unchecked(r, c))
                    .collect();
                for (from, to) in assign_line(&atoms, &slots) {
                    plan.push(PlannedMove {
                        from: Position::new(r, from),
                        delta: to as isize - from as isize,
                    });
                }
            }
            realize_plan(&mut working, &mut schedule, Axis::Row, &plan)?;

            // Vertical compression: each target column assigns its atoms
            // onto the target row range.
            let slots: Vec<usize> = (target.row..target.row_end()).collect();
            let mut plan = Vec::new();
            for c in target.col..target.col_end() {
                let atoms: Vec<usize> = (0..working.height())
                    .filter(|&r| working.get_unchecked(r, c))
                    .collect();
                for (from, to) in assign_line(&atoms, &slots) {
                    plan.push(PlannedMove {
                        from: Position::new(from, c),
                        delta: to as isize - from as isize,
                    });
                }
            }
            realize_plan(&mut working, &mut schedule, Axis::Col, &plan)?;

            if schedule.len() == before {
                break;
            }
        }

        let filled = working.is_filled(target)?;
        Ok(Plan {
            schedule,
            predicted: working,
            filled,
            iterations,
        })
    }
}

/// Minimum-total-displacement, order-preserving matching of sorted atom
/// positions onto sorted slot positions. When atoms outnumber slots the
/// cheapest subset is chosen (and vice versa). Returns `(atom, slot)`
/// pairs.
///
/// Classic 1D assignment DP: `cost[i][j]` = best cost matching the first
/// `i` atoms to the first `j` slots.
pub fn assign_line(atoms: &[usize], slots: &[usize]) -> Vec<(usize, usize)> {
    let m = atoms.len();
    let n = slots.len();
    if m == 0 || n == 0 {
        return Vec::new();
    }
    // Every position of the smaller side must be matched; the larger side
    // may skip entries.
    reconstruct(atoms, slots, m >= n)
}

/// DP with parent tracking. `slots_all` = true when every slot must be
/// matched (atoms >= slots); otherwise every atom must be matched.
fn reconstruct(atoms: &[usize], slots: &[usize], slots_all: bool) -> Vec<(usize, usize)> {
    // Normalise to "every b must be matched, a side may skip".
    let (a, b, flip) = if slots_all {
        (atoms, slots, false)
    } else {
        (slots, atoms, true)
    };
    let (m, n) = (a.len(), b.len());
    const INF: u64 = u64::MAX / 4;
    let mut dp = vec![vec![INF; n + 1]; m + 1];
    // choice[i][j] = true when a[i-1] matched b[j-1]
    let mut choice = vec![vec![false; n + 1]; m + 1];
    for row in dp.iter_mut() {
        row[0] = 0;
    }
    for i in 1..=m {
        for j in 1..=n.min(i) {
            let take = dp[i - 1][j - 1].saturating_add(a[i - 1].abs_diff(b[j - 1]) as u64);
            let skip = dp[i - 1][j];
            if take <= skip {
                dp[i][j] = take;
                choice[i][j] = true;
            } else {
                dp[i][j] = skip;
            }
        }
    }
    let mut pairs = Vec::new();
    let (mut i, mut j) = (m, n);
    while i > 0 && j > 0 {
        if choice[i][j] {
            let (atom, slot) = if flip {
                (b[j - 1], a[i - 1])
            } else {
                (a[i - 1], b[j - 1])
            };
            pairs.push((atom, slot));
            i -= 1;
            j -= 1;
        } else {
            i -= 1;
        }
    }
    pairs.reverse();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::executor::Executor;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn assignment_exact_fit() {
        let pairs = assign_line(&[0, 5, 9], &[4, 5, 6]);
        assert_eq!(pairs, vec![(0, 4), (5, 5), (9, 6)]);
    }

    #[test]
    fn assignment_surplus_atoms_picks_cheapest() {
        let pairs = assign_line(&[0, 4, 6, 9], &[4, 5]);
        assert_eq!(pairs, vec![(4, 4), (6, 5)]);
    }

    #[test]
    fn assignment_deficit_atoms_picks_cheapest_slots() {
        let pairs = assign_line(&[5], &[0, 4, 9]);
        assert_eq!(pairs, vec![(5, 4)]);
    }

    #[test]
    fn assignment_empty_sides() {
        assert!(assign_line(&[], &[1, 2]).is_empty());
        assert!(assign_line(&[1, 2], &[]).is_empty());
    }

    #[test]
    fn assignment_preserves_order() {
        let pairs = assign_line(&[1, 2, 3, 8, 9], &[3, 4, 5]);
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn plan_matches_execution_and_fills() {
        let mut rng = seeded_rng(14);
        let mut filled = 0;
        let mut tried = 0;
        for _ in 0..10 {
            let grid = AtomGrid::random(16, 16, 0.5, &mut rng);
            let target = Rect::centered(16, 16, 8, 8).unwrap();
            if grid.atom_count() < 70 {
                continue;
            }
            tried += 1;
            let plan = TetrisScheduler::default().plan(&grid, &target).unwrap();
            let report = Executor::new().run(&grid, &plan.schedule).unwrap();
            assert_eq!(report.final_grid, plan.predicted);
            if plan.filled {
                filled += 1;
            }
        }
        assert!(tried >= 6);
        assert!(filled * 10 >= tried * 7, "filled {filled}/{tried}");
    }

    #[test]
    fn rejects_bad_target() {
        let grid = AtomGrid::new(8, 8).unwrap();
        assert!(TetrisScheduler::default()
            .plan(&grid, &Rect::new(6, 6, 4, 4))
            .is_err());
    }

    #[test]
    fn moves_are_unit_step_axis_aligned() {
        let mut rng = seeded_rng(15);
        let grid = AtomGrid::random(12, 12, 0.6, &mut rng);
        let target = Rect::centered(12, 12, 6, 6).unwrap();
        let plan = TetrisScheduler::default().plan(&grid, &target).unwrap();
        for mv in &plan.schedule {
            assert_eq!(mv.step(), 1);
            assert!(mv.is_axis_aligned());
        }
    }
}

//! The MTA1 sequential single-tweezer baseline (Ebadi et al. 2021).
//!
//! Published structure: defects are repaired one at a time — for each
//! empty target site the nearest reservoir atom is picked up by a single
//! moving tweezer and carried to the defect. Transport routes between
//! lattice lines, so occupied traps do not block transit (only pick-up
//! and drop-off sites matter); each repair is an L-shaped trajectory of
//! one horizontal and one vertical leg.
//!
//! Analysis scans the whole lattice for the nearest reservoir atom per
//! defect (`O(defects x W^2)`), and the schedule has no move-level
//! parallelism, which is why MTA1 anchors the slow end of the paper's
//! Fig. 7(b) (~1000x slower analysis than QRM-CPU at 20x20).
//!
//! **Execution note:** because legs fly over occupied traps, MTA1
//! schedules must be executed with
//! [`PathPolicy::EndpointsOnly`](qrm_core::executor::PathPolicy) — the
//! strict sweep check models AOD row/column shifts, not single-tweezer
//! transport.

use qrm_core::error::Error;
use qrm_core::executor::{Executor, PathPolicy};
use qrm_core::geometry::{Position, Rect};
use qrm_core::grid::AtomGrid;
use qrm_core::moves::ParallelMove;
use qrm_core::planner::Planner;
use qrm_core::schedule::Schedule;
use qrm_core::scheduler::Plan;

/// MTA1 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mta1Config {
    /// Defect-repair rounds (a round sweeps every remaining defect once).
    pub max_rounds: usize,
}

impl Default for Mta1Config {
    fn default() -> Self {
        Mta1Config { max_rounds: 3 }
    }
}

/// Returns an executor configured for MTA1 schedules (fly-over
/// transport).
pub fn mta1_executor() -> Executor {
    Executor::new().with_path_policy(PathPolicy::EndpointsOnly)
}

/// The MTA1 scheduler.
///
/// ```
/// use qrm_baselines::mta1::{mta1_executor, Mta1Scheduler};
/// use qrm_core::prelude::*;
///
/// let mut rng = qrm_core::loading::seeded_rng(30);
/// let grid = AtomGrid::random(12, 12, 0.6, &mut rng);
/// let target = Rect::centered(12, 12, 6, 6)?;
/// let plan = Mta1Scheduler::default().plan(&grid, &target)?;
/// let report = mta1_executor().run(&grid, &plan.schedule)?;
/// assert_eq!(report.final_grid, plan.predicted);
/// # Ok::<(), qrm_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mta1Scheduler {
    config: Mta1Config,
}

impl Mta1Scheduler {
    /// Creates a scheduler.
    pub fn new(config: Mta1Config) -> Self {
        Mta1Scheduler { config }
    }

    /// The nearest reservoir atom (outside `target`), scanning the whole
    /// lattice — the per-defect cost that dominates MTA1 analysis time.
    fn nearest_reservoir(working: &AtomGrid, target: &Rect, defect: Position) -> Vec<Position> {
        let mut candidates: Vec<Position> = working
            .occupied()
            .filter(|p| !target.contains(*p))
            .collect();
        candidates.sort_by_key(|p| p.manhattan(defect));
        candidates
    }

    /// Plans the L-shaped trajectory from `atom` to `defect`: one
    /// horizontal and one vertical leg, choosing the leg order whose
    /// corner site is free (drop-off must land on an empty trap).
    fn l_path(
        working: &AtomGrid,
        atom: Position,
        defect: Position,
    ) -> Option<[Option<ParallelMove>; 2]> {
        let dr = defect.row as isize - atom.row as isize;
        let dc = defect.col as isize - atom.col as isize;
        if dr == 0 && dc == 0 {
            return None;
        }
        if dr == 0 || dc == 0 {
            let mv = ParallelMove::single(atom, dr, dc).ok()?;
            return Some([Some(mv), None]);
        }
        // Row-first: corner at (atom.row, defect.col).
        if !working.get_unchecked(atom.row, defect.col) {
            let first = ParallelMove::single(atom, 0, dc).ok()?;
            let second = ParallelMove::single(Position::new(atom.row, defect.col), dr, 0).ok()?;
            return Some([Some(first), Some(second)]);
        }
        // Column-first: corner at (defect.row, atom.col).
        if !working.get_unchecked(defect.row, atom.col) {
            let first = ParallelMove::single(atom, dr, 0).ok()?;
            let second = ParallelMove::single(Position::new(defect.row, atom.col), 0, dc).ok()?;
            return Some([Some(first), Some(second)]);
        }
        None
    }
}

impl Planner for Mta1Scheduler {
    fn name(&self) -> &'static str {
        "MTA1 (Ebadi 2021)"
    }

    /// MTA1 transports atoms on long single-tweezer legs that fly over
    /// intermediate occupied sites, so its schedules need the
    /// endpoints-only executor ([`mta1_executor`]) — generic consumers
    /// (bench harness, pipeline) pick it up through the trait instead of
    /// special-casing the algorithm.
    fn executor(&self) -> Executor {
        mta1_executor()
    }

    fn plan(&self, grid: &AtomGrid, target: &Rect) -> Result<Plan, Error> {
        if !target.fits_in(grid.height(), grid.width()) || target.area() == 0 {
            return Err(Error::InvalidTarget {
                reason: "target does not fit the array",
            });
        }
        let mut working = grid.clone();
        let mut schedule = Schedule::new(grid.height(), grid.width());
        let executor = mta1_executor();
        let mut rounds = 0;

        for _ in 0..self.config.max_rounds {
            let defects = working.defects_in(target)?;
            if defects.is_empty() {
                break;
            }
            rounds += 1;
            let mut repaired_any = false;
            for defect in defects {
                if working.get_unchecked(defect.row, defect.col) {
                    continue;
                }
                let mut routed = false;
                for atom in Self::nearest_reservoir(&working, target, defect) {
                    let Some(legs) = Self::l_path(&working, atom, defect) else {
                        continue;
                    };
                    for mv in legs.into_iter().flatten() {
                        let mut single = Schedule::new(working.height(), working.width());
                        single.push(mv.clone());
                        working = executor.run(&working, &single)?.final_grid;
                        schedule.push(mv);
                    }
                    routed = true;
                    break;
                }
                repaired_any |= routed;
            }
            if !repaired_any {
                break;
            }
        }

        let filled = working.is_filled(target)?;
        Ok(Plan {
            schedule,
            predicted: working,
            filled,
            iterations: rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn repairs_single_defect_with_l_move() {
        let grid = AtomGrid::parse(
            "....\n\
             .#..\n\
             ...#\n\
             ....",
        )
        .unwrap();
        let target = Rect::new(1, 1, 2, 2);
        let plan = Mta1Scheduler::default().plan(&grid, &target).unwrap();
        // 4 target cells, 2 atoms total: fills what it can with the
        // reservoir atom at (2,3).
        assert!(!plan.filled);
        assert_eq!(plan.predicted.count_in(&target).unwrap(), 2);
    }

    #[test]
    fn fills_with_ample_reservoir() {
        let mut rng = seeded_rng(31);
        let mut filled = 0;
        let mut tried = 0;
        for _ in 0..10 {
            let grid = AtomGrid::random(14, 14, 0.6, &mut rng);
            let target = Rect::centered(14, 14, 6, 6).unwrap();
            if grid.atom_count() < 60 {
                continue;
            }
            tried += 1;
            let plan = Mta1Scheduler::default().plan(&grid, &target).unwrap();
            let report = mta1_executor().run(&grid, &plan.schedule).unwrap();
            assert_eq!(report.final_grid, plan.predicted);
            if plan.filled {
                filled += 1;
            }
        }
        assert!(tried >= 6);
        assert!(filled * 10 >= tried * 8, "filled {filled}/{tried}");
    }

    #[test]
    fn all_moves_are_single_atom() {
        let mut rng = seeded_rng(32);
        let grid = AtomGrid::random(12, 12, 0.6, &mut rng);
        let target = Rect::centered(12, 12, 6, 6).unwrap();
        let plan = Mta1Scheduler::default().plan(&grid, &target).unwrap();
        assert!(!plan.schedule.is_empty());
        for mv in &plan.schedule {
            assert_eq!(mv.trap_count(), 1);
            assert!(mv.is_axis_aligned());
        }
        // At most two legs per repaired defect.
        assert!(plan.schedule.len() <= 2 * target.area());
    }

    #[test]
    fn pinned_target_atoms_are_not_harvested() {
        // The only atoms sit inside the target; MTA1 must not move them
        // to other target cells.
        let grid = AtomGrid::parse(
            "....\n\
             .##.\n\
             ....\n\
             ....",
        )
        .unwrap();
        let target = Rect::new(1, 1, 2, 2);
        let plan = Mta1Scheduler::default().plan(&grid, &target).unwrap();
        assert!(plan.schedule.is_empty());
        assert!(!plan.filled);
    }

    #[test]
    fn strict_execution_rejects_flyover_schedules() {
        // Documents the execution contract: MTA1 legs may sweep occupied
        // traps, so the strict executor can reject them.
        // Target covers columns 2..5; the only reservoir atom (column 0)
        // must fly over the pinned target atom at column 2.
        let grid = AtomGrid::parse("#.#..").unwrap();
        let target = Rect::new(0, 2, 1, 3);
        let plan = Mta1Scheduler::default().plan(&grid, &target).unwrap();
        assert!(!plan.schedule.is_empty());
        // endpoints-only executor accepts
        assert!(mta1_executor().run(&grid, &plan.schedule).is_ok());
        // strict executor rejects the fly-over of the atom at column 2
        assert!(Executor::new().run(&grid, &plan.schedule).is_err());
    }
}

//! The PSCA multi-tweezer baseline (Tian et al. 2023).
//!
//! Published structure: a *parallel sorting* step compresses each target
//! column vertically with a limited set of tweezers (atoms in one column
//! sharing direction and step move together, but columns are processed
//! one at a time), followed by a *row redistribution* step that feeds
//! deficient columns from surplus sites in the same row; the two steps
//! iterate until the target is assembled.
//!
//! The per-column/per-row processing with bounded tweezer batches and
//! full occupancy rescans between batches is what the paper's Fig. 7(b)
//! measures as ~12x slower analysis than Tetris and ~250x slower than
//! QRM-CPU.

use qrm_core::error::Error;
use qrm_core::geometry::{Axis, Position, Rect};
use qrm_core::grid::AtomGrid;
use qrm_core::planner::Planner;
use qrm_core::schedule::Schedule;
use qrm_core::scheduler::Plan;

use crate::stepper::{realize_plan, PlannedMove};

/// PSCA configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PscaConfig {
    /// Maximum sorting+redistribution iterations.
    pub max_iterations: usize,
    /// Mobile tweezers available per batch (the multi-tweezer budget).
    pub tweezers: usize,
}

impl Default for PscaConfig {
    fn default() -> Self {
        PscaConfig {
            max_iterations: 8,
            tweezers: 8,
        }
    }
}

/// The PSCA scheduler.
///
/// ```
/// use qrm_baselines::PscaScheduler;
/// use qrm_core::prelude::*;
///
/// let mut rng = qrm_core::loading::seeded_rng(20);
/// let grid = AtomGrid::random(20, 20, 0.55, &mut rng);
/// let target = Rect::centered(20, 20, 12, 12)?;
/// let plan = PscaScheduler::default().plan(&grid, &target)?;
/// let report = Executor::new().run(&grid, &plan.schedule)?;
/// assert_eq!(report.final_grid, plan.predicted);
/// # Ok::<(), qrm_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PscaScheduler {
    config: PscaConfig,
}

impl PscaScheduler {
    /// Creates a scheduler.
    pub fn new(config: PscaConfig) -> Self {
        PscaScheduler { config }
    }

    /// Vertical sorting: one column at a time, the column's atoms are
    /// compacted onto the target row band (order-preserving assignment,
    /// so no atom ever needs to cross another), at most `tweezers` atoms
    /// per realised batch.
    fn sort_columns(
        &self,
        working: &mut AtomGrid,
        schedule: &mut Schedule,
        target: &Rect,
    ) -> Result<(), Error> {
        let slots: Vec<usize> = (target.row..target.row_end()).collect();
        for c in target.col..target.col_end() {
            // Re-scan the occupancy for every column (the per-move
            // recomputation the published algorithm performs).
            let atoms: Vec<usize> = (0..working.height())
                .filter(|&r| working.get_unchecked(r, c))
                .collect();
            let pairs = crate::tetris::assign_line(&atoms, &slots);
            self.realize_chunked(working, schedule, Axis::Col, &pairs, |from, to| {
                PlannedMove {
                    from: Position::new(from, c),
                    delta: to as isize - from as isize,
                }
            })?;
        }
        Ok(())
    }

    /// Row redistribution: one row at a time, the row's atoms are
    /// compacted onto the target column range, feeding deficient columns
    /// from surplus sites in the same row.
    fn redistribute_rows(
        &self,
        working: &mut AtomGrid,
        schedule: &mut Schedule,
        target: &Rect,
    ) -> Result<(), Error> {
        let slots: Vec<usize> = (target.col..target.col_end()).collect();
        for r in 0..working.height() {
            let atoms: Vec<usize> = (0..working.width())
                .filter(|&c| working.get_unchecked(r, c))
                .collect();
            let pairs = crate::tetris::assign_line(&atoms, &slots);
            self.realize_chunked(working, schedule, Axis::Row, &pairs, |from, to| {
                PlannedMove {
                    from: Position::new(r, from),
                    delta: to as isize - from as isize,
                }
            })?;
        }
        Ok(())
    }

    /// Realises assignment pairs in tweezer-bounded chunks, ordering each
    /// side of the band nearest-first so chunks do not block each other.
    fn realize_chunked(
        &self,
        working: &mut AtomGrid,
        schedule: &mut Schedule,
        axis: Axis,
        pairs: &[(usize, usize)],
        to_move: impl Fn(usize, usize) -> PlannedMove,
    ) -> Result<(), Error> {
        // Split by movement direction and order nearest-to-band first.
        let mut toward_low: Vec<(usize, usize)> = pairs
            .iter()
            .copied()
            .filter(|&(from, to)| to < from)
            .collect();
        toward_low.sort_by_key(|&(from, _)| from);
        let mut toward_high: Vec<(usize, usize)> = pairs
            .iter()
            .copied()
            .filter(|&(from, to)| to > from)
            .collect();
        toward_high.sort_by_key(|&(from, _)| std::cmp::Reverse(from));
        for group in [toward_high, toward_low] {
            for chunk in group.chunks(self.config.tweezers.max(1)) {
                let plan: Vec<PlannedMove> = chunk.iter().map(|&(f, t)| to_move(f, t)).collect();
                realize_plan(working, schedule, axis, &plan)?;
            }
        }
        Ok(())
    }
}

impl Planner for PscaScheduler {
    fn name(&self) -> &'static str {
        "PSCA (Tian 2023)"
    }

    fn plan(&self, grid: &AtomGrid, target: &Rect) -> Result<Plan, Error> {
        if !target.fits_in(grid.height(), grid.width()) || target.area() == 0 {
            return Err(Error::InvalidTarget {
                reason: "target does not fit the array",
            });
        }
        let mut working = grid.clone();
        let mut schedule = Schedule::new(grid.height(), grid.width());
        let mut iterations = 0;
        for _ in 0..self.config.max_iterations {
            if working.is_filled(target)? {
                break;
            }
            iterations += 1;
            let before = schedule.len();
            self.redistribute_rows(&mut working, &mut schedule, target)?;
            self.sort_columns(&mut working, &mut schedule, target)?;
            if schedule.len() == before {
                break;
            }
        }
        let filled = working.is_filled(target)?;
        Ok(Plan {
            schedule,
            predicted: working,
            filled,
            iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrm_core::executor::Executor;
    use qrm_core::loading::seeded_rng;

    #[test]
    fn plan_matches_execution_and_fills_often() {
        let mut rng = seeded_rng(21);
        let mut filled = 0;
        let mut tried = 0;
        for _ in 0..10 {
            let grid = AtomGrid::random(16, 16, 0.55, &mut rng);
            if grid.atom_count() < 75 {
                continue;
            }
            tried += 1;
            let target = Rect::centered(16, 16, 8, 8).unwrap();
            let plan = PscaScheduler::default().plan(&grid, &target).unwrap();
            let report = Executor::new().run(&grid, &plan.schedule).unwrap();
            assert_eq!(report.final_grid, plan.predicted);
            if plan.filled {
                filled += 1;
            }
        }
        assert!(tried >= 6);
        assert!(filled * 10 >= tried * 6, "filled {filled}/{tried}");
    }

    #[test]
    fn tweezer_budget_limits_batch_sizes() {
        let mut rng = seeded_rng(22);
        let grid = AtomGrid::random(16, 16, 0.6, &mut rng);
        let target = Rect::centered(16, 16, 8, 8).unwrap();
        let small = PscaScheduler::new(PscaConfig {
            max_iterations: 8,
            tweezers: 2,
        })
        .plan(&grid, &target)
        .unwrap();
        for mv in &small.schedule {
            // each wave batch comes from one column/row chunk of <= 2
            assert!(mv.trap_count() <= 4, "{mv}");
        }
    }

    #[test]
    fn rejects_bad_target() {
        let grid = AtomGrid::new(8, 8).unwrap();
        assert!(PscaScheduler::default()
            .plan(&grid, &Rect::new(0, 0, 9, 9))
            .is_err());
    }

    #[test]
    fn empty_grid_produces_empty_schedule() {
        let grid = AtomGrid::new(12, 12).unwrap();
        let target = Rect::centered(12, 12, 6, 6).unwrap();
        let plan = PscaScheduler::default().plan(&grid, &target).unwrap();
        assert!(plan.schedule.is_empty());
        assert!(!plan.filled);
    }
}

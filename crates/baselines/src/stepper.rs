//! Realisation of per-atom displacement plans as unit-step parallel
//! waves.
//!
//! Several baselines first *assign* atoms to destinations and then
//! execute the assignments. This helper turns a set of axis-aligned
//! displacements into waves of simultaneous unit moves (same direction,
//! same step — the multi-tweezer constraint of paper §II-B), batching
//! each wave into AOD-legal [`ParallelMove`]s and applying it to a
//! working grid.

use std::collections::BTreeMap;

use qrm_core::aod::AodBatcher;
use qrm_core::bitline;
use qrm_core::error::Error;
use qrm_core::executor::Executor;
use qrm_core::geometry::{Axis, Position};
use qrm_core::grid::AtomGrid;
use qrm_core::moves::ParallelMove;
use qrm_core::schedule::Schedule;

/// One atom's planned displacement along `axis` (signed sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedMove {
    /// Atom's current position.
    pub from: Position,
    /// Signed displacement along the plan's axis.
    pub delta: isize,
}

/// Outcome of realising a displacement plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RealizeStats {
    /// Unit waves emitted.
    pub waves: usize,
    /// Atoms that reached their planned destination.
    pub completed: usize,
    /// Atoms left short of their destination (blocked by stationary
    /// atoms).
    pub stranded: usize,
}

/// Realises `plan` (displacements along `axis`) on `grid`, appending the
/// emitted moves to `schedule`.
///
/// Atoms advance one site per wave while their next cell is free or
/// being vacated by a same-direction neighbour in the same wave; blocked
/// atoms simply wait, and the helper stops when no atom can advance
/// (reporting them as stranded).
///
/// # Errors
///
/// Propagates executor validation failures (these indicate internal
/// planner bugs, not instance infeasibility).
pub fn realize_plan(
    grid: &mut AtomGrid,
    schedule: &mut Schedule,
    axis: Axis,
    plan: &[PlannedMove],
) -> Result<RealizeStats, Error> {
    let executor = Executor::new();
    let batcher = AodBatcher::new();
    let mut stats = RealizeStats::default();

    // Track each atom's current position and remaining displacement.
    let mut pending: Vec<(Position, isize)> = plan
        .iter()
        .filter(|p| p.delta != 0)
        .map(|p| (p.from, p.delta))
        .collect();
    stats.completed = plan.iter().filter(|p| p.delta == 0).count();

    while !pending.is_empty() {
        // One wave per direction (positive then negative) per cycle.
        let mut advanced_any = false;
        for sign in [1isize, -1] {
            let movers = wave_movers(grid, axis, &pending, sign);
            if movers.is_empty() {
                continue;
            }
            advanced_any = true;
            emit_wave(grid, schedule, &executor, &batcher, axis, sign, &movers)?;
            stats.waves += 1;
            // Update pending positions.
            for (pos, delta) in pending.iter_mut() {
                if movers.contains(pos) && delta.signum() == sign {
                    *pos = step(*pos, axis, sign);
                    *delta -= sign;
                }
            }
        }
        pending.retain(|&(_, delta)| delta != 0);
        if !advanced_any {
            break;
        }
    }
    stats.completed += plan.iter().filter(|p| p.delta != 0).count() - pending.len();
    stats.stranded = pending.len();
    Ok(stats)
}

/// Atoms that can advance one site in direction `sign` this wave:
/// processed front-to-back so a chain of movers advances together.
fn wave_movers(
    grid: &AtomGrid,
    axis: Axis,
    pending: &[(Position, isize)],
    sign: isize,
) -> Vec<Position> {
    let mut by_line: BTreeMap<usize, Vec<Position>> = BTreeMap::new();
    for &(pos, delta) in pending {
        if delta.signum() == sign {
            by_line.entry(line_of(pos, axis)).or_default().push(pos);
        }
    }
    let mut movers = Vec::new();
    for (_, mut atoms) in by_line {
        // Front of the chain first: for positive motion, the largest
        // coordinate leads.
        atoms.sort_by_key(|p| coord_of(*p, axis));
        if sign > 0 {
            atoms.reverse();
        }
        let mut vacated: Option<Position> = None;
        for pos in atoms {
            let Some(next) = offset(pos, axis, sign, grid) else {
                vacated = None;
                continue;
            };
            let free = !grid.get_unchecked(next.row, next.col) || Some(next) == vacated;
            if free {
                movers.push(pos);
                vacated = Some(pos);
            } else {
                vacated = None;
            }
        }
    }
    movers
}

fn emit_wave(
    grid: &mut AtomGrid,
    schedule: &mut Schedule,
    executor: &Executor,
    batcher: &AodBatcher,
    axis: Axis,
    sign: isize,
    movers: &[Position],
) -> Result<(), Error> {
    // Build per-line mover masks in the pass-axis frame.
    let view = match axis {
        Axis::Row => grid.clone(),
        Axis::Col => grid.transpose(),
    };
    let width = view.width();
    let words = bitline::words_for(width);
    let mut per_line: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for &pos in movers {
        let (line, coord) = match axis {
            Axis::Row => (pos.row, pos.col),
            Axis::Col => (pos.col, pos.row),
        };
        bitline::set(
            per_line.entry(line).or_insert_with(|| vec![0u64; words]),
            coord,
            true,
        );
    }
    let occ: Vec<&[u64]> = (0..view.height()).map(|l| view.row_bits(l)).collect();
    let movers_vec: Vec<(usize, Vec<u64>)> = per_line.into_iter().collect();
    let (dr, dc) = match axis {
        Axis::Row => (0isize, sign),
        Axis::Col => (sign, 0isize),
    };
    for batch in batcher.batch(&occ, &movers_vec) {
        let positions = batch.positions(width);
        let (rows, cols) = match axis {
            Axis::Row => (batch.lines, positions),
            Axis::Col => (positions, batch.lines),
        };
        let mv = ParallelMove::new(rows, cols, dr, dc)?;
        let mut single = Schedule::new(grid.height(), grid.width());
        single.push(mv.clone());
        *grid = executor.run(grid, &single)?.final_grid;
        schedule.push(mv);
    }
    Ok(())
}

fn line_of(p: Position, axis: Axis) -> usize {
    match axis {
        Axis::Row => p.row,
        Axis::Col => p.col,
    }
}

fn coord_of(p: Position, axis: Axis) -> usize {
    match axis {
        Axis::Row => p.col,
        Axis::Col => p.row,
    }
}

fn step(p: Position, axis: Axis, sign: isize) -> Position {
    match axis {
        Axis::Row => Position::new(p.row, p.col.wrapping_add_signed(sign)),
        Axis::Col => Position::new(p.row.wrapping_add_signed(sign), p.col),
    }
}

fn offset(p: Position, axis: Axis, sign: isize, grid: &AtomGrid) -> Option<Position> {
    let q = match axis {
        Axis::Row => Position::new(p.row, p.col.checked_add_signed(sign)?),
        Axis::Col => Position::new(p.row.checked_add_signed(sign)?, p.col),
    };
    (q.row < grid.height() && q.col < grid.width()).then_some(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_atom_multi_step() {
        let mut g = AtomGrid::parse("#....").unwrap();
        let mut s = Schedule::new(1, 5);
        let plan = vec![PlannedMove {
            from: Position::new(0, 0),
            delta: 4,
        }];
        let stats = realize_plan(&mut g, &mut s, Axis::Row, &plan).unwrap();
        assert_eq!(stats.stranded, 0);
        assert_eq!(stats.waves, 4);
        assert_eq!(g, AtomGrid::parse("....#").unwrap());
    }

    #[test]
    fn chain_advances_together() {
        // Two adjacent atoms both move +2: the leader vacates for the
        // follower each wave.
        let mut g = AtomGrid::parse("##...").unwrap();
        let mut s = Schedule::new(1, 5);
        let plan = vec![
            PlannedMove {
                from: Position::new(0, 0),
                delta: 2,
            },
            PlannedMove {
                from: Position::new(0, 1),
                delta: 2,
            },
        ];
        let stats = realize_plan(&mut g, &mut s, Axis::Row, &plan).unwrap();
        assert_eq!(stats.stranded, 0);
        assert_eq!(g, AtomGrid::parse("..##.").unwrap());
        // both atoms move together each wave
        assert_eq!(stats.waves, 2);
    }

    #[test]
    fn stationary_blocker_strands_mover() {
        // Atom must cross a stationary atom: impossible with same-axis
        // unit moves.
        let mut g = AtomGrid::parse("#.#..").unwrap();
        let mut s = Schedule::new(1, 5);
        let plan = vec![PlannedMove {
            from: Position::new(0, 0),
            delta: 4,
        }];
        let stats = realize_plan(&mut g, &mut s, Axis::Row, &plan).unwrap();
        assert_eq!(stats.stranded, 1);
        // it advanced as far as possible
        assert!(g.get_unchecked(0, 1));
    }

    #[test]
    fn opposite_directions_in_one_plan() {
        let mut g = AtomGrid::parse("#...#").unwrap();
        let mut s = Schedule::new(1, 5);
        let plan = vec![
            PlannedMove {
                from: Position::new(0, 0),
                delta: 1,
            },
            PlannedMove {
                from: Position::new(0, 4),
                delta: -1,
            },
        ];
        let stats = realize_plan(&mut g, &mut s, Axis::Row, &plan).unwrap();
        assert_eq!(stats.stranded, 0);
        assert_eq!(g, AtomGrid::parse(".#.#.").unwrap());
    }

    #[test]
    fn vertical_axis() {
        let mut g = AtomGrid::parse("#\n.\n.").unwrap();
        let mut s = Schedule::new(3, 1);
        let plan = vec![PlannedMove {
            from: Position::new(0, 0),
            delta: 2,
        }];
        let stats = realize_plan(&mut g, &mut s, Axis::Col, &plan).unwrap();
        assert_eq!(stats.stranded, 0);
        assert!(g.get_unchecked(2, 0));
    }

    #[test]
    fn zero_delta_counts_completed() {
        let mut g = AtomGrid::parse("#").unwrap();
        let mut s = Schedule::new(1, 1);
        let plan = vec![PlannedMove {
            from: Position::new(0, 0),
            delta: 0,
        }];
        let stats = realize_plan(&mut g, &mut s, Axis::Row, &plan).unwrap();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.waves, 0);
    }

    #[test]
    fn schedule_is_executable_from_scratch() {
        let g0 = AtomGrid::parse("##..#\n.#..#").unwrap();
        let mut g = g0.clone();
        let mut s = Schedule::new(2, 5);
        let plan = vec![
            PlannedMove {
                from: Position::new(0, 0),
                delta: 2,
            },
            PlannedMove {
                from: Position::new(0, 1),
                delta: 2,
            },
            PlannedMove {
                from: Position::new(1, 1),
                delta: 1,
            },
        ];
        realize_plan(&mut g, &mut s, Axis::Row, &plan).unwrap();
        let replay = Executor::new().run(&g0, &s).unwrap();
        assert_eq!(replay.final_grid, g);
    }
}

//! Property-based tests for the baseline planners and the shared
//! displacement stepper.

use proptest::prelude::*;
use qrm_baselines::stepper::{realize_plan, PlannedMove};
use qrm_baselines::tetris::assign_line;
use qrm_core::executor::Executor;
use qrm_core::geometry::{Axis, Position};
use qrm_core::grid::AtomGrid;
use qrm_core::schedule::Schedule;
use rand::SeedableRng;

fn arb_row() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    // sorted atom positions and sorted slot positions within 0..24
    (
        proptest::collection::btree_set(0usize..24, 0..12),
        proptest::collection::btree_set(0usize..24, 1..12),
    )
        .prop_map(|(a, s)| (a.into_iter().collect(), s.into_iter().collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn assignment_is_order_preserving_and_maximal((atoms, slots) in arb_row()) {
        let pairs = assign_line(&atoms, &slots);
        prop_assert_eq!(pairs.len(), atoms.len().min(slots.len()));
        for w in pairs.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "atom order violated");
            prop_assert!(w[0].1 < w[1].1, "slot order violated");
        }
        for (a, s) in &pairs {
            prop_assert!(atoms.contains(a));
            prop_assert!(slots.contains(s));
        }
    }

    #[test]
    fn assignment_cost_beats_naive_prefix((atoms, slots) in arb_row()) {
        // The DP's cost must not exceed the naive "first k atoms to first
        // k slots" matching.
        let pairs = assign_line(&atoms, &slots);
        let k = pairs.len();
        if k > 0 {
            let dp_cost: usize = pairs.iter().map(|(a, s)| a.abs_diff(*s)).sum();
            let naive_cost: usize = atoms
                .iter()
                .take(k)
                .zip(slots.iter().take(k))
                .map(|(a, s)| a.abs_diff(*s))
                .sum();
            prop_assert!(dp_cost <= naive_cost, "dp {dp_cost} > naive {naive_cost}");
        }
    }

    #[test]
    fn stepper_never_loses_atoms(seed in any::<u64>(), deltas in proptest::collection::vec(-4isize..5, 1..6)) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let grid0 = AtomGrid::random(6, 12, 0.4, &mut rng);
        // plan: move the first atoms of distinct rows by the given deltas
        let mut plan = Vec::new();
        let mut used_rows = std::collections::BTreeSet::new();
        for (i, p) in grid0.occupied().enumerate() {
            if i >= deltas.len() {
                break;
            }
            if !used_rows.insert(p.row) {
                continue;
            }
            let delta = deltas[i];
            let dest = p.col as isize + delta;
            if !(0..12).contains(&dest) {
                continue;
            }
            plan.push(PlannedMove { from: Position::new(p.row, p.col), delta });
        }
        let mut grid = grid0.clone();
        let mut schedule = Schedule::new(6, 12);
        let _stats = realize_plan(&mut grid, &mut schedule, Axis::Row, &plan).unwrap();
        prop_assert_eq!(grid.atom_count(), grid0.atom_count());
        // the emitted schedule replays identically
        let replay = Executor::new().run(&grid0, &schedule).unwrap();
        prop_assert_eq!(replay.final_grid, grid);
    }
}

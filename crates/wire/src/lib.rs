//! # qrm-wire — JSON wire codec for the planning service
//!
//! The serialization layer between [`qrm_server`]'s typed
//! request/response surface and any network transport (the workspace's
//! HTTP front end lives in `qrm-net`). It is **dependency-free**: the
//! [`json`] module implements the JSON writer and a strict
//! recursive-descent parser with depth/size limits from scratch, over
//! the vendored serde subset's self-describing
//! [`Value`](serde::Value) data model.
//!
//! Every type that crosses the wire — [`PlannerChoice`],
//! [`BatchSpec`], [`SubmitBatch`], [`BatchReport`], [`ServiceStats`],
//! and the transport-level [`ErrorReply`] and [`RouterStats`] —
//! implements [`ToJson`] /
//! [`FromJson`] (blanket impls over the derived `serde` traits), so
//! encoding is one method call and decoding returns typed errors,
//! never panics. The exact schemas are documented field-by-field in
//! `docs/PROTOCOL.md`.
//!
//! ## Determinism
//!
//! The codec is part of the workspace's bit-identity contract: floats
//! are written with shortest round-trip formatting and re-parsed
//! exactly, map keys keep declaration order, and encoding the same
//! value twice yields byte-identical text. A [`BatchReport`] that
//! travels server → JSON → client compares equal to the in-process
//! original (`tests/net_service.rs` pins this end to end over HTTP).
//!
//! ## Example
//!
//! ```
//! use qrm_server::{BatchSpec, SubmitBatch};
//! use qrm_wire::{FromJson, ToJson};
//!
//! let request = SubmitBatch::new("qrm", BatchSpec::new(4, 16, 7));
//! let text = request.to_json();
//! assert!(text.starts_with("{\"planner\":\"qrm\""));
//!
//! let back = SubmitBatch::from_json(&text).expect("round-trip");
//! assert_eq!(back, request);
//!
//! // Malformed input is a typed error, not a panic.
//! assert!(SubmitBatch::from_json("{\"planner\":3}").is_err());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;

use std::fmt;

// Re-exported so downstream crates (and doctests) can name every wire
// type through this crate alone.
pub use qrm_control::pipeline::PlannerChoice;
pub use qrm_server::{BatchReport, BatchSpec, ServiceStats, SubmitBatch};

pub use json::{JsonError, JsonErrorKind, JsonLimits};

/// Why a typed decode failed.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The text is not valid JSON (or exceeds the parser limits).
    Json(JsonError),
    /// The JSON is well-formed but does not match the target type's
    /// schema.
    Decode(serde::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Json(err) => write!(f, "invalid JSON: {err}"),
            WireError::Decode(err) => write!(f, "schema mismatch: {err}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Json(err) => Some(err),
            WireError::Decode(err) => Some(err),
        }
    }
}

impl From<JsonError> for WireError {
    fn from(err: JsonError) -> Self {
        WireError::Json(err)
    }
}

impl From<serde::Error> for WireError {
    fn from(err: serde::Error) -> Self {
        WireError::Decode(err)
    }
}

/// Encoding to JSON text. Blanket-implemented for every
/// [`serde::Serialize`] type, so the service types (and yours) get it
/// from their derive.
pub trait ToJson {
    /// The value tree this type serializes to.
    fn to_json_value(&self) -> serde::Value;

    /// Compact JSON text (no whitespace); deterministic — equal values
    /// encode to byte-identical text.
    fn to_json(&self) -> String;
}

impl<T: serde::Serialize + ?Sized> ToJson for T {
    fn to_json_value(&self) -> serde::Value {
        self.serialize()
    }

    fn to_json(&self) -> String {
        json::write(&self.serialize())
    }
}

/// Decoding from JSON text. Blanket-implemented for every
/// [`serde::Deserialize`] type.
pub trait FromJson: Sized {
    /// Decodes from an already-parsed value tree.
    ///
    /// # Errors
    ///
    /// [`WireError::Decode`] when the tree does not match the schema.
    fn from_json_value(value: &serde::Value) -> Result<Self, WireError>;

    /// Parses and decodes with the default [`JsonLimits`].
    ///
    /// # Errors
    ///
    /// [`WireError::Json`] for malformed text, [`WireError::Decode`]
    /// for schema mismatches.
    fn from_json(text: &str) -> Result<Self, WireError> {
        Self::from_json_with_limits(text, &JsonLimits::default())
    }

    /// Parses and decodes under explicit limits (servers cap attacker-
    /// controlled input tighter than the defaults).
    ///
    /// # Errors
    ///
    /// As [`from_json`](Self::from_json).
    fn from_json_with_limits(text: &str, limits: &JsonLimits) -> Result<Self, WireError>;
}

impl<T: serde::Deserialize> FromJson for T {
    fn from_json_value(value: &serde::Value) -> Result<Self, WireError> {
        Ok(T::deserialize(value)?)
    }

    fn from_json_with_limits(text: &str, limits: &JsonLimits) -> Result<Self, WireError> {
        let value = json::parse_with_limits(text, limits)?;
        Ok(T::deserialize(&value)?)
    }
}

/// The typed error payload every non-2xx response of the HTTP front
/// end carries (`docs/PROTOCOL.md` lists the codes).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ErrorReply {
    /// Stable machine-readable code (`"unknown_planner"`,
    /// `"bad_json"`, …). Codes never change meaning; new failure modes
    /// add new codes.
    pub code: String,
    /// Human-readable description of this particular failure.
    pub error: String,
}

impl ErrorReply {
    /// Creates a reply.
    pub fn new(code: impl Into<String>, error: impl Into<String>) -> Self {
        ErrorReply {
            code: code.into(),
            error: error.into(),
        }
    }
}

impl fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.error, self.code)
    }
}

/// One backend's slice of a [`RouterStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BackendRouteStats {
    /// The backend's address, as configured on the router.
    pub addr: String,
    /// Last health-probe verdict (`GET /v1/healthz` answered 2xx).
    pub healthy: bool,
    /// Requests this backend answered (any HTTP status).
    pub routed: u64,
    /// Relay attempts that failed *provably unaccepted* and moved on to
    /// the next ring node.
    pub failed_over: u64,
}

/// Snapshot of the consistent-hash router front end, served at
/// `GET /v1/router/stats` (`docs/PROTOCOL.md` documents the schema and
/// the routing semantics it observes).
///
/// `relayed + no_backend <= requests` (the difference is requests
/// rejected before ring selection, e.g. malformed bodies), and
/// `relayed == Σ backends.routed`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RouterStats {
    /// `POST /v1/batch` requests the router accepted for routing.
    pub requests: u64,
    /// Requests a backend answered (the answer was relayed verbatim,
    /// whatever its status).
    pub relayed: u64,
    /// Failovers: relay attempts abandoned on a *provably unaccepted*
    /// failure, summed over all backends.
    pub failovers: u64,
    /// Requests every ring candidate refused — answered `503
    /// no_backend` locally.
    pub no_backend: u64,
    /// Per-backend breakdown, in ring-declaration order.
    pub backends: Vec<BackendRouteStats>,
}

//! The JSON text codec: a writer and a recursive-descent parser over
//! the [`serde::Value`] data model.
//!
//! Dependency-free (std only) and deliberately strict:
//!
//! * the parser enforces a **size limit** up front and a **depth
//!   limit** during descent ([`JsonLimits`]), so hostile input cannot
//!   exhaust the stack or memory before a single value is built;
//! * malformed input — truncation, bad escapes, bare control
//!   characters, leading zeros, trailing data — produces a typed
//!   [`JsonError`] carrying the byte offset, never a panic;
//! * the writer emits numbers via Rust's shortest round-trip float
//!   formatting, so every finite `f64` survives a write→parse cycle
//!   **bit-identically** (the foundation of the service's wire-level
//!   determinism contract; non-finite floats encode as `null`).

use std::fmt;

use serde::Value;

/// Resource limits the parser enforces before and during descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonLimits {
    /// Maximum input length in bytes (checked before parsing starts).
    pub max_bytes: usize,
    /// Maximum nesting depth of arrays/objects.
    pub max_depth: usize,
}

impl Default for JsonLimits {
    /// 16 MiB of text, 64 levels of nesting — far beyond anything the
    /// planning protocol produces, far below anything dangerous.
    fn default() -> Self {
        JsonLimits {
            max_bytes: 16 << 20,
            max_depth: 64,
        }
    }
}

/// What went wrong while parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum JsonErrorKind {
    /// The input exceeds [`JsonLimits::max_bytes`].
    TooLarge,
    /// Nesting exceeds [`JsonLimits::max_depth`].
    TooDeep,
    /// The input ended inside a value (truncation).
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// A malformed `\` escape inside a string.
    BadEscape,
    /// A malformed `\uXXXX` escape (bad hex digits or a lone
    /// surrogate).
    BadUnicodeEscape,
    /// A malformed number literal.
    BadNumber,
    /// A bare control character (< 0x20) inside a string.
    ControlCharacter,
    /// Non-whitespace input after the top-level value.
    TrailingData,
}

/// A typed parse error with the byte offset it occurred at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// The failure category.
    pub kind: JsonErrorKind,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            JsonErrorKind::TooLarge => "input exceeds the size limit".to_string(),
            JsonErrorKind::TooDeep => "nesting exceeds the depth limit".to_string(),
            JsonErrorKind::UnexpectedEof => "unexpected end of input".to_string(),
            JsonErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            JsonErrorKind::BadEscape => "invalid string escape".to_string(),
            JsonErrorKind::BadUnicodeEscape => "invalid \\u escape".to_string(),
            JsonErrorKind::BadNumber => "invalid number literal".to_string(),
            JsonErrorKind::ControlCharacter => "bare control character in string".to_string(),
            JsonErrorKind::TrailingData => "trailing data after the value".to_string(),
        };
        write!(f, "{what} at byte {}", self.offset)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Serializes a [`Value`] tree to compact JSON text (no whitespace).
///
/// Finite floats use shortest round-trip formatting (parse back
/// bit-identical); NaN and infinities — which JSON cannot represent —
/// encode as `null`, matching `serde_json`'s lossy default.
pub fn write(value: &Value) -> String {
    let mut out = String::new();
    write_into(value, &mut out);
    out
}

fn write_into(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => {
            out.push_str(&v.to_string());
        }
        Value::U64(v) => {
            out.push_str(&v.to_string());
        }
        Value::F64(v) => {
            if v.is_finite() {
                // Rust's float Display is the shortest decimal string
                // that parses back to the identical bits, and it never
                // produces exponent notation or non-JSON tokens.
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(item, out);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_into(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/// Parses JSON text into a [`Value`] with the default [`JsonLimits`].
///
/// # Errors
///
/// Returns a typed [`JsonError`] for malformed or over-limit input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    parse_with_limits(text, &JsonLimits::default())
}

/// [`parse`] with explicit limits.
///
/// # Errors
///
/// Returns a typed [`JsonError`] for malformed or over-limit input.
pub fn parse_with_limits(text: &str, limits: &JsonLimits) -> Result<Value, JsonError> {
    if text.len() > limits.max_bytes {
        return Err(JsonError {
            kind: JsonErrorKind::TooLarge,
            offset: limits.max_bytes,
        });
    }
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        max_depth: limits.max_depth,
    };
    parser.skip_whitespace();
    let value = parser.value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error(JsonErrorKind::TrailingData));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    max_depth: usize,
}

impl Parser<'_> {
    fn error(&self, kind: JsonErrorKind) -> JsonError {
        JsonError {
            kind,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// The byte at `pos` interpreted as the start of a char, for error
    /// messages (input is valid UTF-8 by construction: it came in as
    /// `&str`).
    fn current_char(&self) -> char {
        std::str::from_utf8(&self.bytes[self.pos..])
            .ok()
            .and_then(|s| s.chars().next())
            .unwrap_or('\u{fffd}')
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else if self.bytes.len() - self.pos < literal.len() {
            Err(self.error(JsonErrorKind::UnexpectedEof))
        } else {
            Err(self.error(JsonErrorKind::UnexpectedChar(self.current_char())))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > self.max_depth {
            return Err(self.error(JsonErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.error(JsonErrorKind::UnexpectedEof)),
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error(JsonErrorKind::UnexpectedChar(self.current_char()))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                Some(_) => {
                    return Err(self.error(JsonErrorKind::UnexpectedChar(self.current_char())))
                }
                None => return Err(self.error(JsonErrorKind::UnexpectedEof)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(match self.peek() {
                    Some(_) => self.error(JsonErrorKind::UnexpectedChar(self.current_char())),
                    None => self.error(JsonErrorKind::UnexpectedEof),
                });
            }
            let key = self.string()?;
            self.skip_whitespace();
            match self.peek() {
                Some(b':') => self.pos += 1,
                Some(_) => {
                    return Err(self.error(JsonErrorKind::UnexpectedChar(self.current_char())))
                }
                None => return Err(self.error(JsonErrorKind::UnexpectedEof)),
            }
            self.skip_whitespace();
            pairs.push((key, self.value(depth + 1)?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                Some(_) => {
                    return Err(self.error(JsonErrorKind::UnexpectedChar(self.current_char())))
                }
                None => return Err(self.error(JsonErrorKind::UnexpectedEof)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the raw run up to the next quote, escape, or control
            // character in one slice.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // Input came in as &str, so any byte run is valid UTF-8.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("parser input is valid UTF-8"),
            );
            match self.peek() {
                None => return Err(self.error(JsonErrorKind::UnexpectedEof)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error(JsonErrorKind::ControlCharacter)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.error(JsonErrorKind::UnexpectedEof));
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&high) {
                    // High surrogate: a low surrogate must follow.
                    if self.expect_literal("\\u").is_err() {
                        return Err(self.error(JsonErrorKind::BadUnicodeEscape));
                    }
                    let low = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&low) {
                        return Err(self.error(JsonErrorKind::BadUnicodeEscape));
                    }
                    0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
                } else if (0xdc00..0xe000).contains(&high) {
                    // Lone low surrogate.
                    return Err(self.error(JsonErrorKind::BadUnicodeEscape));
                } else {
                    high
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(self.error(JsonErrorKind::BadUnicodeEscape)),
                }
            }
            _ => {
                self.pos -= 1;
                return Err(self.error(JsonErrorKind::BadEscape));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.error(JsonErrorKind::UnexpectedEof));
            };
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.error(JsonErrorKind::BadUnicodeEscape)),
            };
            code = (code << 4) | digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: 0, or a nonzero digit followed by digits
        // (JSON forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            Some(_) | None => return Err(self.error(JsonErrorKind::BadNumber)),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error(JsonErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error(JsonErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("parser input is valid UTF-8");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                // "-0" is a distinct float (negative zero), not the
                // integer 0 — keep it a float so a written -0.0 parses
                // back bit-identical.
                if v != 0 || !negative {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            // Integers beyond u64 range fall through to f64 (the only
            // way the writer produces such digits is float formatting).
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::F64(v)),
            Err(_) => Err(JsonError {
                kind: JsonErrorKind::BadNumber,
                offset: start,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: Value) {
        let text = write(&value);
        assert_eq!(parse(&text).unwrap(), value, "text {text:?}");
    }

    #[test]
    fn scalar_round_trips() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::I64(0));
        roundtrip(Value::I64(-42));
        roundtrip(Value::I64(i64::MIN));
        roundtrip(Value::U64(u64::MAX));
        roundtrip(Value::F64(0.55));
        roundtrip(Value::F64(-0.0));
        roundtrip(Value::F64(f64::MAX));
        roundtrip(Value::F64(f64::MIN_POSITIVE));
        roundtrip(Value::Str(String::new()));
        roundtrip(Value::Str(
            "hé\u{1f600}\"\\\n\t\u{08}\u{0c}\u{01}".to_string(),
        ));
    }

    #[test]
    fn integral_floats_come_back_bit_identical() {
        // Display prints 2.0 as "2"; the parser yields I64(2), and the
        // typed f64 path converts back exactly.
        let text = write(&Value::F64(2.0));
        assert_eq!(text, "2");
        assert_eq!(parse(&text).unwrap().as_f64(), Some(2.0));
        // Integral floats parse back as integer Values by design; the
        // typed f64 path restores the identical bits — even past 2^53
        // (every integer the writer can emit for an f64 *is* an f64)
        // and past i64 into the u64 range.
        for v in [9_007_199_254_740_994.0_f64, 1.0e19] {
            let text = write(&Value::F64(v));
            assert_eq!(parse(&text).unwrap().as_f64(), Some(v), "text {text:?}");
        }
    }

    #[test]
    fn nonfinite_floats_write_null() {
        assert_eq!(write(&Value::F64(f64::NAN)), "null");
        assert_eq!(write(&Value::F64(f64::INFINITY)), "null");
    }

    #[test]
    fn container_round_trips() {
        roundtrip(Value::Seq(vec![]));
        roundtrip(Value::Map(vec![]));
        roundtrip(Value::Seq(vec![
            Value::Null,
            Value::Seq(vec![Value::I64(1)]),
            Value::Map(vec![("k\"ey".to_string(), Value::Bool(false))]),
        ]));
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let value =
            parse(" { \"a\" : [ 1 , 2.5 ] , \"b\\u0041\\ud834\\udd1e\" : \"\\/\" } ").unwrap();
        assert_eq!(value.get("a").unwrap().as_seq("a").unwrap().len(), 2);
        assert_eq!(value.get("bA\u{1d11e}"), Some(&Value::Str("/".to_string())));
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let cases: &[(&str, JsonErrorKind)] = &[
            ("", JsonErrorKind::UnexpectedEof),
            ("[1, 2", JsonErrorKind::UnexpectedEof),
            ("\"abc", JsonErrorKind::UnexpectedEof),
            ("tru", JsonErrorKind::UnexpectedEof),
            ("truX", JsonErrorKind::UnexpectedChar('t')),
            ("[1,]", JsonErrorKind::UnexpectedChar(']')),
            ("{\"a\" 1}", JsonErrorKind::UnexpectedChar('1')),
            ("{1: 2}", JsonErrorKind::UnexpectedChar('1')),
            ("01", JsonErrorKind::TrailingData),
            ("1.", JsonErrorKind::BadNumber),
            ("1e", JsonErrorKind::BadNumber),
            ("-", JsonErrorKind::BadNumber),
            ("\"\\x\"", JsonErrorKind::BadEscape),
            ("\"\\u12g4\"", JsonErrorKind::BadUnicodeEscape),
            ("\"\\ud834\"", JsonErrorKind::BadUnicodeEscape),
            ("\"\\udd1e\"", JsonErrorKind::BadUnicodeEscape),
            ("\"\u{01}\"", JsonErrorKind::ControlCharacter),
            ("1 2", JsonErrorKind::TrailingData),
            ("nul", JsonErrorKind::UnexpectedEof),
        ];
        for (text, kind) in cases {
            let err = parse(text).unwrap_err();
            assert_eq!(&err.kind, kind, "input {text:?} gave {err}");
        }
    }

    #[test]
    fn limits_are_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert_eq!(parse(&deep).unwrap_err().kind, JsonErrorKind::TooDeep);
        let limits = JsonLimits {
            max_bytes: 4,
            max_depth: 64,
        };
        assert_eq!(
            parse_with_limits("[1,2,3]", &limits).unwrap_err().kind,
            JsonErrorKind::TooLarge
        );
        // At exactly the limit, parsing proceeds.
        assert!(parse_with_limits("[1]", &limits).is_ok());
        let shallow = JsonLimits {
            max_bytes: 1 << 20,
            max_depth: 2,
        };
        assert!(parse_with_limits("[[1]]", &shallow).is_ok());
        assert_eq!(
            parse_with_limits("[[[1]]]", &shallow).unwrap_err().kind,
            JsonErrorKind::TooDeep
        );
    }

    #[test]
    fn duplicate_keys_keep_first_on_lookup() {
        let value = parse("{\"a\":1,\"a\":2}").unwrap();
        assert_eq!(value.get("a"), Some(&Value::I64(1)));
    }
}

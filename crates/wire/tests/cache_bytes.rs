//! The response cache's **byte-identity** contract at the wire layer.
//!
//! Two properties make "serve it from the cache" indistinguishable on
//! the wire from "plan it again":
//!
//! 1. The cache key is **exactly as fine-grained as the wire encoding**:
//!    two submissions share a [`SubmitBatch::cache_key`] iff their JSON
//!    encodings are byte-equal. Coarser and the cache could alias two
//!    different workloads; finer and repeats would never hit.
//! 2. A cache hit's reports encode to the **same bytes** as a fresh
//!    recomputation of the spec (timing fields excluded by living
//!    outside the reports), so no client — or digest-diffing CI job —
//!    can tell which path served it.

use proptest::prelude::*;

use qrm_control::pipeline::{PipelineConfig, PlannerChoice};
use qrm_core::scheduler::QrmConfig;
use qrm_server::{BatchSpec, PlanService, Scenario, SubmitBatch};
use qrm_wire::ToJson;

/// Scenario values rich in near-misses: the same parameter value under
/// different variants (`DefectMap { 0.25 }` vs `AtomLoss { 0.25 }`,
/// which only the key's tag byte separates), transposed zone lattices,
/// and the default `UniformFill` (whose key and encoding must both
/// stay byte-identical to a pre-scenario submission's).
fn scenarios() -> [Scenario; 7] {
    [
        Scenario::UniformFill,
        Scenario::DefectMap {
            dead_fraction: 0.25,
        },
        Scenario::AtomLoss { loss_prob: 0.25 },
        Scenario::Zones { rows: 1, cols: 2 },
        Scenario::Zones { rows: 2, cols: 1 },
        Scenario::CorrelatedFill {
            grain: 2,
            flip_prob: 0.25,
        },
        Scenario::CorrelatedFill {
            grain: 2,
            flip_prob: 0.250_000_000_000_000_06,
        },
    ]
}

/// A submission drawn from a space deliberately rich in near-misses:
/// few planner names, small numeric ranges, `fill` values that include
/// bit-level float neighbours (`0.5` vs `0.5000000000000001`), the
/// scenario set above, and both trace-flag states.
fn submissions() -> impl Strategy<Value = SubmitBatch> {
    const PLANNERS: [&str; 3] = ["qrm", "typical", "q"];
    const FILLS: [f64; 4] = [0.5, 0.5000000000000001, 0.55, 1.0];
    (
        0usize..PLANNERS.len(),
        0usize..3,
        10usize..13,
        0u64..4,
        0usize..FILLS.len(),
        0usize..scenarios().len(),
        any::<bool>(),
    )
        .prop_map(|(planner, shots, size, seed, fill, scenario, trace)| {
            SubmitBatch::new(
                PLANNERS[planner],
                BatchSpec::new(shots, size, seed)
                    .with_fill(FILLS[fill])
                    .with_scenario(scenarios()[scenario]),
            )
            .with_trace(trace)
        })
}

proptest! {
    /// Key equality ⇔ wire-byte equality, in both directions.
    #[test]
    fn cache_key_equality_matches_wire_byte_equality(
        a in submissions(),
        b in submissions(),
    ) {
        let keys_equal = a.cache_key() == b.cache_key();
        let bytes_equal = a.to_json() == b.to_json();
        prop_assert_eq!(
            keys_equal, bytes_equal,
            "cache key and wire encoding disagree: {} vs {}",
            a.to_json(), b.to_json()
        );
    }

    /// The key is self-consistent: recomputing it yields the same bytes
    /// (no hidden state), and a clone shares it.
    #[test]
    fn cache_key_is_a_pure_function_of_the_submission(a in submissions()) {
        prop_assert_eq!(a.cache_key(), a.cache_key());
        prop_assert_eq!(a.clone().cache_key(), a.cache_key());
    }
}

#[test]
fn cache_hits_reencode_byte_identically_to_recomputation() {
    let build = || {
        PlanService::builder()
            .register(
                "qrm",
                PlannerChoice::Software(QrmConfig::paper()),
                PipelineConfig {
                    workers: 1,
                    max_rounds: 2,
                    ..PipelineConfig::default()
                },
            )
            .cache_bytes(1 << 20)
            .build()
    };
    let request = SubmitBatch::new("qrm", BatchSpec::new(3, 12, 71));

    // Warm one service and hit it; a second service recomputes cold.
    let warm = build();
    warm.submit(&request).expect("warm miss");
    let hit = warm.submit(&request).expect("warm hit");
    assert_eq!(warm.stats().cache.hits, 1, "second submit must hit");
    let cold = build();
    let recomputed = cold.submit(&request).expect("cold recomputation");
    assert_eq!(cold.stats().cache.hits, 0);

    assert_eq!(
        hit.reports.to_json(),
        recomputed.reports.to_json(),
        "cached reports must be wire-byte-identical to recomputation"
    );
}

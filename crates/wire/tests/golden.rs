//! Golden-corpus wire tests: checked-in v1 encodings of every service
//! type must stay **decodable** and must **re-encode byte-identically**
//! for as long as the `/v1` protocol exists.
//!
//! The fixtures under `tests/golden/` were produced by this crate's own
//! encoder (see [`regenerate_fixtures`]) and frozen. The round-trip
//! tests in `roundtrip.rs` only prove that *today's* encoder and
//! decoder agree with each other; these tests prove that today's
//! decoder still agrees with *yesterday's* encoder — a field rename, a
//! serde-derive change, or a float-formatting tweak that silently
//! breaks deployed clients fails here first.
//!
//! When the protocol legitimately grows a `/v2`, add new fixtures; the
//! v1 files stay until v1 support is dropped (`docs/PROTOCOL.md`).

use qrm_server::{BatchReport, BatchSpec, ServiceStats, SubmitBatch};
use qrm_wire::{ErrorReply, FromJson, ToJson};

/// Decodes `fixture` as `T` and proves the decode→encode round trip
/// reproduces the checked-in bytes exactly (modulo the trailing
/// newline the files carry for POSIX hygiene).
fn assert_golden<T: FromJson + ToJson>(name: &str, fixture: &str) -> T {
    let text = fixture.trim_end_matches('\n');
    let value = T::from_json(text)
        .unwrap_or_else(|e| panic!("golden fixture {name} stopped decoding: {e}"));
    assert_eq!(
        value.to_json(),
        text,
        "golden fixture {name} no longer re-encodes byte-identically"
    );
    value
}

#[test]
fn batch_spec_v1_stays_decodable() {
    let spec: BatchSpec = assert_golden("batch_spec.v1", include_str!("golden/batch_spec.v1.json"));
    assert_eq!((spec.shots, spec.size, spec.seed), (4, 16, 7));
}

#[test]
fn submit_batch_v1_stays_decodable() {
    let request: SubmitBatch = assert_golden(
        "submit_batch.v1",
        include_str!("golden/submit_batch.v1.json"),
    );
    assert_eq!(request.planner, "qrm");
    assert_eq!(request.spec, BatchSpec::new(4, 16, 7));
}

#[test]
fn batch_report_v1_stays_decodable() {
    let report: BatchReport = assert_golden(
        "batch_report.v1",
        include_str!("golden/batch_report.v1.json"),
    );
    // The payload fields (everything except wall-clock timing) came
    // from a deterministic seeded run; spot-check them so a decoder
    // that silently zeroes fields cannot pass the byte identity alone.
    assert_eq!(report.planner, "qrm");
    assert_eq!(report.shots(), 4);
    assert_eq!(
        report.filled(),
        report.reports.iter().filter(|r| r.filled).count()
    );
    assert!(report.wall_us > 0.0);
}

#[test]
fn service_stats_v1_stays_decodable() {
    // Frozen **pre-dataflow** encoding: it predates the `scheduler`
    // field, so it is decode-only (re-encoding legitimately adds the
    // new key). Decoding it proves the additive-evolution rule of
    // `docs/PROTOCOL.md`: a missing `scheduler` reads as all zeros
    // instead of an error, so old peers keep interoperating.
    let text = include_str!("golden/service_stats.v1.json").trim_end_matches('\n');
    let stats = ServiceStats::from_json(text)
        .expect("pre-dataflow service_stats.v1 fixture stopped decoding");
    assert_eq!(stats.batches_served, 1);
    assert_eq!(stats.shots_served, 4);
    let planner = stats
        .planners
        .iter()
        .find(|p| p.name == "qrm")
        .expect("qrm registration present in fixture");
    assert_eq!(planner.batches, 1);
    assert!(planner.contexts.is_some(), "QRM pools contexts");
    assert_eq!(
        stats.scheduler,
        qrm_server::SchedulerTotals::default(),
        "absent scheduler key must decode as zeros"
    );
}

#[test]
fn service_stats_v1_dataflow_stays_decodable() {
    // The current canonical encoding, with the `scheduler` field:
    // byte-identity applies again.
    let stats: ServiceStats = assert_golden(
        "service_stats.v1.dataflow",
        include_str!("golden/service_stats.v1.dataflow.json"),
    );
    assert_eq!(stats.batches_served, 1);
    assert_eq!(stats.shots_served, 4);
    assert!(stats.scheduler.planned_shots >= 4);
    assert!(stats.scheduler.tasks_dispatched > 0);
}

#[test]
fn error_reply_v1_stays_decodable() {
    let reply: ErrorReply =
        assert_golden("error_reply.v1", include_str!("golden/error_reply.v1.json"));
    assert_eq!(reply.code, "unknown_planner");
}

/// Fixture (re)generator — run explicitly with
/// `cargo test -p qrm-wire --test golden -- --ignored` **only** when a
/// deliberate protocol revision requires new goldens; a regeneration
/// that changes existing files is a wire-format break and must be
/// called out as such in the PR that commits it.
#[test]
#[ignore = "writes tests/golden/*.json; run only for a deliberate protocol revision"]
fn regenerate_fixtures() {
    use qrm_control::pipeline::{PipelineConfig, PlannerChoice};
    use qrm_core::scheduler::QrmConfig;

    let spec = BatchSpec::new(4, 16, 7);
    let request = SubmitBatch::new("qrm", spec.clone());

    // One deterministic submission so the report/stats fixtures carry
    // realistic nested payloads (histograms, context pools, per-shot
    // pipeline reports) rather than hand-minimised ones.
    let service = qrm_server::PlanService::builder()
        .register(
            "qrm",
            PlannerChoice::Software(QrmConfig::paper()),
            PipelineConfig {
                workers: 1,
                max_rounds: 2,
                ..PipelineConfig::default()
            },
        )
        .build();
    let report = service.submit(&request).expect("fixture submission");
    let stats = service.stats();
    let reply = ErrorReply::new("unknown_planner", "no planner registered as \"nope\"");

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let write = |name: &str, text: String| {
        std::fs::write(dir.join(name), text + "\n").expect("write fixture");
    };
    write("batch_spec.v1.json", spec.to_json());
    write("submit_batch.v1.json", request.to_json());
    write("batch_report.v1.json", report.to_json());
    // `service_stats.v1.json` is deliberately NOT rewritten: it is the
    // frozen pre-dataflow encoding that keeps the missing-`scheduler`
    // decode path honest. Only the current canonical encoding is
    // regenerated.
    write("service_stats.v1.dataflow.json", stats.to_json());
    write("error_reply.v1.json", reply.to_json());
}

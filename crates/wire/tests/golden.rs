//! Golden-corpus wire tests: checked-in v1 encodings of every service
//! type must stay **decodable** and must **re-encode byte-identically**
//! for as long as the `/v1` protocol exists.
//!
//! The fixtures under `tests/golden/` were produced by this crate's own
//! encoder (see [`regenerate_fixtures`]) and frozen. The round-trip
//! tests in `roundtrip.rs` only prove that *today's* encoder and
//! decoder agree with each other; these tests prove that today's
//! decoder still agrees with *yesterday's* encoder — a field rename, a
//! serde-derive change, or a float-formatting tweak that silently
//! breaks deployed clients fails here first.
//!
//! When the protocol legitimately grows a `/v2`, add new fixtures; the
//! v1 files stay until v1 support is dropped (`docs/PROTOCOL.md`).

use qrm_server::{BatchReport, BatchSpec, ServiceStats, SubmitBatch};
use qrm_wire::{ErrorReply, FromJson, ToJson};

/// Decodes `fixture` as `T` and proves the decode→encode round trip
/// reproduces the checked-in bytes exactly (modulo the trailing
/// newline the files carry for POSIX hygiene).
fn assert_golden<T: FromJson + ToJson>(name: &str, fixture: &str) -> T {
    let text = fixture.trim_end_matches('\n');
    let value = T::from_json(text)
        .unwrap_or_else(|e| panic!("golden fixture {name} stopped decoding: {e}"));
    assert_eq!(
        value.to_json(),
        text,
        "golden fixture {name} no longer re-encodes byte-identically"
    );
    value
}

#[test]
fn batch_spec_v1_stays_decodable() {
    let spec: BatchSpec = assert_golden("batch_spec.v1", include_str!("golden/batch_spec.v1.json"));
    assert_eq!((spec.shots, spec.size, spec.seed), (4, 16, 7));
}

#[test]
fn submit_batch_v1_stays_decodable() {
    // This fixture predates the `scenario`/`trace` fields, so it doubles
    // as the pre-scenario peer regression: a client that has never heard
    // of scenarios must keep decoding to the defaults (uniform fill, no
    // trace) — the additive-evolution rule of `docs/PROTOCOL.md` proven
    // against real frozen bytes, not just specified. And because the
    // encoder omits both fields at their defaults, byte-identical
    // re-encoding still holds: this fixture is *not* decode-only.
    let request: SubmitBatch = assert_golden(
        "submit_batch.v1",
        include_str!("golden/submit_batch.v1.json"),
    );
    assert_eq!(request.planner, "qrm");
    assert_eq!(request.spec, BatchSpec::new(4, 16, 7));
    assert_eq!(request.spec.scenario, qrm_server::Scenario::UniformFill);
    assert!(!request.trace, "absent trace flag must decode as false");
}

#[test]
fn submit_batch_v1_scenario_stays_decodable() {
    let request: SubmitBatch = assert_golden(
        "submit_batch.v1.scenario",
        include_str!("golden/submit_batch.v1.scenario.json"),
    );
    assert_eq!(request.planner, "qrm");
    assert_eq!(
        request.spec.scenario,
        qrm_server::Scenario::Zones { rows: 2, cols: 2 }
    );
    assert!(request.trace, "fixture requests the move trace");
}

#[test]
fn batch_report_v1_stays_decodable() {
    let report: BatchReport = assert_golden(
        "batch_report.v1",
        include_str!("golden/batch_report.v1.json"),
    );
    // The payload fields (everything except wall-clock timing) came
    // from a deterministic seeded run; spot-check them so a decoder
    // that silently zeroes fields cannot pass the byte identity alone.
    assert_eq!(report.planner, "qrm");
    assert_eq!(report.shots(), 4);
    assert_eq!(
        report.filled(),
        report.reports.iter().filter(|r| r.filled).count()
    );
    assert!(report.wall_us > 0.0);
}

#[test]
fn batch_report_v1_trace_stays_decodable() {
    let report: BatchReport = assert_golden(
        "batch_report.v1.trace",
        include_str!("golden/batch_report.v1.trace.json"),
    );
    assert_eq!(report.planner, "qrm");
    // The decoded trace is not just schema-valid: replaying it on the
    // fixture spec's initial grids must land on the reported final
    // occupancy, so a decoder that scrambles transfer coordinates (but
    // keeps the bytes) cannot pass.
    let traces = report.trace.as_ref().expect("fixture carries a trace");
    let truths = BatchSpec::new(2, 12, 7)
        .workload()
        .expect("fixture workload")
        .truths;
    assert_eq!(traces.len(), truths.len());
    for (i, trace) in traces.iter().enumerate() {
        let replayed = qrm_core::trace::TraceReplayer::replay(&truths[i], trace)
            .expect("fixture trace must replay cleanly");
        assert_eq!(
            replayed, report.reports[i].final_state,
            "shot {i}: fixture trace replay != reported final grid"
        );
    }
}

#[test]
fn service_stats_v1_stays_decodable() {
    // Frozen **pre-dataflow** encoding: it predates the `scheduler`
    // field, so it is decode-only (re-encoding legitimately adds the
    // new key). Decoding it proves the additive-evolution rule of
    // `docs/PROTOCOL.md`: a missing `scheduler` reads as all zeros
    // instead of an error, so old peers keep interoperating.
    let text = include_str!("golden/service_stats.v1.json").trim_end_matches('\n');
    let stats = ServiceStats::from_json(text)
        .expect("pre-dataflow service_stats.v1 fixture stopped decoding");
    assert_eq!(stats.batches_served, 1);
    assert_eq!(stats.shots_served, 4);
    let planner = stats
        .planners
        .iter()
        .find(|p| p.name == "qrm")
        .expect("qrm registration present in fixture");
    assert_eq!(planner.batches, 1);
    assert!(planner.contexts.is_some(), "QRM pools contexts");
    assert_eq!(
        stats.scheduler,
        qrm_server::SchedulerTotals::default(),
        "absent scheduler key must decode as zeros"
    );
}

#[test]
fn service_stats_v1_dataflow_stays_decodable() {
    // Frozen **pre-cache** encoding: it has the `scheduler` field but
    // predates `cache`, so — like the pre-dataflow fixture above — it
    // is decode-only, proving the additive rule one generation on: a
    // missing `cache` key reads as all zeros instead of an error.
    let text = include_str!("golden/service_stats.v1.dataflow.json").trim_end_matches('\n');
    let stats = ServiceStats::from_json(text)
        .expect("pre-cache service_stats.v1.dataflow fixture stopped decoding");
    assert_eq!(stats.batches_served, 1);
    assert_eq!(stats.shots_served, 4);
    assert!(stats.scheduler.planned_shots >= 4);
    assert!(stats.scheduler.tasks_dispatched > 0);
    assert_eq!(
        stats.cache,
        qrm_server::CacheStats::default(),
        "absent cache key must decode as zeros"
    );
}

#[test]
fn service_stats_v1_cache_stays_decodable() {
    // Frozen **pre-net** encoding: it has `scheduler` and `cache` but
    // predates the `net` connection gauges, so — like the two older
    // generational fixtures above — it is now decode-only, proving the
    // additive rule one more generation on: a missing `net` key reads
    // as all zeros instead of an error.
    let text = include_str!("golden/service_stats.v1.cache.json").trim_end_matches('\n');
    let stats = ServiceStats::from_json(text)
        .expect("pre-net service_stats.v1.cache fixture stopped decoding");
    assert_eq!(stats.batches_served, 2);
    assert!(stats.scheduler.tasks_dispatched > 0);
    assert_eq!(stats.cache.lookups, 2);
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.entries, 1);
    assert!(stats.cache.bytes > 0);
    assert!(stats.cache.budget_bytes > 0);
    assert_eq!(
        stats.net,
        qrm_server::NetStats::default(),
        "absent net key must decode as zeros"
    );
}

#[test]
fn service_stats_v1_net_stays_decodable() {
    // The current canonical encoding, with all three additive fields
    // (`scheduler`, `cache`, and the HTTP front end's `net` gauges):
    // byte-identity applies again. The net counters are visibly
    // nonzero so a decoder that silently zeroes the new block cannot
    // pass on byte identity alone.
    let stats: ServiceStats = assert_golden(
        "service_stats.v1.net",
        include_str!("golden/service_stats.v1.net.json"),
    );
    assert_eq!(stats.batches_served, 2);
    assert!(stats.cache.lookups > 0);
    assert_eq!(stats.net.open_connections, 2);
    assert_eq!(stats.net.peak_open, 3);
    assert_eq!(stats.net.accepted_total, 9);
    assert_eq!(stats.net.closed_total, 7);
    assert_eq!(stats.net.requests_served, 41);
    assert_eq!(stats.net.auth_failures, 1);
    assert_eq!(
        stats.net.closed_idle
            + stats.net.closed_request_timeout
            + stats.net.closed_write_stalled
            + stats.net.closed_peer
            + stats.net.closed_framing
            + stats.net.closed_shutdown
            + stats.net.closed_over_capacity,
        stats.net.closed_total,
        "fixture's per-cause close counts sum to its close total"
    );
}

#[test]
fn router_stats_v1_stays_decodable() {
    let stats: qrm_wire::RouterStats = assert_golden(
        "router_stats.v1",
        include_str!("golden/router_stats.v1.json"),
    );
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.relayed, 24);
    assert_eq!(stats.failovers, 1);
    assert_eq!(stats.backends.len(), 3);
    assert_eq!(
        stats.backends.iter().map(|b| b.routed).sum::<u64>(),
        stats.relayed,
        "fixture's per-backend counts sum to its relay total"
    );
    let dead = stats
        .backends
        .iter()
        .find(|b| !b.healthy)
        .expect("one dead");
    assert_eq!(dead.failed_over, 1);
}

#[test]
fn error_reply_v1_stays_decodable() {
    let reply: ErrorReply =
        assert_golden("error_reply.v1", include_str!("golden/error_reply.v1.json"));
    assert_eq!(reply.code, "unknown_planner");
}

/// Fixture (re)generator — run explicitly with
/// `cargo test -p qrm-wire --test golden -- --ignored` **only** when a
/// deliberate protocol revision requires new goldens; a regeneration
/// that changes existing files is a wire-format break and must be
/// called out as such in the PR that commits it.
#[test]
#[ignore = "writes tests/golden/*.json; run only for a deliberate protocol revision"]
fn regenerate_fixtures() {
    use qrm_control::pipeline::{PipelineConfig, PlannerChoice};
    use qrm_core::scheduler::QrmConfig;

    let spec = BatchSpec::new(4, 16, 7);
    let request = SubmitBatch::new("qrm", spec.clone());

    // One deterministic submission so the report/stats fixtures carry
    // realistic nested payloads (histograms, context pools, per-shot
    // pipeline reports) rather than hand-minimised ones.
    let service = qrm_server::PlanService::builder()
        .register(
            "qrm",
            PlannerChoice::Software(QrmConfig::paper()),
            PipelineConfig {
                workers: 1,
                max_rounds: 2,
                ..PipelineConfig::default()
            },
        )
        .build();
    let report = service.submit(&request).expect("fixture submission");
    let reply = ErrorReply::new("unknown_planner", "no planner registered as \"nope\"");

    // The scenario-era request fixture: a multi-zone workload with the
    // trace flag raised, pinning the externally tagged `Scenario`
    // encoding and the `trace` key.
    let scenario_request = SubmitBatch::new(
        "qrm",
        BatchSpec::new(4, 16, 7).with_scenario(qrm_server::Scenario::Zones { rows: 2, cols: 2 }),
    )
    .with_trace(true);
    // And the traced response fixture: a deterministic traced
    // submission whose exported per-shot move traces replay to the
    // reported final grids (asserted by the golden test).
    let traced_report = service
        .submit(&SubmitBatch::new("qrm", BatchSpec::new(2, 12, 7)).with_trace(true))
        .expect("traced fixture submission");

    // The cache fixture's service: cache on, same spec twice, so the
    // snapshot carries one miss, one hit, one resident entry.
    let cached_service = qrm_server::PlanService::builder()
        .register(
            "qrm",
            PlannerChoice::Software(QrmConfig::paper()),
            PipelineConfig {
                workers: 1,
                max_rounds: 2,
                ..PipelineConfig::default()
            },
        )
        .cache_bytes(1 << 20)
        .build();
    cached_service
        .submit(&request)
        .expect("cache-miss submission");
    cached_service
        .submit(&request)
        .expect("cache-hit submission");
    let mut net_stats = cached_service.stats();
    // The connection gauges are hand-built, like the router snapshot:
    // plain counters, and a literal keeps the fixture independent of
    // socket timing. Per-cause closes must sum to `closed_total` and
    // `accepted_total` must equal `open + closed` (the documented
    // invariants, asserted by the golden test).
    net_stats.net = qrm_server::NetStats {
        open_connections: 2,
        peak_open: 3,
        accepted_total: 9,
        closed_total: 7,
        requests_served: 41,
        auth_failures: 1,
        closed_idle: 3,
        closed_request_timeout: 1,
        closed_write_stalled: 0,
        closed_peer: 1,
        closed_framing: 1,
        closed_shutdown: 0,
        closed_over_capacity: 1,
    };

    // A router snapshot is hand-built: the counters are plain data and
    // a literal keeps the fixture independent of socket timing.
    let router_stats = qrm_wire::RouterStats {
        requests: 24,
        relayed: 24,
        failovers: 1,
        no_backend: 0,
        backends: vec![
            qrm_wire::BackendRouteStats {
                addr: "127.0.0.1:7101".to_string(),
                healthy: true,
                routed: 13,
                failed_over: 0,
            },
            qrm_wire::BackendRouteStats {
                addr: "127.0.0.1:7102".to_string(),
                healthy: false,
                routed: 5,
                failed_over: 1,
            },
            qrm_wire::BackendRouteStats {
                addr: "127.0.0.1:7103".to_string(),
                healthy: true,
                routed: 6,
                failed_over: 0,
            },
        ],
    };

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    // Fully deterministic payloads may be rewritten; payloads carrying
    // measured fields (wall_us, latency histograms) are written only
    // when absent, so a routine regeneration cannot churn bytes that
    // exist purely to pin the decoder. The frozen generational fixtures
    // (`service_stats.v1.json` pre-dataflow, `service_stats.v1.dataflow
    // .json` pre-cache, `service_stats.v1.cache.json` pre-net) are
    // NEVER rewritten: each is an old encoder's output, kept to prove
    // its missing-field decode path — today's encoder cannot reproduce
    // them.
    let write = |name: &str, text: String| {
        std::fs::write(dir.join(name), text + "\n").expect("write fixture");
    };
    // "Absent" includes a zero-length placeholder: `include_str!` needs
    // the file to exist before the first regeneration can compile.
    let write_if_absent = |name: &str, text: String| {
        let path = dir.join(name);
        if std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) == 0 {
            write(name, text);
        }
    };
    write("batch_spec.v1.json", spec.to_json());
    write("submit_batch.v1.json", request.to_json());
    write("submit_batch.v1.scenario.json", scenario_request.to_json());
    write("error_reply.v1.json", reply.to_json());
    write("router_stats.v1.json", router_stats.to_json());
    write_if_absent("batch_report.v1.json", report.to_json());
    write_if_absent("batch_report.v1.trace.json", traced_report.to_json());
    write_if_absent("service_stats.v1.net.json", net_stats.to_json());
}

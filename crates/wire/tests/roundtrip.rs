//! Wire-codec contract tests: every service type round-trips through
//! JSON text bit-identically, and the parser survives hostile input
//! (truncation, mutation, deep nesting, bad escapes) with typed errors
//! — never a panic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qrm_control::pipeline::{Pipeline, PipelineConfig, PlannerChoice};
use qrm_core::scheduler::QrmConfig;
use qrm_server::{BatchSpec, PlanService, SubmitBatch};
use qrm_wire::json::{self, JsonErrorKind, JsonLimits};
use qrm_wire::{ErrorReply, FromJson, ToJson};
use serde::Value;

/// A random `Value` tree of bounded depth/width, driven by a seeded
/// RNG (the vendored proptest has no recursive strategy combinators).
fn random_value(rng: &mut StdRng, depth: usize) -> Value {
    let leaf_only = depth == 0;
    match if leaf_only {
        rng.gen_range(0..6)
    } else {
        rng.gen_range(0..8)
    } {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::I64(rng.gen_range(i64::MIN..i64::MAX)),
        3 => Value::U64(rng.gen_range(0..u64::MAX)),
        4 => {
            // Mix of fractional, integral, huge, tiny, and signed-zero
            // floats; all must survive the text round-trip.
            let raw = match rng.gen_range(0..5) {
                0 => rng.gen_range(-1.0e6..1.0e6),
                1 => rng.gen_range(-1000.0..1000.0_f64).round(),
                2 => rng.gen_range(0.0..1.0) * 1.0e300,
                3 => rng.gen_range(0.0..1.0) * 1.0e-300,
                _ => -0.0,
            };
            Value::F64(raw)
        }
        5 => {
            let len = rng.gen_range(0..12);
            Value::Str(
                (0..len)
                    .map(|_| {
                        // Bias toward characters that exercise escaping.
                        match rng.gen_range(0..6) {
                            0 => '"',
                            1 => '\\',
                            2 => '\u{1}',
                            3 => '\u{1f600}',
                            _ => char::from(rng.gen_range(32..127u8)),
                        }
                    })
                    .collect(),
            )
        }
        6 => {
            let len = rng.gen_range(0..4);
            Value::Seq((0..len).map(|_| random_value(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..4);
            Value::Map(
                (0..len)
                    .map(|i| (format!("k{i}"), random_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// Typed equality through the codec: integral floats intentionally
/// come back as integer `Value`s, so tree equality is checked through
/// a normalization that maps every number to its `f64`/`i64` identity.
fn assert_tree_roundtrip(value: &Value) {
    let text = json::write(value);
    let back = json::parse(&text).unwrap_or_else(|e| panic!("reparse {text:?}: {e}"));
    assert_values_equivalent(value, &back, &text);
    // Writing the reparsed tree reproduces the text byte-identically —
    // the codec is deterministic in both directions.
    assert_eq!(json::write(&back), text);
}

fn assert_values_equivalent(a: &Value, b: &Value, text: &str) {
    match (a, b) {
        (Value::F64(x), other) => {
            let y = other
                .as_f64()
                .unwrap_or_else(|| panic!("{other:?} in {text}"));
            assert!(
                (x.is_nan() && y.is_nan())
                    || (*x == y && x.is_sign_positive() == y.is_sign_positive()),
                "{x:?} != {y:?} in {text}"
            );
        }
        (Value::I64(x), other) => assert_eq!(other.as_i64(), Some(*x), "{text}"),
        (Value::U64(x), other) => assert_eq!(other.as_u64(), Some(*x), "{text}"),
        (Value::Seq(xs), Value::Seq(ys)) => {
            assert_eq!(xs.len(), ys.len(), "{text}");
            for (x, y) in xs.iter().zip(ys) {
                assert_values_equivalent(x, y, text);
            }
        }
        (Value::Map(xs), Value::Map(ys)) => {
            assert_eq!(xs.len(), ys.len(), "{text}");
            for ((kx, x), (ky, y)) in xs.iter().zip(ys) {
                assert_eq!(kx, ky, "{text}");
                assert_values_equivalent(x, y, text);
            }
        }
        (x, y) => assert_eq!(x, y, "{text}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn random_value_trees_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = random_value(&mut rng, 4);
        assert_tree_roundtrip(&value);
    }

    #[test]
    fn submit_batch_round_trips(
        shots in 0usize..10_000,
        size in 0usize..1_000,
        fill in 0.0f64..1.0,
        seed in any::<u64>(),
        scenario in 0usize..5,
        trace in any::<bool>(),
    ) {
        use qrm_server::Scenario;
        // Every scenario variant, parameterised by the case's own
        // draws so the nested floats/integers round-trip too.
        let scenario = match scenario {
            0 => Scenario::UniformFill,
            1 => Scenario::DefectMap { dead_fraction: fill },
            2 => Scenario::AtomLoss { loss_prob: fill },
            3 => Scenario::Zones { rows: shots.max(1), cols: size.max(1) },
            _ => Scenario::CorrelatedFill { grain: shots.max(1), flip_prob: fill },
        };
        let request = SubmitBatch::new(
            format!("planner-{seed}"),
            BatchSpec::new(shots, size, seed)
                .with_fill(fill)
                .with_scenario(scenario),
        )
        .with_trace(trace);
        let back = SubmitBatch::from_json(&request.to_json()).expect("round-trip");
        prop_assert_eq!(back, request);
    }

    #[test]
    fn truncated_valid_json_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = json::write(&random_value(&mut rng, 3));
        // Cutting at every char boundary: parsing must return (Ok for
        // prefixes that happen to be complete values, Err otherwise),
        // never panic or hang.
        for cut in text.char_indices().map(|(i, _)| i) {
            let _ = json::parse(&text[..cut]);
        }
    }

    #[test]
    fn mutated_json_never_panics(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = SubmitBatch::new("qrm", BatchSpec::new(3, 16, seed)).to_json();
        let mut bytes = base.into_bytes();
        for _ in 0..8 {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = rng.gen_range(1..127u8);
        }
        if let Ok(text) = String::from_utf8(bytes) {
            let _ = json::parse(&text);
            let _ = SubmitBatch::from_json(&text);
        }
    }
}

#[test]
fn planner_choice_round_trips_with_configs() {
    // All seven canonical choices plus non-default configs: the wire
    // encoding carries the full config, not just the name.
    let mut choices: Vec<PlannerChoice> = PlannerChoice::NAMES
        .iter()
        .map(|name| name.parse().unwrap())
        .collect();
    choices.push(PlannerChoice::Software(QrmConfig::paper()));
    choices.push(PlannerChoice::Software(
        QrmConfig::default().with_max_iterations(3),
    ));
    for choice in choices {
        let text = choice.to_json();
        let back = PlannerChoice::from_json(&text).expect("round-trip");
        assert_eq!(back, choice, "text {text}");
    }
}

#[test]
fn batch_report_round_trips_bit_identically() {
    // A real end-to-end pipeline run (loss on, multiple rounds, real
    // grids in every round report) through the full service path.
    let service = PlanService::builder()
        .register(
            "qrm",
            PlannerChoice::Software(QrmConfig::default()),
            PipelineConfig {
                loss_prob: 0.02,
                max_rounds: 4,
                workers: 1,
                ..PipelineConfig::default()
            },
        )
        .build();
    let request = SubmitBatch::new("qrm", BatchSpec::new(3, 14, 99));
    let report = service.submit(&request).expect("serve");
    let text = report.to_json();
    let back = qrm_server::BatchReport::from_json(&text).expect("round-trip");
    assert_eq!(back.planner, report.planner);
    assert_eq!(back.wall_us, report.wall_us, "floats travel bit-exactly");
    // The determinism contract's payload: per-shot reports compare
    // equal (PipelineReport is PartialEq over every field, including
    // the bit-packed final grids).
    assert_eq!(back.reports, report.reports);

    // And the same workload through the pipeline directly equals the
    // decoded wire copy — codec and service add nothing.
    let truths = request.spec.workload().expect("workload").truths;
    let target = request.spec.target().expect("target");
    let direct = Pipeline::new(PipelineConfig {
        loss_prob: 0.02,
        max_rounds: 4,
        workers: 1,
        ..PipelineConfig::default()
    })
    .run_batch(&truths, &target, request.spec.seed)
    .expect("direct run");
    assert_eq!(back.reports, direct);
}

#[test]
fn service_stats_round_trip() {
    let service = PlanService::builder()
        .max_inflight(2)
        .register_default("qrm", PlannerChoice::Software(QrmConfig::default()), 1)
        .register_default("typical", PlannerChoice::Typical, 1)
        .build();
    for seed in 0..3 {
        service
            .submit(&SubmitBatch::new("qrm", BatchSpec::new(2, 12, seed)))
            .expect("serve");
    }
    let stats = service.stats();
    let text = stats.to_json();
    let back = qrm_server::ServiceStats::from_json(&text).expect("round-trip");
    assert_eq!(back.batches_served, 3);
    assert_eq!(back.shots_served, stats.shots_served);
    assert_eq!(back.planners.len(), 2);
    let qrm = &back.planners[0];
    assert_eq!(qrm.name, "qrm");
    assert_eq!(qrm.algorithm, stats.planners[0].algorithm);
    assert_eq!(qrm.batches, 3);
    assert_eq!(qrm.latency.count(), 3);
    assert_eq!(qrm.latency.mean_us(), stats.planners[0].latency.mean_us());
    assert_eq!(
        qrm.contexts, stats.planners[0].contexts,
        "context stats survive"
    );
    assert_eq!(back.pool, stats.pool);
}

#[test]
fn error_reply_round_trips() {
    let reply = ErrorReply::new("unknown_planner", "no planner registered under \"nope\"");
    let back = ErrorReply::from_json(&reply.to_json()).expect("round-trip");
    assert_eq!(back, reply);
    assert_eq!(
        reply.to_json(),
        "{\"code\":\"unknown_planner\",\"error\":\"no planner registered under \\\"nope\\\"\"}"
    );
}

#[test]
fn deep_nesting_is_rejected_without_stack_overflow() {
    // 100k opening brackets: the depth limit must fire long before the
    // recursion touches the guard page.
    let hostile = "[".repeat(100_000);
    let err = json::parse(&hostile).unwrap_err();
    assert_eq!(err.kind, JsonErrorKind::TooDeep);

    // A tight custom limit applies to typed decoding too: with depth 1
    // the nested spec object's members are out of reach.
    let limits = JsonLimits {
        max_bytes: 64,
        max_depth: 1,
    };
    let err =
        SubmitBatch::from_json_with_limits("{\"planner\":\"x\",\"spec\":{\"shots\":1}}", &limits)
            .unwrap_err();
    assert!(matches!(err, qrm_wire::WireError::Json(e) if e.kind == JsonErrorKind::TooDeep));
}

#[test]
fn schema_mismatches_are_decode_errors() {
    for text in [
        "{}",
        "{\"planner\":\"qrm\"}",
        "{\"planner\":3,\"spec\":{\"shots\":1,\"size\":2,\"fill\":0.5,\"seed\":1}}",
        "{\"planner\":\"qrm\",\"spec\":{\"shots\":-1,\"size\":2,\"fill\":0.5,\"seed\":1}}",
        "[]",
        "null",
    ] {
        let err = SubmitBatch::from_json(text).unwrap_err();
        assert!(
            matches!(err, qrm_wire::WireError::Decode(_)),
            "input {text:?} gave {err}"
        );
    }
}

#[test]
fn unknown_fields_are_ignored() {
    // Forward compatibility: extra keys (a newer server's additions)
    // must not break older decoders.
    let text = "{\"planner\":\"qrm\",\"novel\":true,\
                \"spec\":{\"shots\":1,\"size\":12,\"fill\":0.55,\"seed\":7,\"extra\":[1,2]}}";
    let request = SubmitBatch::from_json(text).expect("decode");
    assert_eq!(request.planner, "qrm");
    assert_eq!(request.spec.shots, 1);
}

//! AOD cross-product legality checking and greedy move batching.
//!
//! The 2D-AOD generates a tweezer at *every* intersection of its selected
//! row and column tones (paper §II-B). A planner that wants to move a
//! specific set of atoms must therefore choose selections whose cross
//! product does not trap any bystander atom; when that is impossible "the
//! two atom sites will have to be addressed in separate moves". This
//! module provides:
//!
//! * [`trapped_atoms`] / [`verify_intent`] — what a move actually picks up
//!   and whether that matches the planner's intent;
//! * [`AodBatcher`] — greedy partitioning of per-line mover sets into the
//!   fewest legal cross-product moves (the paper's Row Combination Unit
//!   performs this merge on the FPGA, §IV-C).

use crate::bitline;
use crate::error::Error;
use crate::geometry::Position;
use crate::grid::AtomGrid;
use crate::moves::ParallelMove;

/// The atoms a move would actually pick up from `grid`: every occupied
/// site of the selection cross product.
///
/// ```
/// use qrm_core::aod::trapped_atoms;
/// use qrm_core::grid::AtomGrid;
/// use qrm_core::moves::ParallelMove;
///
/// let g = AtomGrid::parse("#.#\n...\n#..")?;
/// let mv = ParallelMove::new(vec![0, 2], vec![0, 2], 0, -1)?;
/// let atoms = trapped_atoms(&g, &mv);
/// assert_eq!(atoms.len(), 3); // (0,0), (0,2), (2,0)
/// # Ok::<(), qrm_core::Error>(())
/// ```
pub fn trapped_atoms(grid: &AtomGrid, mv: &ParallelMove) -> Vec<Position> {
    mv.trap_sites()
        .filter(|p| {
            p.row < grid.height() && p.col < grid.width() && grid.get_unchecked(p.row, p.col)
        })
        .collect()
}

/// Verifies that the move traps exactly the intended atoms and nothing
/// else.
///
/// `intended` must be sorted in row-major order (as produced by
/// [`trapped_atoms`] or grid iteration).
///
/// # Errors
///
/// Returns [`Error::UnintendedTrap`] naming the first bystander atom the
/// cross product would pick up.
pub fn verify_intent(
    grid: &AtomGrid,
    mv: &ParallelMove,
    intended: &[Position],
) -> Result<(), Error> {
    for p in trapped_atoms(grid, mv) {
        if intended.binary_search(&p).is_err() {
            return Err(Error::UnintendedTrap { site: p });
        }
    }
    Ok(())
}

/// One batch produced by the [`AodBatcher`]: a set of lines that can move
/// together in a single cross-product selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Line indices (rows for horizontal motion, columns for vertical).
    pub lines: Vec<usize>,
    /// Union of mover positions along the orthogonal axis, bit-packed.
    pub union_mask: Vec<u64>,
}

impl Batch {
    /// Mover positions as indices.
    pub fn positions(&self, width: usize) -> Vec<usize> {
        bitline::ones(&self.union_mask, width)
    }
}

/// Greedy batcher that partitions per-line mover sets into AOD-legal
/// groups.
///
/// Given, for each line, the occupancy mask and the mask of atoms that
/// *must* move, lines are greedily packed into batches such that the
/// selection `lines x union(movers)` traps no unintended atom: for every
/// line `l` in a batch, `occ[l] & union & !movers[l] == 0`.
#[derive(Debug, Clone, Default)]
pub struct AodBatcher {
    _private: (),
}

impl AodBatcher {
    /// Creates a batcher.
    pub fn new() -> Self {
        AodBatcher { _private: () }
    }

    /// Partitions `movers` into legal batches.
    ///
    /// * `occ` — occupancy mask per line index (full array of lines);
    /// * `movers` — `(line, mover_mask)` pairs; every mover bit must be
    ///   occupied in `occ[line]`.
    ///
    /// Lines are processed in the given order; each line joins the first
    /// open batch it is compatible with (first-fit), which keeps the
    /// common fully-compatible case at one batch.
    ///
    /// # Panics
    ///
    /// Debug-asserts that mover bits are occupied.
    pub fn batch(&self, occ: &[&[u64]], movers: &[(usize, Vec<u64>)]) -> Vec<Batch> {
        // Fast path: a single batch works whenever no line holds a
        // stationary atom under the union of all mover columns — by far
        // the common case for compaction waves.
        let words = movers.iter().map(|(_, m)| m.len()).max().unwrap_or(0);
        let mut union = vec![0u64; words];
        let mut nonempty = 0usize;
        for (_, mask) in movers {
            if bitline::count_ones(mask) == 0 {
                continue;
            }
            nonempty += 1;
            for (u, m) in union.iter_mut().zip(mask.iter()) {
                *u |= m;
            }
        }
        if nonempty == 0 {
            return Vec::new();
        }
        let all_compatible = movers.iter().all(|(line, mask)| {
            bitline::count_ones(mask) == 0
                || occ[*line]
                    .iter()
                    .zip(union.iter().zip(mask.iter()))
                    .all(|(o, (u, m))| o & u & !m == 0)
        });
        if all_compatible {
            return vec![Batch {
                lines: movers
                    .iter()
                    .filter(|(_, m)| bitline::count_ones(m) > 0)
                    .map(|(l, _)| *l)
                    .collect(),
                union_mask: union,
            }];
        }

        // (lines, per-line mover masks, union mask)
        type OpenBatch = (Vec<usize>, Vec<Vec<u64>>, Vec<u64>);
        let mut batches: Vec<OpenBatch> = Vec::new();
        // (lines, per-line mover masks, union mask)
        for (line, mask) in movers {
            if bitline::count_ones(mask) == 0 {
                continue;
            }
            debug_assert!(
                mask.iter().zip(occ[*line].iter()).all(|(m, o)| m & !o == 0),
                "mover bits must be occupied"
            );
            let mut placed = false;
            'batch: for (lines, line_masks, union) in batches.iter_mut() {
                // Candidate line must tolerate the existing union...
                for (m, (o, u)) in mask.iter().zip(occ[*line].iter().zip(union.iter())) {
                    if o & u & !m != 0 {
                        continue 'batch;
                    }
                }
                // ...and every existing line must tolerate the new bits.
                for (l, lm) in lines.iter().zip(line_masks.iter()) {
                    for ((o, m), lmw) in occ[*l].iter().zip(mask.iter()).zip(lm.iter()) {
                        if o & m & !lmw != 0 {
                            continue 'batch;
                        }
                    }
                }
                lines.push(*line);
                line_masks.push(mask.clone());
                for (u, m) in union.iter_mut().zip(mask.iter()) {
                    *u |= m;
                }
                placed = true;
                break;
            }
            if !placed {
                batches.push((vec![*line], vec![mask.clone()], mask.clone()));
            }
        }
        batches
            .into_iter()
            .map(|(lines, _, union_mask)| Batch { lines, union_mask })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitline::words_for;

    fn mask(bits: &[usize], width: usize) -> Vec<u64> {
        let mut m = vec![0u64; words_for(width)];
        for &b in bits {
            bitline::set(&mut m, b, true);
        }
        m
    }

    #[test]
    fn trapped_and_intent() {
        let g = AtomGrid::parse("#.#\n...\n#..").unwrap();
        let mv = ParallelMove::new(vec![0, 2], vec![0, 2], 0, -1).unwrap();
        let atoms = trapped_atoms(&g, &mv);
        assert_eq!(
            atoms,
            vec![
                Position::new(0, 0),
                Position::new(0, 2),
                Position::new(2, 0)
            ]
        );
        assert!(verify_intent(&g, &mv, &atoms).is_ok());
        // Claiming we only intended (0,0) and (0,2): (2,0) is a bystander.
        let intent = vec![Position::new(0, 0), Position::new(0, 2)];
        assert_eq!(
            verify_intent(&g, &mv, &intent),
            Err(Error::UnintendedTrap {
                site: Position::new(2, 0)
            })
        );
    }

    #[test]
    fn compatible_lines_merge_into_one_batch() {
        let width = 8;
        // rows: 0 -> atoms {2,3}, 1 -> atoms {2,3}; both move {2,3}.
        let occ0 = mask(&[2, 3], width);
        let occ1 = mask(&[2, 3], width);
        let occ: Vec<&[u64]> = vec![&occ0, &occ1];
        let movers = vec![(0usize, mask(&[2, 3], width)), (1, mask(&[2, 3], width))];
        let batches = AodBatcher::new().batch(&occ, &movers);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].lines, vec![0, 1]);
        assert_eq!(batches[0].positions(width), vec![2, 3]);
    }

    #[test]
    fn incompatible_lines_split() {
        let width = 8;
        // row 0 moves {3}, but row 1 has a stationary atom at 3 while
        // moving {5}: the union {3,5} would trap row 1's atom at 3.
        let occ0 = mask(&[3], width);
        let occ1 = mask(&[3, 5], width);
        let occ: Vec<&[u64]> = vec![&occ0, &occ1];
        let movers = vec![(0usize, mask(&[3], width)), (1, mask(&[5], width))];
        let batches = AodBatcher::new().batch(&occ, &movers);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].lines, vec![0]);
        assert_eq!(batches[1].lines, vec![1]);
    }

    #[test]
    fn superset_movers_are_compatible() {
        let width = 8;
        // row 0 moves {2,3}; row 1 moves {2}: union {2,3} must not trap a
        // stationary atom in row 1 at col 3 — row 1 has no atom at 3.
        let occ0 = mask(&[2, 3], width);
        let occ1 = mask(&[2], width);
        let occ: Vec<&[u64]> = vec![&occ0, &occ1];
        let movers = vec![(0usize, mask(&[2, 3], width)), (1, mask(&[2], width))];
        let batches = AodBatcher::new().batch(&occ, &movers);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].lines, vec![0, 1]);
    }

    #[test]
    fn empty_mover_masks_skipped() {
        let width = 8;
        let occ0 = mask(&[1], width);
        let occ: Vec<&[u64]> = vec![&occ0];
        let movers = vec![(0usize, mask(&[], width))];
        assert!(AodBatcher::new().batch(&occ, &movers).is_empty());
    }

    #[test]
    fn later_line_conflicting_with_union_opens_new_batch() {
        let width = 8;
        // rows 0,1 move {4}; row 2 moves {6} but has stationary atom at 4.
        let occ0 = mask(&[4], width);
        let occ1 = mask(&[4], width);
        let occ2 = mask(&[4, 6], width);
        let occ: Vec<&[u64]> = vec![&occ0, &occ1, &occ2];
        let movers = vec![
            (0usize, mask(&[4], width)),
            (1, mask(&[4], width)),
            (2, mask(&[6], width)),
        ];
        let batches = AodBatcher::new().batch(&occ, &movers);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].lines, vec![0, 1]);
        assert_eq!(batches[1].lines, vec![2]);
    }

    #[test]
    fn new_line_breaking_existing_line_opens_new_batch() {
        let width = 8;
        // row 0 moves {2} and ALSO has a stationary atom at 5.
        // row 1 moves {5}: adding row 1's union bit 5 would trap row 0's
        // stationary atom at 5.
        let occ0 = mask(&[2, 5], width);
        let occ1 = mask(&[5], width);
        let occ: Vec<&[u64]> = vec![&occ0, &occ1];
        let movers = vec![(0usize, mask(&[2], width)), (1, mask(&[5], width))];
        let batches = AodBatcher::new().batch(&occ, &movers);
        assert_eq!(batches.len(), 2);
    }
}

//! Shot-level dataflow scheduling for batched multi-round runs.
//!
//! The batched pipeline used to run each round as three stage barriers
//! — observe **all** shots, plan **all** shots, execute **all** shots —
//! so one slow shot stalled every other shot in the batch at every
//! barrier. This module replaces the barriers with a per-shot
//! `(round, stage)` cursor: every shot advances through its own
//!
//! ```text
//!            ┌─────────────────────────────────────────────┐
//!            ▼                                             │
//!   ┌─────────────────┐      ┌────────────┐      ┌─────────┴─────┐
//!   │ observe         │ job  │ plan group │ plan │ execute       │
//!   │ (image+detect)  ├─────▶│ (batched)  ├─────▶│ (compile+move)│
//!   └────────┬────────┘      └────────────┘      └───────────────┘
//!            │ None (filled, or out of rounds)
//!            ▼
//!         finished
//! ```
//!
//! chain of pool tasks, each task spawning its successor on the
//! work-stealing pool, so a fast shot can be executing round *k + 1*
//! while a slow shot is still planning round *k*.
//!
//! This is the collaborative-scheduler design of Block-STM–style
//! executors in the easy case: shots are **independent** (disjoint
//! state, per-shot RNG streams, slot-indexed results), so there is
//! nothing to validate and nothing to abort — no shot can read another
//! shot's writes, hence no re-execution machinery, only per-shot
//! progress tracking.
//!
//! # Group formation on readiness
//!
//! Planning stays batched (warm context pool, one task graph per
//! group), but groups are formed by **readiness** instead of by round:
//! the first shot to reach the plan stage spawns one plan-group task
//! and every shot that reaches the stage before that task drains the
//! ready list joins the same group. The drain window is therefore the
//! natural spawn-to-pop latency of the pool — under load, groups grow;
//! when shots trickle in, they plan solo without waiting.
//!
//! # Determinism
//!
//! Group membership varies with scheduling, so determinism rests on the
//! workspace-pinned planner contract: [`plan_batch`] is observationally
//! equal to mapping [`plan`] over the jobs, for every planner. Plans
//! are keyed to their shot (not their group), every shot owns its RNG
//! stream, and results land in per-shot slots — so reports are
//! **bit-identical** for any worker count and any straggler schedule,
//! including the serial inline path. The scheduler's [`DataflowStats`]
//! counters *do* depend on scheduling; they are diagnostics, never
//! inputs.
//!
//! [`plan_batch`]: crate::planner::Planner::plan_batch
//! [`plan`]: crate::planner::Planner::plan

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::error::Error;

/// One shot's view of a multi-round run, as the scheduler drives it.
///
/// A program alternates [`observe`](ShotProgram::observe) (produce the
/// next planning job, or report completion) and
/// [`execute`](ShotProgram::execute) (apply the plan the group produced
/// for this shot). All mutable per-shot state — occupancy, RNG stream,
/// collected round reports — lives inside the program, which the
/// scheduler hands back when the batch finishes.
pub trait ShotProgram: Send {
    /// The planning input one observation produces.
    type Job: Send;
    /// The plan the group planner returns for one job.
    type Plan: Send;

    /// Advances to the next round's planning input, or `None` when the
    /// shot is finished (target filled or round budget exhausted).
    ///
    /// # Errors
    ///
    /// Propagates the shot's observation failures; an error finishes
    /// the shot and aborts the batch.
    fn observe(&mut self) -> Result<Option<Self::Job>, Error>;

    /// Applies this shot's plan for the round just observed.
    ///
    /// # Errors
    ///
    /// Propagates the shot's execution failures; an error finishes the
    /// shot and aborts the batch.
    fn execute(&mut self, plan: Self::Plan) -> Result<(), Error>;
}

/// Scheduling diagnostics of one dataflow run. Counters describe the
/// *schedule*, not the results: they vary with worker count and timing
/// while the *reports* stay bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DataflowStats {
    /// Pool tasks the scheduler ran (observe + plan-group + execute).
    pub tasks_dispatched: u64,
    /// Plan-group tasks that planned at least one shot.
    pub plan_groups: u64,
    /// Shots planned across all groups (so `planned_shots /
    /// plan_groups` is the mean readiness-window group size).
    pub planned_shots: u64,
    /// Observations that started round *r* while some other live shot
    /// was still below round *r* — the overlap the barriered design
    /// forbids.
    pub rounds_overlapped: u64,
    /// Largest round gap observed between the fastest and the slowest
    /// live shot.
    pub max_shot_lag: u64,
}

impl DataflowStats {
    /// Accumulates another run's counters into this one (sums, except
    /// `max_shot_lag` which takes the maximum).
    pub fn absorb(&mut self, other: &DataflowStats) {
        self.tasks_dispatched += other.tasks_dispatched;
        self.plan_groups += other.plan_groups;
        self.planned_shots += other.planned_shots;
        self.rounds_overlapped += other.rounds_overlapped;
        self.max_shot_lag = self.max_shot_lag.max(other.max_shot_lag);
    }
}

/// The shot-level dataflow scheduler: drives a batch of
/// [`ShotProgram`]s to completion with per-shot progress tracking,
/// batching planning by readiness.
#[derive(Debug, Clone, Copy)]
pub struct ShotScheduler {
    workers: usize,
}

impl ShotScheduler {
    /// Creates a scheduler. `workers <= 1` (or a batch of at most one
    /// shot) runs the serial inline path — shot by shot, in index
    /// order, planning singleton groups — which is also the reference
    /// schedule the parallel path must reproduce bit-identically.
    pub fn new(workers: usize) -> Self {
        ShotScheduler { workers }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every shot to completion, returning the programs (in input
    /// order, carrying their accumulated results) and the schedule's
    /// diagnostics.
    ///
    /// `plan_group` plans a ready group's jobs, returning plans in job
    /// order; it must be observationally equal to planning each job
    /// alone (the workspace planner contract), which is what makes
    /// group membership — and therefore the whole schedule — invisible
    /// in the results.
    ///
    /// # Errors
    ///
    /// Returns the first error by shot index among the failures the
    /// schedule observed, and stops dispatching further work as soon as
    /// any failure is recorded. A plan-group failure is attributed to
    /// the lowest-indexed shot in the group. (Which shot gets to fail
    /// first can depend on the schedule; the inline path fails on the
    /// lowest-indexed failing shot's earliest round.)
    ///
    /// # Panics
    ///
    /// Panics if `plan_group` returns a plan count different from its
    /// job count — a planner-contract violation, not a recoverable
    /// condition.
    pub fn run<S, F>(&self, shots: Vec<S>, plan_group: F) -> Result<(Vec<S>, DataflowStats), Error>
    where
        S: ShotProgram,
        F: Fn(&[S::Job]) -> Result<Vec<S::Plan>, Error> + Sync,
    {
        if self.workers <= 1 || shots.len() <= 1 {
            run_inline(shots, plan_group)
        } else {
            run_parallel(shots, plan_group)
        }
    }
}

/// The serial reference schedule: each shot runs to completion in index
/// order, planning singleton groups.
fn run_inline<S, F>(mut shots: Vec<S>, plan_group: F) -> Result<(Vec<S>, DataflowStats), Error>
where
    S: ShotProgram,
    F: Fn(&[S::Job]) -> Result<Vec<S::Plan>, Error>,
{
    let mut stats = DataflowStats::default();
    for shot in &mut shots {
        loop {
            stats.tasks_dispatched += 1;
            let Some(job) = shot.observe()? else { break };
            stats.tasks_dispatched += 1;
            stats.plan_groups += 1;
            stats.planned_shots += 1;
            let mut plans = plan_group(std::slice::from_ref(&job))?;
            assert_eq!(
                plans.len(),
                1,
                "plan_group returned {} plans for 1 job",
                plans.len()
            );
            let plan = plans.pop().expect("singleton plan group");
            stats.tasks_dispatched += 1;
            shot.execute(plan)?;
        }
    }
    Ok((shots, stats))
}

/// Mutable scheduler state shared by all in-flight tasks (one short
/// critical section per task).
struct FlowState<J> {
    /// Shots that reached the plan stage and wait for the next
    /// plan-group task to drain them.
    plan_ready: Vec<(usize, J)>,
    /// Whether a plan-group task is already spawned and will drain
    /// `plan_ready`; kept true from spawn to drain so each group task
    /// collects everything that arrived in its spawn-to-pop window.
    plan_pending: bool,
    /// Rounds started (observations dispatched) per shot.
    cursor: Vec<u64>,
    /// Shots that finished (completed, or failed).
    done: Vec<bool>,
    stats: DataflowStats,
}

/// The parallel run's shared environment: per-shot program slots, the
/// group-formation state, and the first-error slot.
struct Flow<S: ShotProgram, F> {
    /// Each shot's program parks here between its tasks; the chain
    /// structure guarantees at most one task touches a slot at a time,
    /// the mutex makes the hand-off `Sync`.
    slots: Vec<Mutex<Option<S>>>,
    plan_group: F,
    state: Mutex<FlowState<S::Job>>,
    /// Lowest-shot-index error observed so far.
    first_error: Mutex<Option<(usize, Error)>>,
    /// Raised on the first error: later tasks return without working,
    /// so the batch drains quickly instead of finishing doomed rounds.
    aborted: AtomicBool,
}

impl<S, F> Flow<S, F>
where
    S: ShotProgram,
    F: Fn(&[S::Job]) -> Result<Vec<S::Plan>, Error> + Sync,
{
    fn state(&self) -> std::sync::MutexGuard<'_, FlowState<S::Job>> {
        self.state.lock().expect("dataflow state poisoned")
    }

    fn record_error(&self, shot: usize, error: Error) {
        self.aborted.store(true, Ordering::Relaxed);
        let mut first = self
            .first_error
            .lock()
            .expect("dataflow error slot poisoned");
        match &*first {
            Some((lowest, _)) if *lowest <= shot => {}
            _ => *first = Some((shot, error)),
        }
    }

    fn finish_shot(&self, shot: usize) {
        self.state().done[shot] = true;
    }

    /// Observe stage: advance the shot's cursor (recording overlap/lag
    /// against the slowest live shot), run the observation, and either
    /// finish the shot or enqueue its job for group planning.
    fn observe_task<'s, 'e>(&'s self, scope: &rayon::Scope<'s, 'e>, shot: usize)
    where
        S::Plan: 's,
    {
        if self.aborted.load(Ordering::Relaxed) {
            return;
        }
        {
            let mut state = self.state();
            state.stats.tasks_dispatched += 1;
            let round = state.cursor[shot];
            let slowest = (0..state.cursor.len())
                .filter(|&i| i != shot && !state.done[i])
                .map(|i| state.cursor[i])
                .min();
            if let Some(slowest) = slowest {
                if round > slowest {
                    state.stats.rounds_overlapped += 1;
                    let lag = round - slowest;
                    state.stats.max_shot_lag = state.stats.max_shot_lag.max(lag);
                }
            }
            state.cursor[shot] += 1;
        }
        let mut slot = self.slots[shot]
            .lock()
            .expect("dataflow shot slot poisoned");
        let program = slot.as_mut().expect("shot program parked in its slot");
        match program.observe() {
            Err(error) => {
                drop(slot);
                self.finish_shot(shot);
                self.record_error(shot, error);
            }
            Ok(None) => {
                drop(slot);
                self.finish_shot(shot);
            }
            Ok(Some(job)) => {
                drop(slot);
                let spawn_group = {
                    let mut state = self.state();
                    state.plan_ready.push((shot, job));
                    !std::mem::replace(&mut state.plan_pending, true)
                };
                if spawn_group {
                    scope.spawn(move |scope| self.plan_task(scope));
                }
            }
        }
    }

    /// Plan stage: drain every shot that became ready since this task
    /// was spawned, plan them as one group (lowest shot index first),
    /// and fan the plans back out as per-shot execute tasks.
    fn plan_task<'s, 'e>(&'s self, scope: &rayon::Scope<'s, 'e>)
    where
        S::Plan: 's,
    {
        let mut group = {
            let mut state = self.state();
            state.stats.tasks_dispatched += 1;
            state.plan_pending = false;
            std::mem::take(&mut state.plan_ready)
        };
        if group.is_empty() || self.aborted.load(Ordering::Relaxed) {
            return;
        }
        group.sort_unstable_by_key(|(shot, _)| *shot);
        let lead = group[0].0;
        let (ids, jobs): (Vec<usize>, Vec<S::Job>) = group.into_iter().unzip();
        {
            let mut state = self.state();
            state.stats.plan_groups += 1;
            state.stats.planned_shots += ids.len() as u64;
        }
        match (self.plan_group)(&jobs) {
            Err(error) => self.record_error(lead, error),
            Ok(plans) => {
                assert_eq!(
                    plans.len(),
                    ids.len(),
                    "plan_group returned {} plans for {} jobs",
                    plans.len(),
                    ids.len()
                );
                for (shot, plan) in ids.into_iter().zip(plans) {
                    scope.spawn(move |scope| self.execute_task(scope, shot, plan));
                }
            }
        }
    }

    /// Execute stage: apply the shot's plan and chain the next round's
    /// observation.
    fn execute_task<'s, 'e>(&'s self, scope: &rayon::Scope<'s, 'e>, shot: usize, plan: S::Plan)
    where
        S::Plan: 's,
    {
        if self.aborted.load(Ordering::Relaxed) {
            return;
        }
        self.state().stats.tasks_dispatched += 1;
        let mut slot = self.slots[shot]
            .lock()
            .expect("dataflow shot slot poisoned");
        let program = slot.as_mut().expect("shot program parked in its slot");
        match program.execute(plan) {
            Err(error) => {
                drop(slot);
                self.finish_shot(shot);
                self.record_error(shot, error);
            }
            Ok(()) => {
                drop(slot);
                scope.spawn(move |scope| self.observe_task(scope, shot));
            }
        }
    }
}

/// The work-stealing schedule: one task chain per shot on the
/// process-global pool, plan groups formed by readiness.
fn run_parallel<S, F>(shots: Vec<S>, plan_group: F) -> Result<(Vec<S>, DataflowStats), Error>
where
    S: ShotProgram,
    F: Fn(&[S::Job]) -> Result<Vec<S::Plan>, Error> + Sync,
{
    let count = shots.len();
    let flow = Flow {
        slots: shots.into_iter().map(|s| Mutex::new(Some(s))).collect(),
        plan_group,
        state: Mutex::new(FlowState {
            plan_ready: Vec::new(),
            plan_pending: false,
            cursor: vec![0; count],
            done: vec![false; count],
            stats: DataflowStats::default(),
        }),
        first_error: Mutex::new(None),
        aborted: AtomicBool::new(false),
    };
    // Seed one chain per shot; from here on every task spawns its own
    // successor and the pool's deques are the ready queue. The scope
    // guarantees all chains have drained before we collect results, and
    // the calling thread helps run tasks while it waits.
    rayon::scope(|scope| {
        let flow = &flow;
        for shot in 0..count {
            scope.spawn(move |scope| flow.observe_task(scope, shot));
        }
    });
    if let Some((_, error)) = flow
        .first_error
        .into_inner()
        .expect("dataflow error slot poisoned")
    {
        return Err(error);
    }
    let stats = flow
        .state
        .into_inner()
        .expect("dataflow state poisoned")
        .stats;
    let shots = flow
        .slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("dataflow shot slot poisoned")
                .expect("every shot program returned to its slot")
        })
        .collect();
    Ok((shots, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shot that "plans" by echoing its job and counts rounds; the
    /// job carries (shot id, round) so plans are checkable.
    struct Counting {
        id: usize,
        rounds: usize,
        budget: usize,
        log: Vec<(usize, usize)>,
    }

    impl ShotProgram for Counting {
        type Job = (usize, usize);
        type Plan = (usize, usize);

        fn observe(&mut self) -> Result<Option<(usize, usize)>, Error> {
            if self.rounds == self.budget {
                return Ok(None);
            }
            Ok(Some((self.id, self.rounds)))
        }

        fn execute(&mut self, plan: (usize, usize)) -> Result<(), Error> {
            assert_eq!(plan, (self.id, self.rounds), "plan routed to wrong shot");
            self.log.push(plan);
            self.rounds += 1;
            Ok(())
        }
    }

    fn counting_batch(budgets: &[usize]) -> Vec<Counting> {
        budgets
            .iter()
            .enumerate()
            .map(|(id, &budget)| Counting {
                id,
                rounds: 0,
                budget,
                log: Vec::new(),
            })
            .collect()
    }

    fn echo(jobs: &[(usize, usize)]) -> Result<Vec<(usize, usize)>, Error> {
        Ok(jobs.to_vec())
    }

    #[test]
    fn every_shot_runs_its_budget_in_order_for_any_worker_count() {
        let budgets = [3usize, 0, 5, 1, 2];
        for workers in [1, 2, 4, 8] {
            let scheduler = ShotScheduler::new(workers);
            let (shots, stats) = scheduler.run(counting_batch(&budgets), echo).unwrap();
            for (id, shot) in shots.iter().enumerate() {
                assert_eq!(shot.rounds, budgets[id], "workers {workers}");
                let expected: Vec<(usize, usize)> = (0..budgets[id]).map(|r| (id, r)).collect();
                assert_eq!(shot.log, expected, "workers {workers}");
            }
            let total: u64 = budgets.iter().map(|&b| b as u64).sum();
            assert_eq!(stats.planned_shots, total, "workers {workers}");
            assert!(stats.plan_groups <= total);
            assert!(stats.tasks_dispatched >= total);
        }
    }

    #[test]
    fn inline_path_counts_singleton_groups() {
        let (_, stats) = ShotScheduler::new(1)
            .run(counting_batch(&[2, 1]), echo)
            .unwrap();
        assert_eq!(stats.plan_groups, 3);
        assert_eq!(stats.planned_shots, 3);
        // observe per round + final None-observe, plan, execute.
        assert_eq!(stats.tasks_dispatched, 3 * 3 + 2);
        assert_eq!(stats.rounds_overlapped, 0);
        assert_eq!(stats.max_shot_lag, 0);
    }

    #[test]
    fn plan_errors_surface_and_abort() {
        #[derive(Debug)]
        struct Failing;
        impl ShotProgram for Failing {
            type Job = ();
            type Plan = ();
            fn observe(&mut self) -> Result<Option<()>, Error> {
                Ok(Some(()))
            }
            fn execute(&mut self, _plan: ()) -> Result<(), Error> {
                Ok(())
            }
        }
        for workers in [1, 4] {
            let shots = vec![Failing, Failing, Failing];
            let err = ShotScheduler::new(workers)
                .run(shots, |_jobs: &[()]| {
                    Err::<Vec<()>, Error>(Error::InvalidTarget {
                        reason: "group planning rejected",
                    })
                })
                .unwrap_err();
            assert!(
                matches!(err, Error::InvalidTarget { .. }),
                "workers {workers}"
            );
        }
    }

    #[test]
    fn stats_absorb_sums_and_maxes() {
        let mut total = DataflowStats {
            tasks_dispatched: 10,
            plan_groups: 2,
            planned_shots: 4,
            rounds_overlapped: 1,
            max_shot_lag: 2,
        };
        total.absorb(&DataflowStats {
            tasks_dispatched: 5,
            plan_groups: 1,
            planned_shots: 2,
            rounds_overlapped: 3,
            max_shot_lag: 1,
        });
        assert_eq!(total.tasks_dispatched, 15);
        assert_eq!(total.plan_groups, 3);
        assert_eq!(total.planned_shots, 6);
        assert_eq!(total.rounds_overlapped, 4);
        assert_eq!(total.max_shot_lag, 2);
    }
}

//! Bit-vector line utilities.
//!
//! A *line* is one row (or one column, after transposition) of an
//! [`AtomGrid`](crate::grid::AtomGrid), stored as little-endian `u64`
//! words with an explicit logical width. The shift kernel (software in
//! [`crate::kernel`], hardware model in `qrm-fpga`) manipulates lines with
//! these primitives, so both implementations share exact semantics.
//!
//! Position 0 is the compression corner; a *suffix shift at hole `h`*
//! moves every atom at positions `> h` one site toward 0 — the paper's
//! elementary move (§III-A: "we move all atoms positioned to the left of
//! each hole, shifting them one step").

/// Number of bits per storage word.
pub const WORD_BITS: usize = 64;

/// Returns the number of words needed for `width` bits.
pub const fn words_for(width: usize) -> usize {
    width.div_ceil(WORD_BITS)
}

/// Reads bit `pos`.
///
/// # Panics
///
/// Panics when `pos / 64` exceeds the slice.
#[inline]
pub fn get(words: &[u64], pos: usize) -> bool {
    (words[pos / WORD_BITS] >> (pos % WORD_BITS)) & 1 == 1
}

/// Writes bit `pos`.
///
/// # Panics
///
/// Panics when `pos / 64` exceeds the slice.
#[inline]
pub fn set(words: &mut [u64], pos: usize, value: bool) {
    let mask = 1u64 << (pos % WORD_BITS);
    if value {
        words[pos / WORD_BITS] |= mask;
    } else {
        words[pos / WORD_BITS] &= !mask;
    }
}

/// Population count of the whole line.
pub fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Position of the highest set bit, or `None` for an empty line.
///
/// ```
/// let line = [0b1010u64];
/// assert_eq!(qrm_core::bitline::highest_one(&line), Some(3));
/// assert_eq!(qrm_core::bitline::highest_one(&[0u64]), None);
/// ```
pub fn highest_one(words: &[u64]) -> Option<usize> {
    for (i, &w) in words.iter().enumerate().rev() {
        if w != 0 {
            return Some(i * WORD_BITS + (WORD_BITS - 1 - w.leading_zeros() as usize));
        }
    }
    None
}

/// Position of the lowest set bit, or `None` for an empty line.
pub fn lowest_one(words: &[u64]) -> Option<usize> {
    for (i, &w) in words.iter().enumerate() {
        if w != 0 {
            return Some(i * WORD_BITS + w.trailing_zeros() as usize);
        }
    }
    None
}

/// Position of the lowest **zero** bit in `lo..hi`, or `None` when the
/// range is fully occupied (or empty).
///
/// ```
/// let line = [0b0111u64];
/// assert_eq!(qrm_core::bitline::lowest_zero_in(&line, 0, 8), Some(3));
/// assert_eq!(qrm_core::bitline::lowest_zero_in(&line, 0, 3), None);
/// ```
pub fn lowest_zero_in(words: &[u64], lo: usize, hi: usize) -> Option<usize> {
    if lo >= hi {
        return None;
    }
    let mut pos = lo;
    while pos < hi {
        let w = pos / WORD_BITS;
        let b = pos % WORD_BITS;
        // Invert and mask off bits below `pos` within this word.
        let inv = !words[w] & (u64::MAX << b);
        if inv != 0 {
            let cand = w * WORD_BITS + inv.trailing_zeros() as usize;
            return if cand < hi { Some(cand) } else { None };
        }
        pos = (w + 1) * WORD_BITS;
    }
    None
}

/// The lowest *eligible hole* for a suffix shift within `[floor, limit)`:
/// the lowest empty position `h >= floor`, `h < limit`, with at least one
/// atom at a position `> h`. Returns `None` when no shift can fire.
///
/// ```
/// // atoms at 2 and 5; floor 0: hole 0 is eligible.
/// let line = [0b100100u64];
/// assert_eq!(qrm_core::bitline::eligible_hole(&line, 0, 6), Some(0));
/// // floor 3: hole 3 eligible (atom at 5 above it).
/// assert_eq!(qrm_core::bitline::eligible_hole(&line, 3, 6), Some(3));
/// // nothing above position 5.
/// assert_eq!(qrm_core::bitline::eligible_hole(&line, 5, 6), None);
/// ```
pub fn eligible_hole(words: &[u64], floor: usize, limit: usize) -> Option<usize> {
    let top = highest_one(words)?;
    // A hole at h needs an atom above it, so h < top; also h < limit.
    lowest_zero_in(words, floor, limit.min(top))
}

/// Applies a suffix shift at `hole`: every bit at position `> hole` moves
/// one position down within the logical `width`. Bits `<= hole` are
/// untouched; the top position becomes empty.
///
/// # Panics
///
/// Debug-asserts that position `hole` is empty.
///
/// ```
/// let mut line = [0b110100u64];
/// qrm_core::bitline::suffix_shift(&mut line, 0, 64);
/// assert_eq!(line[0], 0b011010);
/// ```
pub fn suffix_shift(words: &mut [u64], hole: usize, width: usize) {
    debug_assert!(hole < width, "hole {hole} beyond width {width}");
    debug_assert!(!get(words, hole), "suffix shift target {hole} is occupied");
    let w0 = hole / WORD_BITS;
    let b0 = hole % WORD_BITS;
    let n = words_for(width);
    // Shift words w0..n right by one bit, carrying across boundaries, then
    // restore the untouched low bits of word w0 (positions <= hole).
    let keep = words[w0] & low_mask(b0); // bits strictly below hole (hole bit itself is 0)
    for i in w0..n {
        let next = if i + 1 < n { words[i + 1] } else { 0 };
        words[i] = (words[i] >> 1) | (next << (WORD_BITS - 1));
    }
    words[w0] = (words[w0] & !low_mask(b0)) | keep;
    // Clear any bit that slid in above the logical width (none can, since
    // we only shift down, but keep the tail clean for safety).
    let tail = width % WORD_BITS;
    if tail != 0 {
        words[n - 1] &= low_mask(tail);
    }
}

/// Mask with bits `0..bits` set.
#[inline]
fn low_mask(bits: usize) -> u64 {
    if bits >= WORD_BITS {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Collects the set-bit positions of a line into a vector.
pub fn ones(words: &[u64], width: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(count_ones(words));
    for (i, &w) in words.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let pos = i * WORD_BITS + w.trailing_zeros() as usize;
            if pos < width {
                out.push(pos);
            }
            w &= w - 1;
        }
    }
    out
}

/// Shifts a whole line one position toward higher indices (west-to-east),
/// dropping any bit that would leave `width`.
pub fn shift_up_one(words: &[u64], width: usize) -> Vec<u64> {
    let n = words.len();
    let mut out = vec![0u64; n];
    let mut carry = 0u64;
    for i in 0..n {
        out[i] = (words[i] << 1) | carry;
        carry = words[i] >> (WORD_BITS - 1);
    }
    let tail = width % WORD_BITS;
    if tail != 0 {
        out[n - 1] &= low_mask(tail);
    }
    out
}

/// Shifts a whole line one position toward lower indices (east-to-west),
/// dropping bit 0.
pub fn shift_down_one(words: &[u64]) -> Vec<u64> {
    let n = words.len();
    let mut out = vec![0u64; n];
    for i in 0..n {
        let next = if i + 1 < n { words[i + 1] } else { 0 };
        out[i] = (words[i] >> 1) | (next << (WORD_BITS - 1));
    }
    out
}

/// Builds a mask with bits `lo..hi` set, `len_words` words long.
pub fn range_mask(len_words: usize, lo: usize, hi: usize) -> Vec<u64> {
    let hi = hi.min(len_words * WORD_BITS);
    let mut m = vec![0u64; len_words];
    if lo >= hi {
        return m;
    }
    for (i, word) in m.iter_mut().enumerate() {
        let word_lo = i * WORD_BITS;
        let word_hi = word_lo + WORD_BITS;
        if hi <= word_lo || lo >= word_hi {
            continue;
        }
        let start = lo.max(word_lo) - word_lo;
        let end = hi.min(word_hi) - word_lo;
        let upper = if end == WORD_BITS {
            u64::MAX
        } else {
            (1u64 << end) - 1
        };
        *word = upper & !((1u64 << start) - 1);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-by-bit reference for the word-level suffix shift.
    fn suffix_shift_ref(words: &mut [u64], hole: usize, width: usize) {
        for pos in hole..width.saturating_sub(1) {
            let above = get(words, pos + 1);
            set(words, pos, above);
        }
        if width > 0 {
            set(words, width - 1, false);
        }
    }

    #[test]
    fn get_set_roundtrip_across_words() {
        let mut w = vec![0u64; 2];
        for pos in [0, 1, 63, 64, 65, 127] {
            set(&mut w, pos, true);
            assert!(get(&w, pos));
            set(&mut w, pos, false);
            assert!(!get(&w, pos));
        }
    }

    #[test]
    fn highest_lowest() {
        let mut w = vec![0u64; 2];
        assert_eq!(highest_one(&w), None);
        assert_eq!(lowest_one(&w), None);
        set(&mut w, 5, true);
        set(&mut w, 100, true);
        assert_eq!(lowest_one(&w), Some(5));
        assert_eq!(highest_one(&w), Some(100));
    }

    #[test]
    fn lowest_zero_in_ranges() {
        let w = [0b0111u64, u64::MAX];
        assert_eq!(lowest_zero_in(&w, 0, 128), Some(3));
        assert_eq!(lowest_zero_in(&w, 0, 3), None);
        assert_eq!(lowest_zero_in(&w, 4, 64), Some(4));
        // second word fully occupied
        assert_eq!(lowest_zero_in(&[u64::MAX, u64::MAX], 0, 128), None);
        assert_eq!(lowest_zero_in(&w, 5, 5), None);
    }

    #[test]
    fn eligible_hole_cases() {
        assert_eq!(eligible_hole(&[0u64], 0, 64), None);
        assert_eq!(eligible_hole(&[0b111u64], 0, 64), None);
        assert_eq!(eligible_hole(&[0b101u64], 0, 64), Some(1));
        assert_eq!(eligible_hole(&[0b101u64], 2, 64), None);
        assert_eq!(eligible_hole(&[0b1001u64], 1, 1), None);
        assert_eq!(eligible_hole(&[0b1001u64], 1, 4), Some(1));
    }

    #[test]
    fn suffix_shift_behaviour() {
        let mut w = vec![0b110100u64];
        suffix_shift(&mut w, 0, 64);
        assert_eq!(w[0], 0b011010);
        let mut w = vec![0b110101u64];
        suffix_shift(&mut w, 3, 64);
        assert_eq!(w[0], 0b011101);
    }

    #[test]
    fn suffix_shift_across_word_boundary() {
        let width = 130;
        let mut w = vec![0u64; words_for(width)];
        set(&mut w, 63, true);
        set(&mut w, 64, true);
        set(&mut w, 129, true);
        suffix_shift(&mut w, 0, width);
        assert_eq!(ones(&w, width), vec![62, 63, 128]);
    }

    #[test]
    fn suffix_shift_matches_reference_exhaustively() {
        // All 10-bit patterns, all holes: word-level == bit-level.
        let width = 10;
        for pattern in 0u64..(1 << width) {
            for hole in 0..width {
                if (pattern >> hole) & 1 == 1 {
                    continue; // not a hole
                }
                let mut a = vec![pattern];
                let mut b = vec![pattern];
                suffix_shift(&mut a, hole, width);
                suffix_shift_ref(&mut b, hole, width);
                assert_eq!(a, b, "pattern {pattern:#b} hole {hole}");
            }
        }
    }

    #[test]
    fn suffix_shift_multiword_matches_reference() {
        // Pseudo-random multi-word lines.
        let width = 150;
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let line: Vec<u64> = (0..words_for(width)).map(|_| next()).collect();
            let mut line = line;
            // mask tail
            line[2] &= (1u64 << (width - 128)) - 1;
            if let Some(h) = lowest_zero_in(&line, 0, width) {
                let mut a = line.clone();
                let mut b = line.clone();
                suffix_shift(&mut a, h, width);
                suffix_shift_ref(&mut b, h, width);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn suffix_shift_preserves_count_and_low_bits() {
        let width = 90;
        let mut w = vec![0u64; words_for(width)];
        for pos in [1, 3, 40, 70, 89] {
            set(&mut w, pos, true);
        }
        let before = count_ones(&w);
        suffix_shift(&mut w, 2, width);
        assert_eq!(count_ones(&w), before);
        assert_eq!(ones(&w, width), vec![1, 2, 39, 69, 88]);
    }

    #[test]
    fn ones_and_range_mask() {
        let m = range_mask(2, 60, 70);
        assert_eq!(ones(&m, 128), (60..70).collect::<Vec<_>>());
        assert_eq!(count_ones(&m), 10);
    }

    #[test]
    fn whole_line_shifts() {
        let width = 130;
        let mut w = vec![0u64; words_for(width)];
        for pos in [0, 63, 64, 129] {
            set(&mut w, pos, true);
        }
        let up = shift_up_one(&w, width);
        assert_eq!(ones(&up, width), vec![1, 64, 65]); // 129 dropped
        let down = shift_down_one(&w);
        assert_eq!(ones(&down, width), vec![62, 63, 128]); // 0 dropped
    }

    #[test]
    fn words_for_sizes() {
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(130), 3);
    }
}

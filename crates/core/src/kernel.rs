//! The canonical per-quadrant shift kernel (paper §III-A, §IV-C).
//!
//! The kernel operates on a canonically-oriented quadrant grid
//! (compression corner at `(0, 0)`, see [`crate::quadrant`]) and emits a
//! sequence of *passes*; each pass scans every line along one axis and
//! produces *waves* of simultaneous unit suffix shifts — exactly what the
//! FPGA pipeline of Fig. 6 computes with its row buffer / column buffer /
//! shift-command buffer datapath. Passes alternate row-wise and
//! column-wise, repeated for a bounded number of iterations (the paper
//! uses four).
//!
//! Two strategies are provided:
//!
//! * [`KernelStrategy::Greedy`] — the paper-faithful kernel: every line is
//!   compacted flush toward the corner on each pass. Simple and fast, but
//!   greedy corner compaction can reach a "Young-diagram" fixed point that
//!   leaves the far corner of aggressive targets under-filled.
//! * [`KernelStrategy::Balanced`] — a deficit-aware extension: supply
//!   lines (rows outside the target band) are flushed only down to the
//!   leftmost *deficient* target column, parking their atoms above the
//!   columns that still need them before the vertical pass drains them in.
//!   This preserves the same pass/wave structure (and therefore the same
//!   hardware pipeline) while reliably filling paper-scale targets.
//!
//! The paper's `sen` manual-control signal (blocking selected lines from
//! shifting, §IV-C) is exposed as [`KernelConfig::row_enable`] /
//! [`KernelConfig::col_enable`].

use crate::bitline;
use crate::error::Error;
use crate::geometry::{Axis, Rect};
use crate::grid::AtomGrid;

/// One unit suffix shift: in line `line`, every atom at positions
/// `> hole` moves one site toward position 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LocalShift {
    /// Line index (row for a row pass, column for a column pass).
    pub line: usize,
    /// Hole position along the line; must be empty when the shift fires.
    pub hole: usize,
}

/// One wave: suffix shifts on distinct lines that execute simultaneously
/// (same direction, same unit step — the multi-tweezer parallelism of
/// §II-B).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LocalWave {
    /// The simultaneous shifts, at most one per line.
    pub shifts: Vec<LocalShift>,
}

impl LocalWave {
    /// Whether the wave contains no shifts.
    pub fn is_empty(&self) -> bool {
        self.shifts.is_empty()
    }
}

/// One pass: all waves produced by scanning every line along `axis` until
/// no line can shift further.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LocalPass {
    /// Scan axis: [`Axis::Row`] compresses columns westward (toward local
    /// column 0), [`Axis::Col`] compresses rows northward (toward local
    /// row 0).
    pub axis: Axis,
    /// Waves in execution order.
    pub waves: Vec<LocalWave>,
}

impl LocalPass {
    /// Total number of unit shifts in the pass.
    pub fn shift_count(&self) -> usize {
        self.waves.iter().map(|w| w.shifts.len()).sum()
    }
}

/// Kernel scheduling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KernelStrategy {
    /// Paper-faithful greedy compaction: flush every line to the corner.
    Greedy,
    /// Greedy, but only holes inside the target band trigger shifts
    /// (a `sen`-style restriction of shifting "far from the center").
    GreedyTargetOnly,
    /// Deficit-aware supply parking (extension; default).
    #[default]
    Balanced,
}

/// Configuration of a [`ShiftKernel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelConfig {
    /// Target extent along the row axis (canonical rows `0..target_height`).
    pub target_height: usize,
    /// Target extent along the column axis (canonical cols `0..target_width`).
    pub target_width: usize,
    /// Iteration budget; each iteration is one row pass plus one column
    /// pass. The paper uses a static 4 (§V-B); the library default is 12.
    pub max_iterations: usize,
    /// Scheduling strategy.
    pub strategy: KernelStrategy,
    /// Per-row shift enable (`sen`): rows mapped to `false` never shift in
    /// row passes. `None` enables all rows.
    pub row_enable: Option<Vec<bool>>,
    /// Per-column shift enable for column passes. `None` enables all.
    pub col_enable: Option<Vec<bool>>,
    /// Run exactly `max_iterations` iterations with no early exit — the
    /// behaviour of the FPGA, whose pass schedule is static ("it is also
    /// statically known which shift commands finish at which time",
    /// §IV-C). Software defaults to `false` (stop once the target fills
    /// or no shift fires).
    pub static_iterations: bool,
}

impl KernelConfig {
    /// A config for a `target_height x target_width` corner target with
    /// library defaults: balanced strategy, a 12-iteration budget, all
    /// lines enabled.
    ///
    /// The paper's hardware runs a *static* 4 iterations with the greedy
    /// kernel; at 50 % load that fully assembles ~2/3 of paper-scale
    /// targets and leaves 1–3 defects otherwise (see EXPERIMENTS.md,
    /// E-x1). The balanced strategy reaches ~100 % assembly within ~5
    /// iterations on average (more for larger arrays); the 12-iteration
    /// budget is a safety margin — software exits early once the target
    /// fills.
    pub fn new(target_height: usize, target_width: usize) -> Self {
        KernelConfig {
            target_height,
            target_width,
            max_iterations: 12,
            strategy: KernelStrategy::default(),
            row_enable: None,
            col_enable: None,
            static_iterations: false,
        }
    }

    /// Enables or disables the hardware-style static iteration schedule.
    #[must_use]
    pub fn with_static_iterations(mut self, enabled: bool) -> Self {
        self.static_iterations = enabled;
        self
    }

    /// Replaces the strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: KernelStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }
}

/// Result of running the kernel on one canonical quadrant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelOutcome {
    /// Passes in execution order (alternating row/column, starting with
    /// rows). A quadrant that finishes early simply has fewer passes.
    pub passes: Vec<LocalPass>,
    /// Quadrant occupancy after all passes.
    pub final_grid: AtomGrid,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the corner target is defect-free.
    pub filled: bool,
}

impl KernelOutcome {
    /// Total unit shifts across all passes.
    pub fn shift_count(&self) -> usize {
        self.passes.iter().map(LocalPass::shift_count).sum()
    }
}

/// In-flight state of an incremental kernel run (see
/// [`ShiftKernel::start`] / [`ShiftKernel::step`] /
/// [`ShiftKernel::finish`]). The parallel planning engine holds one per
/// quadrant and schedules iterations as individual work-queue tasks.
#[derive(Debug, Clone)]
pub struct KernelState {
    grid: AtomGrid,
    passes: Vec<LocalPass>,
    scratch: PassScratch,
    iterations: usize,
    done: bool,
}

impl KernelState {
    /// Iterations performed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the run has reached a terminal state.
    pub fn is_done(&self) -> bool {
        self.done
    }
}

/// Recycled kernel buffers (grid words plus the pass vector), reclaimed
/// from a finished [`KernelOutcome`] and only consumable by
/// [`ShiftKernel::start_in`], which reinitialises them in place. The
/// type is deliberately inert — it cannot be stepped or finished — so
/// stale data from the previous run is unreachable by construction.
/// The engine's [`PlanContext`](crate::engine::PlanContext) pools these
/// across `plan_batch` rounds.
#[derive(Debug)]
pub struct KernelScratch {
    grid: AtomGrid,
    passes: Vec<LocalPass>,
}

impl KernelScratch {
    /// Reclaims the buffers of a finished outcome as reusable scratch.
    pub fn reclaim(outcome: KernelOutcome) -> KernelScratch {
        KernelScratch {
            grid: outcome.final_grid,
            passes: outcome.passes,
        }
    }
}

/// Recycled per-pass working buffer: the transposed view a column pass
/// scans in place of the grid. A warm `PassScratch` makes
/// [`run_pass_in`] (and therefore [`ShiftKernel::step`]) allocation-free
/// in steady state; results are bit-identical to a cold one. Recovered
/// from a finished run with [`ShiftKernel::finish_split`] and fed back
/// in through [`ShiftKernel::start_with`] — the engine's
/// [`PlanContext`](crate::engine::PlanContext) pools these alongside
/// [`KernelScratch`].
#[derive(Debug, Clone)]
pub struct PassScratch {
    view: AtomGrid,
}

impl PassScratch {
    /// A cold scratch (placeholder buffers; grown on first use).
    #[must_use]
    pub fn new() -> PassScratch {
        PassScratch {
            view: AtomGrid::new(1, 1).expect("1x1 placeholder grid"),
        }
    }
}

impl Default for PassScratch {
    fn default() -> Self {
        PassScratch::new()
    }
}

/// The per-quadrant scheduler.
///
/// ```
/// use qrm_core::kernel::{KernelConfig, ShiftKernel};
/// use qrm_core::grid::AtomGrid;
///
/// // 4x4 canonical quadrant, 2x2 corner target.
/// let q = AtomGrid::parse(
///     ".#..\n\
///      ...#\n\
///      #...\n\
///      ..#.",
/// )?;
/// let kernel = ShiftKernel::new(KernelConfig::new(2, 2));
/// let out = kernel.run(&q)?;
/// assert!(out.filled);
/// assert_eq!(out.final_grid.atom_count(), q.atom_count());
/// # Ok::<(), qrm_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShiftKernel {
    config: KernelConfig,
}

impl ShiftKernel {
    /// Creates a kernel with the given configuration.
    pub fn new(config: KernelConfig) -> Self {
        ShiftKernel { config }
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Runs the kernel on a canonical quadrant grid.
    ///
    /// Equivalent to [`start`](Self::start), [`step`](Self::step) until
    /// exhausted, then [`finish`](Self::finish) — the decomposition the
    /// parallel planning engine ([`crate::engine`]) schedules one
    /// iteration at a time.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTarget`] when the target extent exceeds the
    /// quadrant.
    pub fn run(&self, quadrant: &AtomGrid) -> Result<KernelOutcome, Error> {
        let mut state = self.start(quadrant)?;
        while !self.step(&mut state)? {}
        self.finish(state)
    }

    /// Validates the quadrant against the configured target and prepares
    /// an incremental kernel run.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTarget`] when the target extent exceeds the
    /// quadrant or is zero.
    pub fn start(&self, quadrant: &AtomGrid) -> Result<KernelState, Error> {
        self.start_in(quadrant, None)
    }

    /// [`start`](Self::start), optionally reusing recycled buffers (see
    /// [`KernelScratch::reclaim`]): the grid words and the pass vector
    /// are reinitialised in place instead of freshly allocated.
    /// Behaviour is bit-identical to `start` either way.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTarget`] when the target extent exceeds the
    /// quadrant or is zero.
    pub fn start_in(
        &self,
        quadrant: &AtomGrid,
        recycled: Option<KernelScratch>,
    ) -> Result<KernelState, Error> {
        self.start_with(quadrant, recycled, None)
    }

    /// [`start_in`](Self::start_in) that additionally accepts a recycled
    /// per-pass working buffer (see [`PassScratch`]), completing the
    /// allocation-free steady state: with both scratches warm, the whole
    /// start/step/finish cycle reuses previously allocated memory.
    /// Behaviour is bit-identical regardless of which scratches are
    /// supplied.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTarget`] when the target extent exceeds the
    /// quadrant or is zero.
    pub fn start_with(
        &self,
        quadrant: &AtomGrid,
        recycled: Option<KernelScratch>,
        pass: Option<PassScratch>,
    ) -> Result<KernelState, Error> {
        let (qh, qw) = quadrant.dims();
        let (th, tw) = (self.config.target_height, self.config.target_width);
        if th > qh || tw > qw {
            return Err(Error::InvalidTarget {
                reason: "target extent exceeds quadrant",
            });
        }
        if th == 0 || tw == 0 {
            return Err(Error::InvalidTarget {
                reason: "target has zero extent",
            });
        }
        let (grid, passes) = match recycled {
            Some(mut scrap) => {
                scrap.grid.clone_from(quadrant);
                scrap.passes.clear();
                (scrap.grid, scrap.passes)
            }
            None => (quadrant.clone(), Vec::new()),
        };
        Ok(KernelState {
            grid,
            passes,
            scratch: pass.unwrap_or_default(),
            iterations: 0,
            done: self.config.max_iterations == 0,
        })
    }

    /// Advances an incremental run by **one iteration** (one row pass
    /// plus one column pass), honouring the same early-exit rules as
    /// [`run`](Self::run). Returns `true` once the run is complete (no
    /// further `step` will change the state).
    ///
    /// # Errors
    ///
    /// Propagates fill-check failures (impossible for states produced by
    /// [`start`](Self::start)).
    pub fn step(&self, state: &mut KernelState) -> Result<bool, Error> {
        if state.done {
            return Ok(true);
        }
        let target = Rect::new(0, 0, self.config.target_height, self.config.target_width);
        if !self.config.static_iterations && state.grid.is_filled(&target)? {
            state.done = true;
            return Ok(true);
        }
        let (qh, qw) = state.grid.dims();
        let (th, tw) = (self.config.target_height, self.config.target_width);
        state.iterations += 1;
        let row_limits = self.row_limits(&state.grid, qw, th, tw);
        let row_pass = run_pass_in(
            &mut state.grid,
            Axis::Row,
            &row_limits,
            self.config.row_enable.as_deref(),
            &mut state.scratch,
        );
        let col_limits = self.col_limits(qh, qw, th);
        let col_pass = run_pass_in(
            &mut state.grid,
            Axis::Col,
            &col_limits,
            self.config.col_enable.as_deref(),
            &mut state.scratch,
        );
        let progressed = row_pass.shift_count() + col_pass.shift_count() > 0;
        state.passes.push(row_pass);
        state.passes.push(col_pass);
        if (!progressed && !self.config.static_iterations)
            || state.iterations >= self.config.max_iterations
        {
            state.done = true;
        }
        Ok(state.done)
    }

    /// Consumes an incremental run and produces the outcome.
    ///
    /// # Errors
    ///
    /// Propagates fill-check failures (impossible for states produced by
    /// [`start`](Self::start)).
    pub fn finish(&self, state: KernelState) -> Result<KernelOutcome, Error> {
        self.finish_split(state).map(|(outcome, _)| outcome)
    }

    /// [`finish`](Self::finish) that also hands back the run's per-pass
    /// working buffer for recycling into a later
    /// [`start_with`](Self::start_with) — the outcome itself cannot
    /// carry it ([`KernelOutcome`] is a plain value type compared
    /// structurally by tests and constructed literally by the FPGA
    /// model).
    ///
    /// # Errors
    ///
    /// Propagates fill-check failures (impossible for states produced by
    /// [`start`](Self::start)).
    pub fn finish_split(&self, state: KernelState) -> Result<(KernelOutcome, PassScratch), Error> {
        let target = Rect::new(0, 0, self.config.target_height, self.config.target_width);
        let filled = state.grid.is_filled(&target)?;
        Ok((
            KernelOutcome {
                passes: state.passes,
                final_grid: state.grid,
                iterations: state.iterations,
                filled,
            },
            state.scratch,
        ))
    }

    fn row_limits(&self, grid: &AtomGrid, qw: usize, th: usize, tw: usize) -> Vec<(usize, usize)> {
        let _ = qw;
        plan_row_windows(grid, self.config.strategy, th, tw)
    }

    fn col_limits(&self, qh: usize, qw: usize, th: usize) -> Vec<(usize, usize)> {
        plan_col_windows(self.config.strategy, qh, qw, th, self.config.target_width)
    }
}

/// Computes the per-row `(floor, limit)` hole windows for a horizontal
/// pass — the strategy-specific planning step of the kernel. Exposed so
/// the cycle-accurate FPGA model (`qrm-fpga`) drives its pipelined shift
/// units with exactly the same windows.
///
/// The balanced strategy plans *quota parking*: each row is flushed only
/// down to a *floor* chosen over the columns whose projected atom supply
/// is still short of the target height. Because atoms only ever move
/// toward column 0, deficits to the **right** are the scarce resource —
/// only atoms still east of them can ever serve them — so the floor is
/// picked to maximise the number of deficient columns covered by the
/// row's resulting pile, breaking ties toward the east. Floors are chosen
/// sequentially, simulating each row's pass and updating the per-column
/// supply, so each deficient column receives parked atoms from as many
/// distinct rows as it still needs. Atoms right of the target band that
/// are not yet needed stay parked there as a reserve for later iterations
/// (the balanced vertical pass deliberately leaves those columns
/// untouched).
pub fn plan_row_windows(
    grid: &AtomGrid,
    strategy: KernelStrategy,
    th: usize,
    tw: usize,
) -> Vec<(usize, usize)> {
    let (qh, qw) = grid.dims();
    {
        match strategy {
            KernelStrategy::Greedy => vec![(0, qw); qh],
            KernelStrategy::GreedyTargetOnly => vec![(0, tw); qh],
            KernelStrategy::Balanced => {
                // Live supply per target column: every atom already in
                // column c can be drained into the target band by the
                // vertical pass, so a column is satisfied once its total
                // supply reaches the target height.
                let mut supply: Vec<usize> = (0..tw).map(|c| grid.col_count(c)).collect();
                let mut limits = vec![(0, tw); qh];
                #[allow(clippy::needless_range_loop)] // r indexes both limits and grid rows
                for r in 0..qh {
                    let floor = best_floor(grid.row_bits(r), &supply, th, tw);
                    let limit = if r < th { tw } else { qw };
                    limits[r] = (floor.min(limit), limit);
                    // Simulate this row's single-traversal pass to keep
                    // the supply projection accurate for the remaining
                    // rows (same semantics as `run_pass`).
                    let mut bits = grid.row_bits(r).to_vec();
                    let before = bitline::ones(&bits, qw);
                    for k in floor.min(limit)..limit {
                        if !bitline::get(&bits, k)
                            && bitline::highest_one(&bits).is_some_and(|top| top > k)
                        {
                            bitline::suffix_shift(&mut bits, k, qw);
                        }
                    }
                    let after = bitline::ones(&bits, qw);
                    for p in before {
                        if p < tw {
                            supply[p] -= 1;
                        }
                    }
                    for p in after {
                        if p < tw {
                            supply[p] += 1;
                        }
                    }
                }
                limits
            }
        }
    }
}

/// Picks the parking floor for one row under the balanced strategy: the
/// floor whose resulting pile covers the most still-deficient columns,
/// preferring larger floors on ties (right deficits can only be served
/// by atoms still east of them; left deficits keep more options open).
/// Returns `tw` (hold the reserve right of the band) when the row cannot
/// serve any deficit.
fn best_floor(bits: &[u64], supply: &[usize], th: usize, tw: usize) -> usize {
    let deficient: Vec<bool> = supply.iter().map(|&s| s < th).collect();
    let Some(top) = bitline::highest_one(bits) else {
        return tw; // empty row: window is irrelevant
    };
    // Rightmost deficit this row can reach with at least one atom.
    let Some(rd) = (0..tw).rev().find(|&c| deficient[c] && top >= c) else {
        return tw;
    };
    // Evaluate candidate floors: a pile anchored at `floor` holds the
    // row's atoms at positions >= floor and covers floor..floor+n-1.
    // Ascending iteration with `>=` keeps the largest floor among the
    // maxima, so atoms are never flushed past a right deficit needlessly.
    let mut best = tw;
    let mut best_cover = 0usize;
    for floor in 0..=rd {
        let n = (floor..=top).filter(|&p| bitline::get(bits, p)).count();
        if n == 0 {
            continue;
        }
        let hi = (floor + n).min(tw);
        let cover = (floor..hi).filter(|&c| deficient[c]).count();
        if cover > 0 && cover >= best_cover {
            best_cover = cover;
            best = floor;
        }
    }
    best
}

/// Computes the per-column `(floor, limit)` hole windows for a vertical
/// pass. Columns are the lines of the pass; the window bounds hole
/// positions along each column (i.e. row indices). Exposed for the FPGA
/// model, like [`plan_row_windows`].
pub fn plan_col_windows(
    strategy: KernelStrategy,
    qh: usize,
    qw: usize,
    th: usize,
    tw: usize,
) -> Vec<(usize, usize)> {
    match strategy {
        KernelStrategy::Greedy => vec![(0, qh); qw],
        // Only fill holes inside the target band of rows; atoms above
        // still ride the suffix down into them.
        KernelStrategy::GreedyTargetOnly => vec![(0, th); qw],
        // Drain only target columns; columns right of the band keep
        // their parked reserve for later horizontal passes.
        KernelStrategy::Balanced => (0..qw)
            .map(|c| if c < tw { (0, th) } else { (0, 0) })
            .collect(),
    }
}

/// Runs one pass along `axis`, mutating `grid`.
///
/// The pass is a **single pipelined traversal** exactly like the FPGA
/// shift unit of Fig. 6: every line is scanned from position 0 upward; at
/// each scan position `k` inside the line's `(floor, limit)` window, if
/// the position is a hole with atoms above it, a suffix shift fires and
/// scanning proceeds to `k + 1`. At most one shift fires per position per
/// line, so the emission time of every shift command is statically known —
/// the property the paper's Row Combination Unit exploits (§IV-C). Wave
/// `k` of the returned pass holds all shifts that fired at scan position
/// `k` (interior empty waves are retained to preserve that alignment;
/// trailing empty waves are trimmed).
///
/// `limits[line]` is the `(floor, limit)` hole window per line; lines
/// beyond `limits.len()` use `(0, line_length)`.
pub fn run_pass(
    grid: &mut AtomGrid,
    axis: Axis,
    limits: &[(usize, usize)],
    enable: Option<&[bool]>,
) -> LocalPass {
    run_pass_in(grid, axis, limits, enable, &mut PassScratch::new())
}

/// [`run_pass`] with a caller-owned [`PassScratch`]: a warm scratch makes
/// the pass allocation-free (row passes mutate the grid's rows in place;
/// column passes transpose into the scratch view and back, reusing both
/// word buffers). Bit-identical to [`run_pass`] for any scratch state.
pub fn run_pass_in(
    grid: &mut AtomGrid,
    axis: Axis,
    limits: &[(usize, usize)],
    enable: Option<&[bool]>,
    scratch: &mut PassScratch,
) -> LocalPass {
    // Work on lines along the pass axis: rows directly in place, or
    // columns via the scratch-held transposed view (the hardware "column
    // stream to row stream" trick).
    match axis {
        Axis::Row => pass_over_lines(grid, axis, limits, enable),
        Axis::Col => {
            grid.transpose_into(&mut scratch.view);
            let pass = pass_over_lines(&mut scratch.view, axis, limits, enable);
            scratch.view.transpose_into(grid);
            pass
        }
    }
}

/// The single pipelined traversal of [`run_pass`], scanning and shifting
/// the rows of `view` in place. Safe to apply in place because
/// [`bitline::suffix_shift`] preserves the grid's zero-tail word
/// invariant, so the mutated rows are exactly what the former
/// copy-mutate-write-back sequence produced.
fn pass_over_lines(
    view: &mut AtomGrid,
    axis: Axis,
    limits: &[(usize, usize)],
    enable: Option<&[bool]>,
) -> LocalPass {
    let (nlines, linelen) = (view.height(), view.width());
    let scan_end = limits
        .iter()
        .map(|&(_, hi)| hi)
        .max()
        .unwrap_or(linelen)
        .min(linelen);
    let mut waves = Vec::new();
    for k in 0..scan_end {
        let mut wave = LocalWave::default();
        for line in 0..nlines {
            if let Some(en) = enable {
                if !en.get(line).copied().unwrap_or(true) {
                    continue;
                }
            }
            let (floor, limit) = limits.get(line).copied().unwrap_or((0, linelen));
            if k < floor || k >= limit.min(linelen) {
                continue;
            }
            let bits = view.row_bits_mut(line);
            if !bitline::get(bits, k) && bitline::highest_one(bits).is_some_and(|top| top > k) {
                bitline::suffix_shift(bits, k, linelen);
                wave.shifts.push(LocalShift { line, hole: k });
            }
        }
        waves.push(wave);
    }
    while waves.last().is_some_and(LocalWave::is_empty) {
        waves.pop();
    }
    LocalPass { axis, waves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Position;
    use crate::loading::seeded_rng;

    /// Replays the waves of an outcome onto a fresh copy of the input and
    /// checks the result matches `final_grid` — the property the merge
    /// stage relies on.
    fn replay(input: &AtomGrid, outcome: &KernelOutcome) -> AtomGrid {
        let mut g = input.clone();
        for pass in &outcome.passes {
            for wave in &pass.waves {
                let mut view = match pass.axis {
                    Axis::Row => g.clone(),
                    Axis::Col => g.transpose(),
                };
                let w = view.width();
                for s in &wave.shifts {
                    let mut bits = view.row_bits(s.line).to_vec();
                    assert!(
                        !bitline::get(&bits, s.hole),
                        "replay: hole {} of line {} occupied",
                        s.hole,
                        s.line
                    );
                    bitline::suffix_shift(&mut bits, s.hole, w);
                    view.set_row_bits(s.line, &bits);
                }
                g = match pass.axis {
                    Axis::Row => view,
                    Axis::Col => view.transpose(),
                };
            }
        }
        g
    }

    fn run(grid: &AtomGrid, th: usize, tw: usize, strategy: KernelStrategy) -> KernelOutcome {
        ShiftKernel::new(KernelConfig::new(th, tw).with_strategy(strategy))
            .run(grid)
            .unwrap()
    }

    #[test]
    fn rejects_oversized_or_zero_target() {
        let g = AtomGrid::new(4, 4).unwrap();
        assert!(ShiftKernel::new(KernelConfig::new(5, 2)).run(&g).is_err());
        assert!(ShiftKernel::new(KernelConfig::new(2, 5)).run(&g).is_err());
        assert!(ShiftKernel::new(KernelConfig::new(0, 2)).run(&g).is_err());
    }

    #[test]
    fn trivial_already_filled() {
        let g = AtomGrid::parse("##..\n##..\n....\n....").unwrap();
        let out = run(&g, 2, 2, KernelStrategy::Greedy);
        assert!(out.filled);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.shift_count(), 0);
        assert_eq!(out.final_grid, g);
    }

    #[test]
    fn single_row_compaction() {
        let g = AtomGrid::parse(".#.#").unwrap();
        let out = run(&g, 1, 2, KernelStrategy::Greedy);
        assert!(out.filled);
        assert_eq!(out.final_grid, AtomGrid::parse("##..").unwrap());
    }

    #[test]
    fn greedy_fills_small_quadrant() {
        // 8x8 half-filled quadrant, 4x4 target: ample slack.
        let mut rng = seeded_rng(21);
        let mut ok = 0;
        for _ in 0..20 {
            let g = AtomGrid::random(8, 8, 0.5, &mut rng);
            if g.atom_count() < 16 {
                continue;
            }
            let out = run(&g, 4, 4, KernelStrategy::Greedy);
            assert_eq!(out.final_grid.atom_count(), g.atom_count());
            if out.filled {
                ok += 1;
            }
        }
        assert!(ok >= 15, "greedy filled only {ok}/20 easy instances");
    }

    #[test]
    fn balanced_fills_paper_scale_quadrant() {
        // The headline case per quadrant: 25x25 at 50% fill, 15x15 target.
        let mut rng = seeded_rng(99);
        let mut filled = 0;
        let mut tried = 0;
        for _ in 0..20 {
            let g = AtomGrid::random(25, 25, 0.5, &mut rng);
            if g.atom_count() < 240 {
                continue; // keep a supply margin over the 225 required
            }
            tried += 1;
            let out = run(&g, 15, 15, KernelStrategy::Balanced);
            assert_eq!(out.final_grid.atom_count(), g.atom_count());
            if out.filled {
                filled += 1;
            }
        }
        assert!(tried >= 10, "seed produced too few feasible instances");
        assert!(
            filled * 10 >= tried * 9,
            "balanced filled only {filled}/{tried}"
        );
    }

    #[test]
    fn balanced_beats_greedy_on_stress_instance() {
        // Construct a distribution where greedy corner compaction
        // under-covers: many short rows plus a few long ones.
        let mut g = AtomGrid::new(10, 10).unwrap();
        // rows 0..6: 3 atoms each (can't reach column 4 alone)
        for r in 0..7 {
            for c in 0..3 {
                g.set_unchecked(r, c, true);
            }
        }
        // rows 7..10: full rows (supply)
        for r in 7..10 {
            for c in 0..10 {
                g.set_unchecked(r, c, true);
            }
        }
        let target = Rect::new(0, 0, 5, 5);
        let greedy = run(&g, 5, 5, KernelStrategy::Greedy);
        let balanced = run(&g, 5, 5, KernelStrategy::Balanced);
        let greedy_fill = greedy.final_grid.count_in(&target).unwrap();
        let balanced_fill = balanced.final_grid.count_in(&target).unwrap();
        assert!(balanced.filled, "balanced should fill: {balanced_fill}/25");
        assert!(
            balanced_fill >= greedy_fill,
            "balanced {balanced_fill} < greedy {greedy_fill}"
        );
    }

    #[test]
    fn waves_replay_to_final_grid() {
        let mut rng = seeded_rng(5);
        for strategy in [
            KernelStrategy::Greedy,
            KernelStrategy::GreedyTargetOnly,
            KernelStrategy::Balanced,
        ] {
            for _ in 0..10 {
                let g = AtomGrid::random(12, 12, 0.5, &mut rng);
                let out = run(&g, 7, 7, strategy);
                assert_eq!(replay(&g, &out), out.final_grid, "{strategy:?}");
            }
        }
    }

    #[test]
    fn atoms_only_move_toward_corner() {
        // Monotonicity: total (row+col) weight never increases.
        let mut rng = seeded_rng(31);
        let g = AtomGrid::random(10, 10, 0.5, &mut rng);
        let weight =
            |g: &AtomGrid| -> usize { g.occupied().map(|p: Position| p.row + p.col).sum() };
        let out = run(&g, 6, 6, KernelStrategy::Balanced);
        assert!(weight(&out.final_grid) <= weight(&g));
    }

    #[test]
    fn passes_alternate_axes() {
        let mut rng = seeded_rng(8);
        let g = AtomGrid::random(10, 10, 0.5, &mut rng);
        let out = run(&g, 6, 6, KernelStrategy::Balanced);
        for (i, pass) in out.passes.iter().enumerate() {
            let expect = if i % 2 == 0 { Axis::Row } else { Axis::Col };
            assert_eq!(pass.axis, expect, "pass {i}");
        }
    }

    #[test]
    fn row_enable_blocks_rows() {
        let g = AtomGrid::parse(".#\n.#").unwrap();
        let mut cfg = KernelConfig::new(2, 2).with_strategy(KernelStrategy::Greedy);
        cfg.row_enable = Some(vec![true, false]);
        let out = ShiftKernel::new(cfg).run(&g).unwrap();
        // Row 0 compacts; row 1 is sen-blocked; its atom can still be
        // reached by the column pass though — column 1 pulls nothing
        // since column passes are separately enabled.
        assert!(out.final_grid.get_unchecked(0, 0), "row 0 compacted");
        // row 1's atom stayed at column 1 (blocked) until a column pass
        // moved it vertically (column 1, toward row 0) — but row 0 col 1
        // was emptied by row 0's shift... verify row1 never shifted
        // horizontally: its atom is in column 1 or moved only vertically.
        let atoms: Vec<Position> = out.final_grid.occupied().collect();
        assert!(atoms.iter().all(|p| !(p.row == 1 && p.col == 0)));
    }

    #[test]
    fn max_iterations_bounds_work() {
        let mut rng = seeded_rng(77);
        let g = AtomGrid::random(20, 20, 0.5, &mut rng);
        let out = ShiftKernel::new(
            KernelConfig::new(12, 12)
                .with_strategy(KernelStrategy::Balanced)
                .with_max_iterations(1),
        )
        .run(&g)
        .unwrap();
        assert!(out.iterations <= 1);
        assert!(out.passes.len() <= 2);
    }

    #[test]
    fn iteration_count_matches_paper_narrative() {
        // Paper §V-B: "four iterations were used to complete the entire
        // process". With the default 8-iteration budget, the balanced
        // kernel should fill essentially always, and a clear majority of
        // paper-scale quadrants should finish within the paper's 4.
        let mut rng = seeded_rng(1312);
        let mut filled = 0;
        let mut within_four = 0;
        let mut tried = 0;
        for _ in 0..15 {
            let g = AtomGrid::random(25, 25, 0.5, &mut rng);
            if g.atom_count() < 240 {
                continue;
            }
            tried += 1;
            let out = run(&g, 15, 15, KernelStrategy::Balanced);
            if out.filled {
                filled += 1;
                if out.iterations <= 4 {
                    within_four += 1;
                }
            }
        }
        assert!(
            filled * 10 >= tried * 9,
            "only {filled}/{tried} filled at all"
        );
        assert!(
            within_four * 2 >= tried,
            "only {within_four}/{tried} finished within 4 iterations"
        );
    }

    #[test]
    fn warm_scratch_runs_are_bit_identical_to_fresh() {
        // Chain scratches across runs of *different* grids and
        // strategies so warm buffers always carry stale contents in, and
        // compare against a cold run of the same input.
        let mut rng = seeded_rng(4242);
        let mut warm: Option<(KernelScratch, PassScratch)> = None;
        for case in 0..6 {
            for strategy in [
                KernelStrategy::Greedy,
                KernelStrategy::GreedyTargetOnly,
                KernelStrategy::Balanced,
            ] {
                let g = AtomGrid::random(12, 10, 0.55, &mut rng);
                let kernel = ShiftKernel::new(KernelConfig::new(4, 4).with_strategy(strategy));
                let fresh = kernel.run(&g).unwrap();
                let (recycled, pass) = match warm.take() {
                    Some((k, p)) => (Some(k), Some(p)),
                    None => (None, None),
                };
                let mut state = kernel.start_with(&g, recycled, pass).unwrap();
                while !kernel.step(&mut state).unwrap() {}
                let (out, pass) = kernel.finish_split(state).unwrap();
                assert_eq!(
                    out, fresh,
                    "case {case}/{strategy:?}: warm-scratch outcome diverged from fresh"
                );
                warm = Some((KernelScratch::reclaim(out), pass));
            }
        }
    }
}

//! The AOD multi-tweezer move primitive.
//!
//! A 2D acousto-optic deflector generates one movable tweezer at every
//! intersection of its selected row and column RF tones (paper §II-B).
//! Selecting rows `{x1, x2}` and columns `{y1, y2}` therefore traps *all
//! four* sites `(x1,y1), (x1,y2), (x2,y1), (x2,y2)` — the cross-product
//! constraint — and every trapped atom moves together by the same
//! displacement. [`ParallelMove`] models exactly this primitive; schedules
//! are sequences of such moves.

use std::fmt;

use crate::geometry::{Axis, Direction, Position};

/// One simultaneous multi-atom AOD move.
///
/// The AOD selects the cross product `rows x cols`; every **occupied**
/// selected site is picked up and translated by `delta = (dr, dc)`.
/// Planners must ensure every atom caught in the cross product is one they
/// intend to move (see [`crate::aod`] for the legality check and batching).
///
/// ```
/// use qrm_core::moves::ParallelMove;
///
/// // Shift atoms in rows {1,3} at columns {4,5} one site west.
/// let mv = ParallelMove::new(vec![1, 3], vec![4, 5], 0, -1)?;
/// assert_eq!(mv.trap_count(), 4);
/// assert_eq!(mv.step(), 1);
/// # Ok::<(), qrm_core::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ParallelMove {
    rows: Vec<usize>,
    cols: Vec<usize>,
    dr: isize,
    dc: isize,
}

impl ParallelMove {
    /// Creates a move from selected rows/columns (deduplicated, sorted)
    /// and an integer displacement.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NullMove`](crate::Error::NullMove) for a zero
    /// displacement and [`Error::EmptyGrid`](crate::Error::EmptyGrid) when
    /// either selection is empty.
    pub fn new(
        mut rows: Vec<usize>,
        mut cols: Vec<usize>,
        dr: isize,
        dc: isize,
    ) -> Result<Self, crate::Error> {
        if rows.is_empty() || cols.is_empty() {
            return Err(crate::Error::EmptyGrid);
        }
        if dr == 0 && dc == 0 {
            return Err(crate::Error::NullMove { move_index: 0 });
        }
        rows.sort_unstable();
        rows.dedup();
        cols.sort_unstable();
        cols.dedup();
        Ok(ParallelMove { rows, cols, dr, dc })
    }

    /// Convenience constructor for a single-atom move (one row, one col).
    ///
    /// # Errors
    ///
    /// Same as [`ParallelMove::new`].
    pub fn single(from: Position, dr: isize, dc: isize) -> Result<Self, crate::Error> {
        ParallelMove::new(vec![from.row], vec![from.col], dr, dc)
    }

    /// Selected AOD row tones (sorted, deduplicated).
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Selected AOD column tones (sorted, deduplicated).
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Displacement `(dr, dc)` applied to every trapped atom.
    pub const fn delta(&self) -> (isize, isize) {
        (self.dr, self.dc)
    }

    /// Number of trap sites generated (`|rows| * |cols|`); occupied ones
    /// actually move.
    pub fn trap_count(&self) -> usize {
        self.rows.len() * self.cols.len()
    }

    /// Chebyshev step size of the displacement (1 for the unit shifts the
    /// QRM schedule uses).
    pub fn step(&self) -> usize {
        self.dr.unsigned_abs().max(self.dc.unsigned_abs())
    }

    /// Whether the displacement is axis-aligned.
    pub const fn is_axis_aligned(&self) -> bool {
        self.dr == 0 || self.dc == 0
    }

    /// The movement axis, when axis-aligned.
    pub const fn axis(&self) -> Option<Axis> {
        match (self.dr, self.dc) {
            (0, 0) => None,
            (0, _) => Some(Axis::Row),
            (_, 0) => Some(Axis::Col),
            _ => None,
        }
    }

    /// The compass direction, when axis-aligned.
    ///
    /// ```
    /// use qrm_core::moves::ParallelMove;
    /// use qrm_core::geometry::Direction;
    /// let mv = ParallelMove::new(vec![0], vec![1], -2, 0)?;
    /// assert_eq!(mv.direction(), Some(Direction::North));
    /// # Ok::<(), qrm_core::Error>(())
    /// ```
    pub const fn direction(&self) -> Option<Direction> {
        match (self.dr, self.dc) {
            (0, 0) => None,
            (0, dc) => Some(if dc > 0 {
                Direction::East
            } else {
                Direction::West
            }),
            (dr, 0) => Some(if dr > 0 {
                Direction::South
            } else {
                Direction::North
            }),
            _ => None,
        }
    }

    /// Whether `pos` is one of the generated trap sites.
    pub fn selects(&self, pos: Position) -> bool {
        self.rows.binary_search(&pos.row).is_ok() && self.cols.binary_search(&pos.col).is_ok()
    }

    /// Iterates over all generated trap sites (row-major).
    pub fn trap_sites(&self) -> impl Iterator<Item = Position> + '_ {
        self.rows
            .iter()
            .flat_map(move |&r| self.cols.iter().map(move |&c| Position::new(r, c)))
    }
}

impl fmt::Display for ParallelMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "move {}r x {}c by ({:+}, {:+})",
            self.rows.len(),
            self.cols.len(),
            self.dr,
            self.dc
        )
    }
}

/// Record of one atom's displacement during schedule execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MoveRecord {
    /// Index of the [`ParallelMove`] within the schedule.
    pub move_index: usize,
    /// Site the atom left.
    pub from: Position,
    /// Site the atom arrived at.
    pub to: Position,
}

impl fmt::Display for MoveRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}: {} -> {}", self.move_index, self.from, self.to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let mv = ParallelMove::new(vec![3, 1, 3], vec![5, 5, 4], 0, 1).unwrap();
        assert_eq!(mv.rows(), &[1, 3]);
        assert_eq!(mv.cols(), &[4, 5]);
        assert_eq!(mv.trap_count(), 4);
    }

    #[test]
    fn rejects_null_and_empty() {
        assert!(ParallelMove::new(vec![1], vec![1], 0, 0).is_err());
        assert!(ParallelMove::new(vec![], vec![1], 0, 1).is_err());
        assert!(ParallelMove::new(vec![1], vec![], 0, 1).is_err());
    }

    #[test]
    fn direction_and_axis() {
        let west = ParallelMove::new(vec![0], vec![3], 0, -1).unwrap();
        assert_eq!(west.direction(), Some(Direction::West));
        assert_eq!(west.axis(), Some(Axis::Row));
        assert_eq!(west.step(), 1);
        let south2 = ParallelMove::new(vec![0], vec![3], 2, 0).unwrap();
        assert_eq!(south2.direction(), Some(Direction::South));
        assert_eq!(south2.step(), 2);
        let diag = ParallelMove::new(vec![0], vec![3], 1, 1).unwrap();
        assert_eq!(diag.direction(), None);
        assert_eq!(diag.axis(), None);
        assert!(!diag.is_axis_aligned());
    }

    #[test]
    fn selects_cross_product() {
        let mv = ParallelMove::new(vec![1, 3], vec![2, 4], 0, -1).unwrap();
        assert!(mv.selects(Position::new(1, 2)));
        assert!(mv.selects(Position::new(3, 4)));
        assert!(mv.selects(Position::new(1, 4)));
        assert!(!mv.selects(Position::new(2, 2)));
        assert!(!mv.selects(Position::new(1, 3)));
        assert_eq!(mv.trap_sites().count(), 4);
    }

    #[test]
    fn single_constructor() {
        let mv = ParallelMove::single(Position::new(2, 5), -1, 0).unwrap();
        assert_eq!(mv.rows(), &[2]);
        assert_eq!(mv.cols(), &[5]);
        assert_eq!(mv.trap_count(), 1);
    }

    #[test]
    fn display_forms() {
        let mv = ParallelMove::new(vec![1, 2], vec![3], 0, -1).unwrap();
        assert_eq!(mv.to_string(), "move 2r x 1c by (+0, -1)");
        let rec = MoveRecord {
            move_index: 2,
            from: Position::new(0, 1),
            to: Position::new(0, 0),
        };
        assert_eq!(rec.to_string(), "#2: (0, 1) -> (0, 0)");
    }
}

//! Quadrant split, flip, and restore (paper §III-B, Fig. 4).
//!
//! Compressing atoms toward the array centre is, per quadrant, compression
//! into the centre-adjacent corner. Flipping each quadrant into a
//! *canonical orientation* — compression corner at local `(0, 0)` — lets
//! one identical kernel process all four quadrants; afterwards movement
//! information is restored to original coordinates (the paper's Load
//! Vector units apply the flips in hardware while streaming data in, and
//! the movement-recording unit restores positions on the way out).

use crate::error::Error;
use crate::geometry::{Position, QuadrantId, Rect};
use crate::grid::AtomGrid;

/// Coordinate mapping between a `height x width` global array and its
/// four canonically-oriented quadrants.
///
/// ```
/// use qrm_core::quadrant::QuadrantMap;
/// use qrm_core::geometry::{Position, QuadrantId};
///
/// let map = QuadrantMap::new(10, 10)?;
/// // The NW quadrant's centre-adjacent corner is global (4, 4):
/// assert_eq!(map.to_global(QuadrantId::Nw, Position::new(0, 0)), Position::new(4, 4));
/// // ...and the mapping round-trips:
/// let p = Position::new(2, 3);
/// assert_eq!(map.to_canonical(map.to_global(QuadrantId::Sw, p)).unwrap(), (QuadrantId::Sw, p));
/// # Ok::<(), qrm_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadrantMap {
    height: usize,
    width: usize,
    qh: usize,
    qw: usize,
}

impl QuadrantMap {
    /// Creates the mapping for a `height x width` array.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OddDimensions`] unless both dimensions are even
    /// and non-zero (quadrants must tile the array exactly).
    pub fn new(height: usize, width: usize) -> Result<Self, Error> {
        if height == 0 || width == 0 {
            return Err(Error::EmptyGrid);
        }
        if !height.is_multiple_of(2) || !width.is_multiple_of(2) {
            return Err(Error::OddDimensions { width, height });
        }
        Ok(QuadrantMap {
            height,
            width,
            qh: height / 2,
            qw: width / 2,
        })
    }

    /// Quadrant height (`height / 2`), the paper's `Qw` for square arrays.
    pub const fn quadrant_height(&self) -> usize {
        self.qh
    }

    /// Quadrant width (`width / 2`).
    pub const fn quadrant_width(&self) -> usize {
        self.qw
    }

    /// The global rectangle covered by quadrant `q`.
    pub const fn rect(&self, q: QuadrantId) -> Rect {
        let row = if q.is_north() { 0 } else { self.qh };
        let col = if q.is_west() { 0 } else { self.qw };
        Rect::new(row, col, self.qh, self.qw)
    }

    /// Which quadrant a global position belongs to, with its canonical
    /// coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] for positions outside the array.
    pub fn to_canonical(&self, global: Position) -> Result<(QuadrantId, Position), Error> {
        if global.row >= self.height || global.col >= self.width {
            return Err(Error::OutOfBounds {
                pos: global,
                height: self.height,
                width: self.width,
            });
        }
        let north = global.row < self.qh;
        let west = global.col < self.qw;
        let q = match (north, west) {
            (true, true) => QuadrantId::Nw,
            (true, false) => QuadrantId::Ne,
            (false, true) => QuadrantId::Sw,
            (false, false) => QuadrantId::Se,
        };
        Ok((q, self.fold(q, global)))
    }

    /// Maps a canonical quadrant position back to global coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `local` lies outside the quadrant extent.
    pub fn to_global(&self, q: QuadrantId, local: Position) -> Position {
        assert!(
            local.row < self.qh && local.col < self.qw,
            "local {local} outside {}x{} quadrant",
            self.qh,
            self.qw
        );
        let row = if q.is_north() {
            self.qh - 1 - local.row
        } else {
            self.qh + local.row
        };
        let col = if q.is_west() {
            self.qw - 1 - local.col
        } else {
            self.qw + local.col
        };
        Position::new(row, col)
    }

    fn fold(&self, q: QuadrantId, global: Position) -> Position {
        let row = if q.is_north() {
            self.qh - 1 - global.row
        } else {
            global.row - self.qh
        };
        let col = if q.is_west() {
            self.qw - 1 - global.col
        } else {
            global.col - self.qw
        };
        Position::new(row, col)
    }

    /// Maps a canonical column index of quadrant `q` to the global column.
    pub fn global_col(&self, q: QuadrantId, local_col: usize) -> usize {
        if q.is_west() {
            self.qw - 1 - local_col
        } else {
            self.qw + local_col
        }
    }

    /// Maps a canonical row index of quadrant `q` to the global row.
    pub fn global_row(&self, q: QuadrantId, local_row: usize) -> usize {
        if q.is_north() {
            self.qh - 1 - local_row
        } else {
            self.qh + local_row
        }
    }

    /// Splits a grid into its four canonically-oriented quadrant grids
    /// (indexed by [`QuadrantId::ALL`] order: NW, NE, SW, SE).
    ///
    /// This is the software equivalent of the Load Data Module's four
    /// Load Vector units (paper §IV-B: "the flip operation is
    /// automatically performed to prepare the data").
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `grid` does not match the
    /// map's dimensions.
    pub fn split(&self, grid: &AtomGrid) -> Result<[AtomGrid; 4], Error> {
        if grid.dims() != (self.height, self.width) {
            return Err(Error::DimensionMismatch {
                left: (self.height, self.width),
                right: grid.dims(),
            });
        }
        let mut out: Vec<AtomGrid> = Vec::with_capacity(4);
        for q in QuadrantId::ALL {
            let sub = grid.subgrid(&self.rect(q))?;
            let canon = match q {
                QuadrantId::Nw => sub.flip_vertical().flip_horizontal(),
                QuadrantId::Ne => sub.flip_vertical(),
                QuadrantId::Sw => sub.flip_horizontal(),
                QuadrantId::Se => sub,
            };
            out.push(canon);
        }
        Ok(out.try_into().expect("exactly four quadrants"))
    }

    /// [`split`](Self::split) into recycled quadrant grids: each grid in
    /// `recycled` is reshaped in place (reusing its word buffer) and
    /// filled with the canonically-oriented quadrant, skipping the four
    /// intermediate `subgrid`/`flip_*` allocations per quadrant. The
    /// engine's [`PlanContext`](crate::engine::PlanContext) feeds
    /// retired quadrant grids back through here, which makes steady-state
    /// batch decomposition allocation-free. Produces exactly the grids
    /// [`split`](Self::split) returns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when `grid` does not match the
    /// map's dimensions.
    pub fn split_into(
        &self,
        grid: &AtomGrid,
        mut recycled: [AtomGrid; 4],
    ) -> Result<[AtomGrid; 4], Error> {
        if grid.dims() != (self.height, self.width) {
            return Err(Error::DimensionMismatch {
                left: (self.height, self.width),
                right: grid.dims(),
            });
        }
        for (q, canon) in QuadrantId::ALL.iter().zip(recycled.iter_mut()) {
            canon.reshape(self.qh, self.qw);
            // canonical[(r, c)] == global[to_global(q, (r, c))] — the
            // flip composition `split` applies, done point-wise.
            for r in 0..self.qh {
                for c in 0..self.qw {
                    let global = self.to_global(*q, Position::new(r, c));
                    if grid.get_unchecked(global.row, global.col) {
                        canon.set_unchecked(r, c, true);
                    }
                }
            }
        }
        Ok(recycled)
    }

    /// Reassembles a global grid from four canonical quadrant grids
    /// (inverse of [`split`](Self::split)).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when any quadrant has the
    /// wrong extent.
    pub fn restore(&self, quads: &[AtomGrid; 4]) -> Result<AtomGrid, Error> {
        let mut out = AtomGrid::new(self.height, self.width)?;
        for (q, canon) in QuadrantId::ALL.iter().zip(quads.iter()) {
            if canon.dims() != (self.qh, self.qw) {
                return Err(Error::DimensionMismatch {
                    left: (self.qh, self.qw),
                    right: canon.dims(),
                });
            }
            let sub = match q {
                QuadrantId::Nw => canon.flip_vertical().flip_horizontal(),
                QuadrantId::Ne => canon.flip_vertical(),
                QuadrantId::Sw => canon.flip_horizontal(),
                QuadrantId::Se => canon.clone(),
            };
            let rect = self.rect(*q);
            out.paste(Position::new(rect.row, rect.col), &sub)?;
        }
        Ok(out)
    }

    /// The per-quadrant canonical target extent for a centred
    /// `target_h x target_w` global target.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTarget`] unless the target is even-sized,
    /// centred, and fits — QRM requires the target to split exactly across
    /// the four quadrants.
    pub fn quadrant_target(&self, target: &Rect) -> Result<(usize, usize), Error> {
        if !target.height.is_multiple_of(2) || !target.width.is_multiple_of(2) {
            return Err(Error::InvalidTarget {
                reason: "QRM target extent must be even",
            });
        }
        if !target.fits_in(self.height, self.width) {
            return Err(Error::InvalidTarget {
                reason: "target larger than array",
            });
        }
        let centred = Rect::centered(self.height, self.width, target.height, target.width)
            .expect("validated above");
        if *target != centred {
            return Err(Error::InvalidTarget {
                reason: "QRM target must be centred in the array",
            });
        }
        Ok((target.height / 2, target.width / 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loading::seeded_rng;

    #[test]
    fn rejects_odd_and_zero() {
        assert!(matches!(
            QuadrantMap::new(9, 10),
            Err(Error::OddDimensions { .. })
        ));
        assert!(matches!(
            QuadrantMap::new(10, 9),
            Err(Error::OddDimensions { .. })
        ));
        assert_eq!(QuadrantMap::new(0, 4), Err(Error::EmptyGrid));
    }

    #[test]
    fn rects_tile_the_array() {
        let m = QuadrantMap::new(10, 8).unwrap();
        assert_eq!(m.rect(QuadrantId::Nw), Rect::new(0, 0, 5, 4));
        assert_eq!(m.rect(QuadrantId::Ne), Rect::new(0, 4, 5, 4));
        assert_eq!(m.rect(QuadrantId::Sw), Rect::new(5, 0, 5, 4));
        assert_eq!(m.rect(QuadrantId::Se), Rect::new(5, 4, 5, 4));
    }

    #[test]
    fn canonical_origin_is_centre_adjacent_corner() {
        let m = QuadrantMap::new(10, 10).unwrap();
        let origin = Position::new(0, 0);
        assert_eq!(m.to_global(QuadrantId::Nw, origin), Position::new(4, 4));
        assert_eq!(m.to_global(QuadrantId::Ne, origin), Position::new(4, 5));
        assert_eq!(m.to_global(QuadrantId::Sw, origin), Position::new(5, 4));
        assert_eq!(m.to_global(QuadrantId::Se, origin), Position::new(5, 5));
    }

    #[test]
    fn global_canonical_roundtrip_everywhere() {
        let m = QuadrantMap::new(8, 12).unwrap();
        for r in 0..8 {
            for c in 0..12 {
                let g = Position::new(r, c);
                let (q, local) = m.to_canonical(g).unwrap();
                assert_eq!(m.to_global(q, local), g);
                assert_eq!(m.global_row(q, local.row), r);
                assert_eq!(m.global_col(q, local.col), c);
            }
        }
    }

    #[test]
    fn to_canonical_out_of_bounds() {
        let m = QuadrantMap::new(8, 8).unwrap();
        assert!(m.to_canonical(Position::new(8, 0)).is_err());
    }

    #[test]
    fn split_restore_roundtrip() {
        let mut rng = seeded_rng(17);
        let g = AtomGrid::random(12, 10, 0.5, &mut rng);
        let m = QuadrantMap::new(12, 10).unwrap();
        let quads = m.split(&g).unwrap();
        for q in &quads {
            assert_eq!(q.dims(), (6, 5));
        }
        let back = m.restore(&quads).unwrap();
        assert_eq!(back, g);
        // atom conservation across the split
        let total: usize = quads.iter().map(AtomGrid::atom_count).sum();
        assert_eq!(total, g.atom_count());
    }

    #[test]
    fn split_places_centre_corner_at_origin() {
        // Put one atom at each centre-adjacent corner; every canonical
        // quadrant must have it at (0,0).
        let mut g = AtomGrid::new(6, 6).unwrap();
        for p in [(2, 2), (2, 3), (3, 2), (3, 3)] {
            g.set_unchecked(p.0, p.1, true);
        }
        let m = QuadrantMap::new(6, 6).unwrap();
        let quads = m.split(&g).unwrap();
        for q in &quads {
            assert!(q.get_unchecked(0, 0));
            assert_eq!(q.atom_count(), 1);
        }
    }

    #[test]
    fn split_dimension_mismatch() {
        let m = QuadrantMap::new(8, 8).unwrap();
        let g = AtomGrid::new(6, 8).unwrap();
        assert!(matches!(m.split(&g), Err(Error::DimensionMismatch { .. })));
        let scrap = std::array::from_fn(|_| AtomGrid::new(1, 1).unwrap());
        assert!(matches!(
            m.split_into(&g, scrap),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn split_into_matches_split_with_stale_scratch() {
        let mut rng = seeded_rng(23);
        let m = QuadrantMap::new(12, 10).unwrap();
        // Mis-shaped, dirty recycled grids.
        let mut recycled: [AtomGrid; 4] =
            std::array::from_fn(|i| AtomGrid::random(3 + i, 17, 0.6, &mut rng));
        for _ in 0..4 {
            let g = AtomGrid::random(12, 10, 0.5, &mut rng);
            recycled = m.split_into(&g, recycled).unwrap();
            assert_eq!(recycled, m.split(&g).unwrap());
        }
    }

    #[test]
    fn quadrant_target_validation() {
        let m = QuadrantMap::new(50, 50).unwrap();
        let t = Rect::centered(50, 50, 30, 30).unwrap();
        assert_eq!(m.quadrant_target(&t).unwrap(), (15, 15));
        // odd target
        let odd = Rect::centered(50, 50, 29, 30).unwrap();
        assert!(m.quadrant_target(&odd).is_err());
        // off-centre target
        let off = Rect::new(0, 10, 30, 30);
        assert!(m.quadrant_target(&off).is_err());
    }
}

//! # qrm-core — Quadrant-based neutral-atom rearrangement
//!
//! This crate implements the algorithmic core of the DATE 2025 paper
//! *"Design of an FPGA-Based Neutral Atom Rearrangement Accelerator for
//! Quantum Computing"* (Guo et al., arXiv:2411.12401): the **QRM**
//! (Quadrant-based Rearrangement Method) scheduler together with every
//! substrate it needs — bit-packed atom occupancy grids, the 2D-AOD
//! multi-tweezer move model with its cross-product hardware constraint,
//! quadrant flip/restore mapping, the pipelined shift-kernel algorithm,
//! cross-quadrant command merging, and a validating schedule executor.
//!
//! ## Problem
//!
//! Neutral-atom machines load atoms stochastically (~50 % fill) into a 2D
//! optical-trap array. Before a circuit can run, a defect-free sub-array
//! (the *target*) must be assembled by moving atoms with acousto-optic
//! deflector (AOD) tweezers. The scheduler must compute, from a binary
//! occupancy image, a short sequence of *parallel moves* — sets of atoms
//! that shift together in the same direction by the same step — that fills
//! the target region.
//!
//! ## Quick example
//!
//! ```
//! use qrm_core::prelude::*;
//!
//! # fn main() -> Result<(), qrm_core::Error> {
//! // Load a 20x20 array at ~50% fill and assemble a centred 12x12 target.
//! let mut rng = qrm_core::loading::seeded_rng(7);
//! let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
//! let target = Rect::centered(20, 20, 12, 12)?;
//!
//! let scheduler = QrmScheduler::new(QrmConfig::default());
//! let plan = scheduler.plan(&grid, &target)?;
//!
//! // Execute the schedule on a simulated trap array and verify it.
//! let report = Executor::new().run(&grid, &plan.schedule)?;
//! assert_eq!(report.final_grid, plan.predicted);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | Module | Content |
//! |--------|---------|
//! | [`geometry`] | [`Position`](geometry::Position), [`Rect`](geometry::Rect), axes, directions, quadrant ids |
//! | [`grid`] | [`AtomGrid`](grid::AtomGrid): bit-packed occupancy matrix with flips and sub-grid views |
//! | [`loading`] | stochastic loading workload generator |
//! | [`target`] | target-region specification and feasibility checks |
//! | [`moves`] | [`ParallelMove`](moves::ParallelMove): the AOD trap-grid move primitive |
//! | [`schedule`] | [`Schedule`](schedule::Schedule), statistics, physical motion-time model |
//! | [`aod`] | AOD cross-product legality checking and greedy move batching |
//! | [`quadrant`] | split/flip/restore coordinate mapping (paper §III-B, Fig. 4) |
//! | [`kernel`] | canonical per-quadrant shift kernel, greedy and balanced strategies (paper §IV-C, Fig. 6) |
//! | [`bitline`] | bit-vector line primitives shared with the FPGA model |
//! | [`codec`] | bit-packed movement-record stream (accelerator output contract) |
//! | [`engine`] | parallel planning engine: batched task graph over quadrant kernels on the persistent worker pool, [`PlanContext`](engine::PlanContext) scratch reuse |
//! | [`merge`] | cross-quadrant command merging (paper §IV-C) |
//! | [`optimize`] | simulation-validated schedule coalescing (fewer AWG commands) |
//! | [`planner`] | [`Planner`](planner::Planner): the unified planner interface every algorithm implements |
//! | [`scheduler`] | [`QrmScheduler`](scheduler::QrmScheduler): the top-level QRM planner |
//! | [`typical`] | the "typical rearrangement procedure" of paper §III-A |
//! | [`executor`] | schedule execution, validation, loss injection, defect checks |
//! | [`trace`] | replayable move traces, [`TraceReplayer`](trace::TraceReplayer) independent witness |
//!
//! ## Architecture: pool + `Planner`
//!
//! Two cross-cutting pieces tie the planning stack together:
//!
//! * **Persistent worker pool.** Batched planning ([`engine`]) submits
//!   its task-graph workers to the lazily-initialised process-global
//!   thread pool (`rayon::ThreadPool`): OS threads are spawned once per
//!   process, never per batch, and `workers <= 1` runs inline with no
//!   queueing at all. [`engine::PlanContext`] recycles kernel scratch
//!   and result buffers between batches, so a long-lived scheduler
//!   plans round after round without hot-path allocation. Pooled,
//!   warm, and serial runs are bit-identical.
//! * **One [`Planner`](planner::Planner) trait.** Every planner in the
//!   workspace — [`QrmScheduler`](scheduler::QrmScheduler),
//!   [`TypicalScheduler`](typical::TypicalScheduler), the baselines in
//!   `qrm-baselines`, the FPGA model in `qrm-fpga` — implements `name`
//!   / `plan` / `plan_batch` / `executor`, so pipelines and benchmarks
//!   dispatch through `dyn Planner` with no per-algorithm match arms;
//!   transport policy (strict AOD sweeps vs fly-over legs) comes from
//!   the trait, not from callers.
//!
//! ## Conventions
//!
//! Grids are indexed `(row, col)` with row 0 at the **north** (top) edge and
//! column 0 at the **west** (left) edge. Quadrants are named by compass
//! corner ([`QuadrantId`](geometry::QuadrantId)). Canonical (flipped)
//! quadrant coordinates always compress **toward local `(0, 0)`**.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aod;
pub mod bitline;
pub mod codec;
pub mod engine;
pub mod error;
pub mod executor;
pub mod geometry;
pub mod grid;
pub mod kernel;
pub mod loading;
pub mod merge;
pub mod moves;
pub mod optimize;
pub mod planner;
pub mod quadrant;
pub mod schedule;
pub mod scheduler;
pub mod target;
pub mod trace;
pub mod typical;

pub use crate::error::Error;

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::aod::AodBatcher;
    pub use crate::engine::{PlanContext, PlanEngine};
    pub use crate::error::Error;
    pub use crate::executor::{ExecutionReport, Executor};
    pub use crate::geometry::{Axis, Direction, Position, QuadrantId, Rect};
    pub use crate::grid::AtomGrid;
    pub use crate::kernel::{KernelConfig, KernelStrategy};
    pub use crate::loading::{seeded_rng, LoadModel};
    pub use crate::moves::ParallelMove;
    pub use crate::planner::{plan_and_execute, Planner};
    pub use crate::schedule::{MotionModel, Schedule, ScheduleStats};
    pub use crate::scheduler::{Plan, QrmConfig, QrmScheduler, Rearranger};
    pub use crate::target::TargetSpec;
    pub use crate::typical::TypicalScheduler;
}

//! The unified [`Planner`] interface of the planning stack.
//!
//! Every rearrangement planner in the workspace — the QRM scheduler, the
//! typical procedure, the published baselines in `qrm-baselines`, and
//! the cycle-accurate FPGA model in `qrm-fpga` — implements this one
//! trait, so the control pipeline, the benchmark harness, and the
//! examples dispatch through `Box<dyn Planner>` / `&dyn Planner` with no
//! per-algorithm match arms. Planners with a parallel core override
//! [`plan_batch`](Planner::plan_batch) to push whole batches through the
//! shared task-graph engine ([`crate::engine`]) on the persistent worker
//! pool; everything else inherits the serial default and conforms
//! unchanged.
//!
//! (This trait was previously named `Rearranger`; the old name remains
//! re-exported from [`crate::scheduler`] as an alias.)

use crate::error::Error;
use crate::executor::Executor;
use crate::geometry::Rect;
use crate::grid::AtomGrid;
use crate::scheduler::Plan;

/// Common interface of every rearrangement planner in the workspace (QRM,
/// the typical procedure, the published baselines, and the FPGA model).
///
/// A planner consumes the detected occupancy and a target rectangle and
/// produces a [`Plan`] whose schedule the
/// [`Executor`] can run. The *analysis time*
/// of `plan` is the quantity the paper's accelerator optimises.
///
/// `Send + Sync` are supertraits: every planner takes `&self` and keeps
/// any mutable scratch behind internal synchronisation (e.g. the QRM
/// engine's context pool), so one long-lived instance can serve
/// concurrent callers — the contract the planning service
/// (`qrm_server`) relies on to plan every submission warm.
pub trait Planner: Send + Sync {
    /// Human-readable planner name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Computes a rearrangement plan.
    ///
    /// # Errors
    ///
    /// Implementations return [`Error::InvalidTarget`] for targets they
    /// cannot address and propagate internal consistency failures.
    fn plan(&self, grid: &AtomGrid, target: &Rect) -> Result<Plan, Error>;

    /// Plans a batch of independent shots, returning plans in input
    /// order.
    ///
    /// The default implementation maps [`plan`](Self::plan) serially, so
    /// every planner conforms without changes; planners with a parallel
    /// core (QRM, the FPGA model) override it to push the whole batch
    /// through the shared task-graph engine ([`crate::engine`]), which
    /// schedules the quadrant work on the persistent global worker pool.
    /// On success, overrides must be observationally equal to the
    /// default — the workspace property suite asserts `plan_batch`
    /// equals mapped `plan` for every planner.
    ///
    /// # Errors
    ///
    /// The default returns the first per-shot error in input order;
    /// parallel overrides return an error from the lowest-indexed shot
    /// observed to fail, which can be a later shot than the serial path
    /// would report (see [`crate::engine::run_task_graph`]).
    fn plan_batch(&self, jobs: &[(AtomGrid, Rect)]) -> Result<Vec<Plan>, Error> {
        jobs.iter()
            .map(|(grid, target)| self.plan(grid, target))
            .collect()
    }

    /// Diagnostics for planners that keep a warm-context pool behind
    /// [`plan_batch`](Self::plan_batch): how many recycled contexts and
    /// scratch buffers the next batch will reuse.
    ///
    /// The default returns `None` (stateless planners have nothing to
    /// report); QRM overrides it with its engine's
    /// [`context_stats`](crate::engine::PlanEngine::context_stats).
    /// Long-lived consumers — the `qrm_server` planning service — use
    /// this to expose per-planner warmth without downcasting.
    fn context_stats(&self) -> Option<crate::engine::ContextPoolStats> {
        None
    }

    /// The executor configuration this planner's schedules require.
    ///
    /// Most planners emit unit-step AOD shifts that the strict default
    /// executor validates; planners with a different transport contract
    /// (MTA1's single-tweezer fly-over legs) override this so generic
    /// consumers — the benchmark harness, the end-to-end pipeline — can
    /// execute any planner's schedule without knowing which algorithm
    /// produced it.
    fn executor(&self) -> Executor {
        Executor::new()
    }
}

/// Plans and executes in one call, returning the executor's report — a
/// convenience for tests and examples. The executor comes from
/// [`Planner::executor`], so it honours the planner's transport
/// contract.
///
/// # Errors
///
/// Propagates planner and executor errors.
pub fn plan_and_execute(
    planner: &dyn Planner,
    grid: &AtomGrid,
    target: &Rect,
) -> Result<(Plan, crate::executor::ExecutionReport), Error> {
    let plan = planner.plan(grid, target)?;
    let report = planner.executor().run(grid, &plan.schedule)?;
    Ok((plan, report))
}

//! Schedule post-optimisation.
//!
//! Every parallel move costs fixed pickup/hand-off ramps on the AWG
//! (hundreds of µs — far more than the analysis time the accelerator
//! saves), so shortening the move stream directly shortens physical
//! rearrangement. [`coalesce`] is a peephole pass that merges runs of
//! same-displacement moves into single AOD commands whenever the merged
//! command provably does the same thing.
//!
//! Merging is validated by simulation, not by heuristics: the union of
//! two cross-product selections is a *larger* cross product that can trap
//! bystander atoms, so a candidate merge is accepted only if executing
//! the combined move from the current state reproduces exactly the state
//! the original sequence reaches (and the executor accepts it). This
//! makes the pass conservative and always safe.

use crate::error::Error;
use crate::executor::Executor;
use crate::grid::AtomGrid;
use crate::moves::ParallelMove;
use crate::schedule::Schedule;

/// Outcome of a coalescing pass.
#[derive(Debug, Clone)]
pub struct CoalesceReport {
    /// The optimised schedule.
    pub schedule: Schedule,
    /// Moves before optimisation.
    pub before: usize,
    /// Moves after optimisation.
    pub after: usize,
}

impl CoalesceReport {
    /// Fraction of moves eliminated.
    pub fn saving(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            1.0 - self.after as f64 / self.before as f64
        }
    }
}

/// Coalesces runs of same-displacement moves where the merged command is
/// simulation-equivalent to the original sequence.
///
/// `grid` must be the occupancy the schedule was planned for. The
/// returned schedule reaches exactly the same final occupancy.
///
/// # Errors
///
/// Propagates executor failures on the *input* schedule (an invalid
/// input schedule is a caller bug; candidate merges that fail validation
/// are simply not applied).
pub fn coalesce(grid: &AtomGrid, schedule: &Schedule) -> Result<CoalesceReport, Error> {
    let executor = Executor::new();
    let before = schedule.len();
    let mut out = Schedule::new(schedule.height(), schedule.width());
    let mut state = grid.clone();

    let mut pending: Option<(ParallelMove, AtomGrid)> = None; // (merged move, state after it)
    for mv in schedule {
        // State transition for this single move (validates the input).
        let cur_after = apply(&executor, &state_of(&pending, &state), mv)?;
        match pending.take() {
            None => pending = Some((mv.clone(), cur_after)),
            Some((acc, acc_after)) => {
                let mergeable = acc.delta() == mv.delta();
                let merged = if mergeable {
                    merge_moves(&acc, mv)
                } else {
                    None
                };
                let mut fused = None;
                if let Some(candidate) = merged {
                    // Accept only if the fused command, applied to the
                    // pre-batch state, reproduces the sequential result.
                    if let Ok(fused_after) = apply(&executor, &state, &candidate) {
                        if fused_after == cur_after {
                            fused = Some((candidate, fused_after));
                        }
                    }
                }
                match fused {
                    Some(pair) => pending = Some(pair),
                    None => {
                        out.push(acc);
                        state = acc_after;
                        pending = Some((mv.clone(), cur_after));
                    }
                }
            }
        }
    }
    if let Some((acc, acc_after)) = pending {
        out.push(acc);
        state = acc_after;
    }

    // Safety net: the optimised schedule must reach the same final state.
    let check = executor.run(grid, &out)?;
    debug_assert_eq!(check.final_grid, state);
    let _ = state;
    Ok(CoalesceReport {
        before,
        after: out.len(),
        schedule: out,
    })
}

fn state_of(pending: &Option<(ParallelMove, AtomGrid)>, state: &AtomGrid) -> AtomGrid {
    match pending {
        Some((_, after)) => after.clone(),
        None => state.clone(),
    }
}

fn apply(executor: &Executor, state: &AtomGrid, mv: &ParallelMove) -> Result<AtomGrid, Error> {
    let mut single = Schedule::new(state.height(), state.width());
    single.push(mv.clone());
    Ok(executor.run(state, &single)?.final_grid)
}

fn merge_moves(a: &ParallelMove, b: &ParallelMove) -> Option<ParallelMove> {
    let mut rows = a.rows().to_vec();
    rows.extend_from_slice(b.rows());
    let mut cols = a.cols().to_vec();
    cols.extend_from_slice(b.cols());
    let (dr, dc) = a.delta();
    ParallelMove::new(rows, cols, dr, dc).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::loading::seeded_rng;
    use crate::scheduler::{Planner, QrmConfig, QrmScheduler};

    #[test]
    fn merges_disjoint_same_direction_moves() {
        // Two west shifts in different rows with disjoint columns can
        // fuse only when the cross product stays clean; here rows {0}
        // x cols {1} and rows {1} x cols {3}: the union traps (0,3) and
        // (1,1) — empty in this grid, so the merge is accepted.
        let grid = AtomGrid::parse(".#...\n...#.").unwrap();
        let mut s = Schedule::new(2, 5);
        s.push(ParallelMove::new(vec![0], vec![1], 0, -1).unwrap());
        s.push(ParallelMove::new(vec![1], vec![3], 0, -1).unwrap());
        let report = coalesce(&grid, &s).unwrap();
        assert_eq!(report.after, 1);
        assert!(report.saving() > 0.49);
        let out = Executor::new().run(&grid, &report.schedule).unwrap();
        let orig = Executor::new().run(&grid, &s).unwrap();
        assert_eq!(out.final_grid, orig.final_grid);
    }

    #[test]
    fn refuses_merges_that_trap_bystanders() {
        // The union cross product would trap the stationary atom at
        // (0,3): moving it would diverge from the sequential result, so
        // the merge must be rejected.
        let grid = AtomGrid::parse(".#.#.\n...#.").unwrap();
        let mut s = Schedule::new(2, 5);
        s.push(ParallelMove::new(vec![0], vec![1], 0, -1).unwrap());
        s.push(ParallelMove::new(vec![1], vec![3], 0, -1).unwrap());
        let report = coalesce(&grid, &s).unwrap();
        assert_eq!(report.after, 2, "unsafe merge must be rejected");
        let out = Executor::new().run(&grid, &report.schedule).unwrap();
        let orig = Executor::new().run(&grid, &s).unwrap();
        assert_eq!(out.final_grid, orig.final_grid);
    }

    #[test]
    fn different_directions_never_merge() {
        let grid = AtomGrid::parse(".#.\n.#.").unwrap();
        let mut s = Schedule::new(2, 3);
        s.push(ParallelMove::new(vec![0], vec![1], 0, -1).unwrap());
        s.push(ParallelMove::new(vec![1], vec![1], 0, 1).unwrap());
        let report = coalesce(&grid, &s).unwrap();
        assert_eq!(report.after, 2);
    }

    #[test]
    fn qrm_schedules_shrink_and_stay_correct() {
        let mut rng = seeded_rng(90);
        let mut total_saving = 0.0;
        let mut n = 0;
        for _ in 0..5 {
            let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
            let target = Rect::centered(20, 20, 12, 12).unwrap();
            let plan = QrmScheduler::new(QrmConfig::default())
                .plan(&grid, &target)
                .unwrap();
            if plan.schedule.is_empty() {
                continue;
            }
            let report = coalesce(&grid, &plan.schedule).unwrap();
            let out = Executor::new().run(&grid, &report.schedule).unwrap();
            assert_eq!(out.final_grid, plan.predicted);
            assert!(report.after <= report.before);
            total_saving += report.saving();
            n += 1;
        }
        assert!(n >= 3);
        // coalescing should find at least some fusions on average
        assert!(
            total_saving / n as f64 > 0.01,
            "mean saving {:.3} too small",
            total_saving / n as f64
        );
    }

    #[test]
    fn empty_schedule() {
        let grid = AtomGrid::new(4, 4).unwrap();
        let report = coalesce(&grid, &Schedule::new(4, 4)).unwrap();
        assert_eq!(report.before, 0);
        assert_eq!(report.after, 0);
        assert_eq!(report.saving(), 0.0);
    }
}

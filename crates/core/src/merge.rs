//! Cross-quadrant command merging (paper §IV-C, Row Combination Unit).
//!
//! Each quadrant kernel emits waves of canonical suffix shifts. This
//! module translates them into global coordinates and fuses them into AOD
//! [`ParallelMove`]s:
//!
//! * within one wave, all of a quadrant's shifts execute simultaneously;
//! * NW and SW waves merge (both compress **east** toward the centre
//!   column "from the west"), NE with SE (west), NW with NE (south), and
//!   SW with SE (north);
//! * merged line sets are split into cross-product-legal batches by the
//!   [`AodBatcher`];
//! * empty shifts are elided from the final schedule.

use crate::aod::AodBatcher;
use crate::bitline;
use crate::error::Error;
use crate::geometry::{Axis, Direction, QuadrantId};
use crate::grid::AtomGrid;
use crate::kernel::KernelOutcome;
use crate::moves::ParallelMove;
use crate::quadrant::QuadrantMap;
use crate::schedule::Schedule;

/// Merge options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeConfig {
    /// Fuse compatible quadrant pairs into shared moves (paper behaviour).
    /// Disabling yields one batch set per quadrant — the ablation knob for
    /// experiment E-x3.
    pub merge_quadrants: bool,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            merge_quadrants: true,
        }
    }
}

/// Result of merging four quadrant outcomes into a global schedule.
#[derive(Debug, Clone)]
pub struct MergeOutput {
    /// The executable global schedule.
    pub schedule: Schedule,
    /// Predicted global occupancy after the schedule runs.
    pub final_grid: AtomGrid,
}

/// Merges the four quadrant kernel outcomes (in [`QuadrantId::ALL`] order)
/// into one global [`Schedule`], maintaining a simulated global grid so
/// every produced move is validated as it is emitted.
///
/// # Errors
///
/// Propagates executor validation failures — these indicate planner bugs
/// and are turned into hard errors rather than silent schedule corruption.
pub fn merge_outcomes(
    grid: &AtomGrid,
    map: &QuadrantMap,
    outcomes: &[KernelOutcome; 4],
    config: &MergeConfig,
) -> Result<MergeOutput, Error> {
    let mut working = grid.clone();
    let mut working_t = grid.transpose();
    let mut schedule = Schedule::new(grid.height(), grid.width());
    let batcher = AodBatcher::new();
    // Precomputed suffix-range masks per hole position (hot path).
    let h_masks = SuffixMasks::build(map.quadrant_width(), bitline::words_for(grid.width()));
    let v_masks = SuffixMasks::build(map.quadrant_height(), bitline::words_for(grid.height()));

    let npasses = outcomes.iter().map(|o| o.passes.len()).max().unwrap_or(0);
    for p in 0..npasses {
        let axis = if p % 2 == 0 { Axis::Row } else { Axis::Col };
        let nwaves = outcomes
            .iter()
            .map(|o| o.passes.get(p).map_or(0, |pass| pass.waves.len()))
            .max()
            .unwrap_or(0);
        for w in 0..nwaves {
            let groups: [(Direction, [QuadrantId; 2]); 2] = match axis {
                Axis::Row => [
                    (Direction::East, [QuadrantId::Nw, QuadrantId::Sw]),
                    (Direction::West, [QuadrantId::Ne, QuadrantId::Se]),
                ],
                Axis::Col => [
                    (Direction::South, [QuadrantId::Nw, QuadrantId::Ne]),
                    (Direction::North, [QuadrantId::Sw, QuadrantId::Se]),
                ],
            };
            for (direction, members) in groups {
                if config.merge_quadrants {
                    let movers = collect_movers(
                        &working, &working_t, map, outcomes, &members, p, w, axis, &h_masks,
                        &v_masks,
                    );
                    emit_batches(
                        &mut working,
                        &mut working_t,
                        &mut schedule,
                        &batcher,
                        axis,
                        direction,
                        &movers,
                    )?;
                } else {
                    for q in members {
                        let movers = collect_movers(
                            &working,
                            &working_t,
                            map,
                            outcomes,
                            &[q],
                            p,
                            w,
                            axis,
                            &h_masks,
                            &v_masks,
                        );
                        emit_batches(
                            &mut working,
                            &mut working_t,
                            &mut schedule,
                            &batcher,
                            axis,
                            direction,
                            &movers,
                        )?;
                    }
                }
            }
        }
    }

    Ok(MergeOutput {
        schedule,
        final_grid: working,
    })
}

/// Precomputed "canonical positions > hole" range masks for each hole
/// position, for both quadrant orientations along one axis.
struct SuffixMasks {
    /// Toward-low quadrants (west / north): global range `[0, half-1-hole)`.
    low: Vec<Vec<u64>>,
    /// Toward-high quadrants (east / south): global range `(half+hole, 2*half)`.
    high: Vec<Vec<u64>>,
}

impl SuffixMasks {
    fn build(half: usize, words: usize) -> Self {
        SuffixMasks {
            low: (0..half)
                .map(|hole| bitline::range_mask(words, 0, half - 1 - hole))
                .collect(),
            high: (0..half)
                .map(|hole| bitline::range_mask(words, half + hole + 1, 2 * half))
                .collect(),
        }
    }
}

/// Gathers `(global_line, mover_mask)` pairs for wave `w` of pass `p`
/// restricted to `members`.
#[allow(clippy::too_many_arguments)]
fn collect_movers(
    working: &AtomGrid,
    working_t: &AtomGrid,
    map: &QuadrantMap,
    outcomes: &[KernelOutcome; 4],
    members: &[QuadrantId],
    p: usize,
    w: usize,
    axis: Axis,
    h_masks: &SuffixMasks,
    v_masks: &SuffixMasks,
) -> Vec<(usize, Vec<u64>)> {
    let mut movers = Vec::new();
    for &q in members {
        let idx = QuadrantId::ALL.iter().position(|&x| x == q).expect("valid");
        let Some(pass) = outcomes[idx].passes.get(p) else {
            continue;
        };
        debug_assert_eq!(pass.axis, axis, "pass axis misalignment");
        let Some(wave) = pass.waves.get(w) else {
            continue;
        };
        for shift in &wave.shifts {
            let (global_line, occ, table) = match axis {
                Axis::Row => (
                    map.global_row(q, shift.line),
                    working.row_bits(map.global_row(q, shift.line)),
                    if q.is_west() {
                        &h_masks.low
                    } else {
                        &h_masks.high
                    },
                ),
                Axis::Col => (
                    map.global_col(q, shift.line),
                    working_t.row_bits(map.global_col(q, shift.line)),
                    if q.is_north() {
                        &v_masks.low
                    } else {
                        &v_masks.high
                    },
                ),
            };
            let range = &table[shift.hole];
            let mask: Vec<u64> = occ.iter().zip(range.iter()).map(|(o, m)| o & m).collect();
            if bitline::count_ones(&mask) > 0 {
                movers.push((global_line, mask));
            }
        }
    }
    movers
}

/// Batches the movers and emits moves into the schedule, updating both
/// grid representations with direct bit-level application.
///
/// Legality holds by construction — mover masks are sampled from the
/// live working grid and the [`AodBatcher`] guarantees the cross product
/// traps exactly the movers — so the executor is not re-run per move
/// here (the test suite executes every merged schedule through the
/// validating [`Executor`](crate::executor::Executor) instead). Debug
/// builds still assert collision-freedom per line.
#[allow(clippy::too_many_arguments)]
fn emit_batches(
    working: &mut AtomGrid,
    working_t: &mut AtomGrid,
    schedule: &mut Schedule,
    batcher: &AodBatcher,
    axis: Axis,
    direction: Direction,
    movers: &[(usize, Vec<u64>)],
) -> Result<(), Error> {
    if movers.is_empty() {
        return Ok(());
    }
    // Occupancy per line along the pass axis.
    let occ_grid = match axis {
        Axis::Row => &*working,
        Axis::Col => &*working_t,
    };
    let occ: Vec<&[u64]> = (0..occ_grid.height())
        .map(|l| occ_grid.row_bits(l))
        .collect();
    let width = occ_grid.width();
    let (dr, dc) = direction.delta();
    // Position delta along the pass axis: east/south increase indices.
    let sign = match direction {
        Direction::East | Direction::South => 1isize,
        Direction::West | Direction::North => -1,
    };

    let batches = batcher.batch(&occ, movers);
    for batch in batches {
        let positions = batch.positions(width);
        if positions.is_empty() {
            continue;
        }
        let (rows, cols) = match axis {
            Axis::Row => (batch.lines.clone(), positions),
            Axis::Col => (positions, batch.lines.clone()),
        };
        let mv = ParallelMove::new(rows, cols, dr, dc)?;
        apply_batch(
            working,
            working_t,
            axis,
            sign,
            &batch.lines,
            &batch.union_mask,
        );
        schedule.push(mv);
    }
    Ok(())
}

/// Applies one batch to the primary and transposed grids.
fn apply_batch(
    working: &mut AtomGrid,
    working_t: &mut AtomGrid,
    axis: Axis,
    sign: isize,
    lines: &[usize],
    union: &[u64],
) {
    let (primary, mirror) = match axis {
        Axis::Row => (&mut *working, &mut *working_t),
        Axis::Col => (&mut *working_t, &mut *working),
    };
    let width = primary.width();
    for &line in lines {
        let bits = primary.row_bits(line);
        let movers: Vec<u64> = bits.iter().zip(union.iter()).map(|(b, u)| b & u).collect();
        let shifted = if sign > 0 {
            bitline::shift_up_one(&movers, width)
        } else {
            bitline::shift_down_one(&movers)
        };
        let stay: Vec<u64> = bits
            .iter()
            .zip(movers.iter())
            .map(|(b, m)| b & !m)
            .collect();
        debug_assert!(
            stay.iter().zip(shifted.iter()).all(|(s, m)| s & m == 0),
            "merge emitted a colliding move"
        );
        debug_assert_eq!(
            bitline::count_ones(&movers),
            bitline::count_ones(&shifted),
            "merge pushed an atom out of bounds"
        );
        let new_bits: Vec<u64> = stay
            .iter()
            .zip(shifted.iter())
            .map(|(s, m)| s | m)
            .collect();
        primary.set_row_bits(line, &new_bits);
        // Mirror each moved atom on the orthogonal representation: all
        // clears before all sets, so chains of adjacent movers do not
        // erase each other's destinations.
        let moved = bitline::ones(&movers, width);
        for &pos in &moved {
            mirror.set_unchecked(pos, line, false);
        }
        for &pos in &moved {
            mirror.set_unchecked(pos.wrapping_add_signed(sign), line, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::kernel::{KernelConfig, KernelStrategy, ShiftKernel};
    use crate::loading::seeded_rng;

    fn merge_random(
        size: usize,
        target: usize,
        strategy: KernelStrategy,
        seed: u64,
        config: &MergeConfig,
    ) -> (AtomGrid, MergeOutput) {
        let mut rng = seeded_rng(seed);
        let grid = AtomGrid::random(size, size, 0.5, &mut rng);
        let map = QuadrantMap::new(size, size).unwrap();
        let quads = map.split(&grid).unwrap();
        let kernel =
            ShiftKernel::new(KernelConfig::new(target / 2, target / 2).with_strategy(strategy));
        let outcomes: Vec<KernelOutcome> = quads.iter().map(|q| kernel.run(q).unwrap()).collect();
        let outcomes: [KernelOutcome; 4] = outcomes.try_into().unwrap();
        let out = merge_outcomes(&grid, &map, &outcomes, config).unwrap();
        (grid, out)
    }

    #[test]
    fn merged_schedule_executes_cleanly() {
        for seed in [1, 2, 3, 4, 5] {
            let (grid, out) = merge_random(
                20,
                12,
                KernelStrategy::Balanced,
                seed,
                &MergeConfig::default(),
            );
            let rep = Executor::new().run(&grid, &out.schedule).unwrap();
            assert_eq!(rep.final_grid, out.final_grid, "seed {seed}");
            assert_eq!(rep.final_grid.atom_count(), grid.atom_count());
        }
    }

    #[test]
    fn merged_final_grid_matches_quadrant_restore() {
        let size = 16;
        let mut rng = seeded_rng(7);
        let grid = AtomGrid::random(size, size, 0.5, &mut rng);
        let map = QuadrantMap::new(size, size).unwrap();
        let quads = map.split(&grid).unwrap();
        let kernel =
            ShiftKernel::new(KernelConfig::new(5, 5).with_strategy(KernelStrategy::Greedy));
        let outcomes: Vec<KernelOutcome> = quads.iter().map(|q| kernel.run(q).unwrap()).collect();
        let finals: Vec<AtomGrid> = outcomes.iter().map(|o| o.final_grid.clone()).collect();
        let outcomes: [KernelOutcome; 4] = outcomes.try_into().unwrap();
        let expected = map.restore(&finals.try_into().unwrap()).unwrap();
        let out = merge_outcomes(&grid, &map, &outcomes, &MergeConfig::default()).unwrap();
        assert_eq!(out.final_grid, expected);
    }

    #[test]
    fn unmerged_produces_no_fewer_moves() {
        let merged = merge_random(
            20,
            12,
            KernelStrategy::Balanced,
            9,
            &MergeConfig {
                merge_quadrants: true,
            },
        );
        let unmerged = merge_random(
            20,
            12,
            KernelStrategy::Balanced,
            9,
            &MergeConfig {
                merge_quadrants: false,
            },
        );
        assert!(
            merged.1.schedule.len() <= unmerged.1.schedule.len(),
            "merged {} > unmerged {}",
            merged.1.schedule.len(),
            unmerged.1.schedule.len()
        );
        // Both must land on the same final occupancy.
        assert_eq!(merged.1.final_grid, unmerged.1.final_grid);
    }

    #[test]
    fn every_move_is_unit_step_axis_aligned() {
        let (_, out) = merge_random(20, 12, KernelStrategy::Balanced, 3, &MergeConfig::default());
        for mv in &out.schedule {
            assert!(mv.is_axis_aligned());
            assert_eq!(mv.step(), 1);
        }
    }

    #[test]
    fn west_half_moves_east_and_vice_versa() {
        let (_, out) = merge_random(16, 8, KernelStrategy::Greedy, 11, &MergeConfig::default());
        for mv in &out.schedule {
            match mv.direction().unwrap() {
                Direction::East => {
                    // all selected columns strictly west of centre
                    assert!(
                        mv.cols().iter().all(|&c| c < 8),
                        "east move cols {:?}",
                        mv.cols()
                    );
                }
                Direction::West => {
                    assert!(
                        mv.cols().iter().all(|&c| c >= 8),
                        "west move cols {:?}",
                        mv.cols()
                    );
                }
                Direction::South => {
                    assert!(mv.rows().iter().all(|&r| r < 8));
                }
                Direction::North => {
                    assert!(mv.rows().iter().all(|&r| r >= 8));
                }
            }
        }
    }
}

//! Bit-packed 2D atom occupancy grids.
//!
//! [`AtomGrid`] stores one bit per optical-trap site, packed into `u64`
//! words row by row — the same "rows as bit vectors" representation the
//! paper's shift kernel uses on the FPGA (§IV-C), which makes row scans and
//! flips cheap and keeps the software scheduler comparable to the hardware
//! datapath.

use std::fmt;

use rand::Rng;

use crate::error::Error;
use crate::geometry::{Position, Rect};

const WORD_BITS: usize = 64;

/// A binary occupancy matrix over a rectangular trap array.
///
/// Rows are bit-packed (`u64` words, little-endian bit order within a
/// word). Row 0 is the north edge, bit/column 0 the west edge.
///
/// ```
/// use qrm_core::grid::AtomGrid;
/// use qrm_core::geometry::Position;
///
/// let mut g = AtomGrid::new(4, 6)?;
/// g.set(Position::new(1, 2), true)?;
/// assert!(g.get(Position::new(1, 2))?);
/// assert_eq!(g.atom_count(), 1);
/// # Ok::<(), qrm_core::Error>(())
/// ```
#[derive(PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AtomGrid {
    height: usize,
    width: usize,
    /// Words per row.
    stride: usize,
    words: Vec<u64>,
}

impl Clone for AtomGrid {
    fn clone(&self) -> Self {
        AtomGrid {
            height: self.height,
            width: self.width,
            stride: self.stride,
            words: self.words.clone(),
        }
    }

    /// Clones into an existing grid, reusing its word buffer when the
    /// capacity suffices — the planning engine's
    /// [`PlanContext`](crate::engine::PlanContext) leans on this to keep
    /// repeated `plan_batch` rounds allocation-free on the hot path.
    fn clone_from(&mut self, source: &Self) {
        self.height = source.height;
        self.width = source.width;
        self.stride = source.stride;
        self.words.clone_from(&source.words);
    }
}

impl AtomGrid {
    /// Creates an empty `height x width` grid.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyGrid`] when either dimension is zero.
    pub fn new(height: usize, width: usize) -> Result<Self, Error> {
        if height == 0 || width == 0 {
            return Err(Error::EmptyGrid);
        }
        let stride = width.div_ceil(WORD_BITS);
        Ok(AtomGrid {
            height,
            width,
            stride,
            words: vec![0; stride * height],
        })
    }

    /// Builds a grid from an ASCII art description: `'#'`, `'1'` or `'o'`
    /// mark occupied sites, `'.'`, `'0'` or `' '` empty ones. All rows must
    /// have equal length.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] for ragged rows or unknown characters and
    /// [`Error::EmptyGrid`] for an empty description.
    ///
    /// ```
    /// use qrm_core::grid::AtomGrid;
    /// let g = AtomGrid::parse(".#.\n#.#")?;
    /// assert_eq!((g.height(), g.width(), g.atom_count()), (2, 3, 3));
    /// # Ok::<(), qrm_core::Error>(())
    /// ```
    pub fn parse(art: &str) -> Result<Self, Error> {
        let rows: Vec<&str> = art
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        if rows.is_empty() {
            return Err(Error::EmptyGrid);
        }
        let width = rows[0].chars().count();
        let mut grid = AtomGrid::new(rows.len(), width)?;
        for (r, line) in rows.iter().enumerate() {
            if line.chars().count() != width {
                return Err(Error::Parse {
                    reason: format!("row {r} has length {} != {width}", line.chars().count()),
                });
            }
            for (c, ch) in line.chars().enumerate() {
                let occupied = match ch {
                    '#' | '1' | 'o' => true,
                    '.' | '0' | ' ' => false,
                    other => {
                        return Err(Error::Parse {
                            reason: format!("unknown cell character {other:?}"),
                        })
                    }
                };
                if occupied {
                    grid.set_unchecked(r, c, true);
                }
            }
        }
        Ok(grid)
    }

    /// Creates a grid with each site independently occupied with
    /// probability `fill` — the stochastic loading model (§II-A: loading
    /// probability ≈ 50 %).
    ///
    /// # Panics
    ///
    /// Panics if `fill` is not within `0.0..=1.0` or either dimension is
    /// zero (workload-generator convenience; use [`AtomGrid::new`] +
    /// explicit sets for fallible construction).
    pub fn random<R: Rng + ?Sized>(height: usize, width: usize, fill: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&fill),
            "fill probability {fill} outside [0, 1]"
        );
        let mut g = AtomGrid::new(height, width).expect("non-zero dimensions");
        for r in 0..height {
            for c in 0..width {
                if rng.gen_bool(fill) {
                    g.set_unchecked(r, c, true);
                }
            }
        }
        g
    }

    /// Grid height (number of rows).
    pub const fn height(&self) -> usize {
        self.height
    }

    /// Grid width (number of columns).
    pub const fn width(&self) -> usize {
        self.width
    }

    /// Dimensions as `(height, width)`.
    pub const fn dims(&self) -> (usize, usize) {
        (self.height, self.width)
    }

    /// Total number of sites.
    pub const fn area(&self) -> usize {
        self.height * self.width
    }

    fn check(&self, pos: Position) -> Result<(), Error> {
        if pos.row >= self.height || pos.col >= self.width {
            Err(Error::OutOfBounds {
                pos,
                height: self.height,
                width: self.width,
            })
        } else {
            Ok(())
        }
    }

    /// Occupancy at `pos`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] when `pos` lies outside the grid.
    pub fn get(&self, pos: Position) -> Result<bool, Error> {
        self.check(pos)?;
        Ok(self.get_unchecked(pos.row, pos.col))
    }

    /// Occupancy at `(row, col)` without bounds diagnostics.
    ///
    /// # Panics
    ///
    /// Panics (debug assert / slice index) when out of bounds.
    #[inline]
    pub fn get_unchecked(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.height && col < self.width);
        let w = self.words[row * self.stride + col / WORD_BITS];
        (w >> (col % WORD_BITS)) & 1 == 1
    }

    /// Sets occupancy at `pos`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] when `pos` lies outside the grid.
    pub fn set(&mut self, pos: Position, occupied: bool) -> Result<(), Error> {
        self.check(pos)?;
        self.set_unchecked(pos.row, pos.col, occupied);
        Ok(())
    }

    /// Sets occupancy at `(row, col)` without bounds diagnostics.
    ///
    /// # Panics
    ///
    /// Panics (debug assert / slice index) when out of bounds.
    #[inline]
    pub fn set_unchecked(&mut self, row: usize, col: usize, occupied: bool) {
        debug_assert!(row < self.height && col < self.width);
        let word = &mut self.words[row * self.stride + col / WORD_BITS];
        let mask = 1u64 << (col % WORD_BITS);
        if occupied {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Total number of atoms.
    ///
    /// ```
    /// use qrm_core::grid::AtomGrid;
    /// let g = AtomGrid::parse("##.\n..#")?;
    /// assert_eq!(g.atom_count(), 3);
    /// # Ok::<(), qrm_core::Error>(())
    /// ```
    pub fn atom_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of atoms in row `row`.
    ///
    /// # Panics
    ///
    /// Panics when `row >= height`.
    pub fn row_count(&self, row: usize) -> usize {
        assert!(row < self.height, "row {row} out of bounds");
        self.words[row * self.stride..(row + 1) * self.stride]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Number of atoms in column `col`.
    ///
    /// # Panics
    ///
    /// Panics when `col >= width`.
    pub fn col_count(&self, col: usize) -> usize {
        assert!(col < self.width, "col {col} out of bounds");
        (0..self.height)
            .filter(|&r| self.get_unchecked(r, col))
            .count()
    }

    /// Number of atoms inside `rect` (clipped to the grid is **not**
    /// performed; the rect must fit).
    ///
    /// # Errors
    ///
    /// Returns [`Error::RectOutOfBounds`] when `rect` does not fit.
    pub fn count_in(&self, rect: &Rect) -> Result<usize, Error> {
        if !rect.fits_in(self.height, self.width) {
            return Err(self.rect_err(rect));
        }
        Ok(rect
            .positions()
            .filter(|p| self.get_unchecked(p.row, p.col))
            .count())
    }

    /// Whether every site of `rect` is occupied (defect-free target check).
    ///
    /// # Errors
    ///
    /// Returns [`Error::RectOutOfBounds`] when `rect` does not fit.
    pub fn is_filled(&self, rect: &Rect) -> Result<bool, Error> {
        Ok(self.count_in(rect)? == rect.area())
    }

    /// Positions inside `rect` that are empty (the remaining defects).
    ///
    /// # Errors
    ///
    /// Returns [`Error::RectOutOfBounds`] when `rect` does not fit.
    pub fn defects_in(&self, rect: &Rect) -> Result<Vec<Position>, Error> {
        if !rect.fits_in(self.height, self.width) {
            return Err(self.rect_err(rect));
        }
        Ok(rect
            .positions()
            .filter(|p| !self.get_unchecked(p.row, p.col))
            .collect())
    }

    fn rect_err(&self, rect: &Rect) -> Error {
        Error::RectOutOfBounds {
            row: rect.row,
            col: rect.col,
            rect_height: rect.height,
            rect_width: rect.width,
            height: self.height,
            width: self.width,
        }
    }

    /// Iterates over all occupied positions in row-major order.
    ///
    /// ```
    /// use qrm_core::grid::AtomGrid;
    /// let g = AtomGrid::parse(".#\n#.")?;
    /// let v: Vec<_> = g.occupied().map(|p| (p.row, p.col)).collect();
    /// assert_eq!(v, vec![(0, 1), (1, 0)]);
    /// # Ok::<(), qrm_core::Error>(())
    /// ```
    pub fn occupied(&self) -> impl Iterator<Item = Position> + '_ {
        (0..self.height).flat_map(move |r| {
            (0..self.width).filter_map(move |c| {
                if self.get_unchecked(r, c) {
                    Some(Position::new(r, c))
                } else {
                    None
                }
            })
        })
    }

    /// Row `row` as a little-endian bit vector (`bits[0]` = column 0 word).
    ///
    /// The returned slice has `width.div_ceil(64)` words; bits above
    /// `width` are zero.
    ///
    /// # Panics
    ///
    /// Panics when `row >= height`.
    pub fn row_bits(&self, row: usize) -> &[u64] {
        assert!(row < self.height, "row {row} out of bounds");
        &self.words[row * self.stride..(row + 1) * self.stride]
    }

    /// Overwrites row `row` from a little-endian word slice (excess bits
    /// beyond `width` are masked off).
    ///
    /// # Panics
    ///
    /// Panics when `row >= height` or `bits.len() != stride`.
    pub fn set_row_bits(&mut self, row: usize, bits: &[u64]) {
        assert!(row < self.height, "row {row} out of bounds");
        assert_eq!(bits.len(), self.stride, "word count mismatch");
        let dst = &mut self.words[row * self.stride..(row + 1) * self.stride];
        dst.copy_from_slice(bits);
        // Mask tail bits so equality and popcounts stay exact.
        let tail = self.width % WORD_BITS;
        if tail != 0 {
            dst[self.stride - 1] &= (1u64 << tail) - 1;
        }
    }

    /// Returns the grid mirrored east-west (column `c` ↦ `width-1-c`).
    ///
    /// ```
    /// use qrm_core::grid::AtomGrid;
    /// let g = AtomGrid::parse("#..\n.#.")?;
    /// assert_eq!(g.flip_horizontal(), AtomGrid::parse("..#\n.#.")?);
    /// # Ok::<(), qrm_core::Error>(())
    /// ```
    pub fn flip_horizontal(&self) -> Self {
        let mut out = AtomGrid::new(self.height, self.width).expect("same dims");
        for r in 0..self.height {
            for c in 0..self.width {
                if self.get_unchecked(r, c) {
                    out.set_unchecked(r, self.width - 1 - c, true);
                }
            }
        }
        out
    }

    /// Returns the grid mirrored north-south (row `r` ↦ `height-1-r`).
    pub fn flip_vertical(&self) -> Self {
        let mut out = AtomGrid::new(self.height, self.width).expect("same dims");
        for r in 0..self.height {
            let src = self.row_bits(self.height - 1 - r).to_vec();
            out.set_row_bits(r, &src);
        }
        out
    }

    /// Returns the transposed grid (`(r, c)` ↦ `(c, r)`), used to reuse
    /// the row-wise shift kernel for column passes (paper §IV-C:
    /// "interpreting columns as rows").
    pub fn transpose(&self) -> Self {
        let mut out = AtomGrid::new(self.width, self.height).expect("same dims");
        for r in 0..self.height {
            for c in 0..self.width {
                if self.get_unchecked(r, c) {
                    out.set_unchecked(c, r, true);
                }
            }
        }
        out
    }

    /// In-place variant of [`transpose`](Self::transpose): writes the
    /// transposed grid into `out`, reshaping it and reusing its word
    /// buffer. The planning kernel's column passes lean on this to stay
    /// allocation-free once their scratch is warm; contents of `out`
    /// are discarded. Produces exactly the grid
    /// [`transpose`](Self::transpose) returns.
    pub fn transpose_into(&self, out: &mut AtomGrid) {
        out.reshape(self.width, self.height);
        for r in 0..self.height {
            for c in 0..self.width {
                if self.get_unchecked(r, c) {
                    out.set_unchecked(c, r, true);
                }
            }
        }
    }

    /// Reinitialises the grid to an **empty** `height x width`, reusing
    /// the word buffer when its capacity suffices. The recycled-scratch
    /// twin of [`AtomGrid::new`]; dimensions must be nonzero (internal
    /// callers guarantee it).
    pub(crate) fn reshape(&mut self, height: usize, width: usize) {
        debug_assert!(height > 0 && width > 0, "reshape to empty grid");
        self.height = height;
        self.width = width;
        self.stride = width.div_ceil(WORD_BITS);
        self.words.clear();
        self.words.resize(self.stride * height, 0);
    }

    /// Mutable word view of row `row`, for in-place line edits by the
    /// shift kernel. Callers must preserve the invariant that bits at or
    /// above `width` stay zero (the kernel only ever shifts bits toward
    /// column 0, which cannot violate it).
    ///
    /// # Panics
    ///
    /// Panics when `row >= height`.
    pub(crate) fn row_bits_mut(&mut self, row: usize) -> &mut [u64] {
        assert!(row < self.height, "row {row} out of bounds");
        &mut self.words[row * self.stride..(row + 1) * self.stride]
    }

    /// Extracts a copy of the sites inside `rect`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RectOutOfBounds`] when `rect` does not fit.
    pub fn subgrid(&self, rect: &Rect) -> Result<Self, Error> {
        if !rect.fits_in(self.height, self.width) {
            return Err(self.rect_err(rect));
        }
        let mut out = AtomGrid::new(rect.height, rect.width)?;
        for r in 0..rect.height {
            for c in 0..rect.width {
                if self.get_unchecked(rect.row + r, rect.col + c) {
                    out.set_unchecked(r, c, true);
                }
            }
        }
        Ok(out)
    }

    /// Pastes `src` into this grid at `origin` (overwrites the region).
    ///
    /// # Errors
    ///
    /// Returns [`Error::RectOutOfBounds`] when `src` does not fit at
    /// `origin`.
    pub fn paste(&mut self, origin: Position, src: &AtomGrid) -> Result<(), Error> {
        let rect = Rect::new(origin.row, origin.col, src.height, src.width);
        if !rect.fits_in(self.height, self.width) {
            return Err(self.rect_err(&rect));
        }
        for r in 0..src.height {
            for c in 0..src.width {
                self.set_unchecked(origin.row + r, origin.col + c, src.get_unchecked(r, c));
            }
        }
        Ok(())
    }

    /// Serialises the occupancy into the flat little-endian bitfield the
    /// accelerator's DMA consumes (row-major, `width` bits per row, no
    /// padding between rows), as produced by the atom-detection unit
    /// (paper §IV-A).
    pub fn to_bitfield(&self) -> Vec<u8> {
        let nbits = self.height * self.width;
        let mut out = vec![0u8; nbits.div_ceil(8)];
        let mut idx = 0usize;
        for r in 0..self.height {
            for c in 0..self.width {
                if self.get_unchecked(r, c) {
                    out[idx / 8] |= 1 << (idx % 8);
                }
                idx += 1;
            }
        }
        out
    }

    /// Rebuilds a grid from the flat bitfield produced by
    /// [`to_bitfield`](Self::to_bitfield).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] when `bytes` is too short and
    /// [`Error::EmptyGrid`] for zero dimensions.
    pub fn from_bitfield(height: usize, width: usize, bytes: &[u8]) -> Result<Self, Error> {
        let nbits = height * width;
        if bytes.len() < nbits.div_ceil(8) {
            return Err(Error::Parse {
                reason: format!(
                    "bitfield too short: {} bytes for {} bits",
                    bytes.len(),
                    nbits
                ),
            });
        }
        let mut g = AtomGrid::new(height, width)?;
        for idx in 0..nbits {
            if (bytes[idx / 8] >> (idx % 8)) & 1 == 1 {
                g.set_unchecked(idx / width, idx % width, true);
            }
        }
        Ok(g)
    }
}

impl fmt::Display for AtomGrid {
    /// Renders `'#'` for occupied and `'.'` for empty sites, one row per
    /// line (north row first).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.height {
            for c in 0..self.width {
                f.write_str(if self.get_unchecked(r, c) { "#" } else { "." })?;
            }
            if r + 1 < self.height {
                f.write_str("\n")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for AtomGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AtomGrid({}x{}, {} atoms)\n{}",
            self.height,
            self.width,
            self.atom_count(),
            self
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_rejects_zero_dims() {
        assert_eq!(AtomGrid::new(0, 5), Err(Error::EmptyGrid));
        assert_eq!(AtomGrid::new(5, 0), Err(Error::EmptyGrid));
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let art = "#..#\n.##.\n....";
        let g = AtomGrid::parse(art).unwrap();
        assert_eq!(g.to_string(), art);
        assert_eq!(g.atom_count(), 4);
    }

    #[test]
    fn parse_rejects_ragged_and_unknown() {
        assert!(matches!(AtomGrid::parse("##\n#"), Err(Error::Parse { .. })));
        assert!(matches!(AtomGrid::parse("#x"), Err(Error::Parse { .. })));
        assert_eq!(AtomGrid::parse(""), Err(Error::EmptyGrid));
    }

    #[test]
    fn get_set_and_bounds() {
        let mut g = AtomGrid::new(3, 3).unwrap();
        let p = Position::new(2, 2);
        g.set(p, true).unwrap();
        assert!(g.get(p).unwrap());
        g.set(p, false).unwrap();
        assert!(!g.get(p).unwrap());
        assert!(matches!(
            g.get(Position::new(3, 0)),
            Err(Error::OutOfBounds { .. })
        ));
        assert!(matches!(
            g.set(Position::new(0, 3), true),
            Err(Error::OutOfBounds { .. })
        ));
    }

    #[test]
    fn wide_grid_crosses_word_boundary() {
        // width 90 > 64: exercises multi-word rows (paper's largest array).
        let mut g = AtomGrid::new(2, 90).unwrap();
        g.set_unchecked(0, 63, true);
        g.set_unchecked(0, 64, true);
        g.set_unchecked(1, 89, true);
        assert_eq!(g.atom_count(), 3);
        assert_eq!(g.row_count(0), 2);
        assert_eq!(g.col_count(64), 1);
        assert_eq!(g.row_bits(0).len(), 2);
        assert!(g.get_unchecked(1, 89));
    }

    #[test]
    fn transpose_into_matches_transpose_for_any_scratch_shape() {
        let mut rng = StdRng::seed_from_u64(12);
        // Deliberately mis-shaped scratch with stale contents.
        let mut out = AtomGrid::random(3, 70, 0.5, &mut rng);
        for (h, w) in [(9, 14), (70, 3), (1, 1), (5, 64), (2, 65)] {
            let g = AtomGrid::random(h, w, 0.4, &mut rng);
            g.transpose_into(&mut out);
            assert_eq!(out, g.transpose(), "{h}x{w}");
        }
    }

    #[test]
    fn row_bits_mut_edits_land_in_the_grid() {
        let mut g = AtomGrid::new(2, 90).unwrap();
        g.row_bits_mut(1)[1] = 1 << (89 - 64);
        assert!(g.get_unchecked(1, 89));
        assert_eq!(g.atom_count(), 1);
    }

    #[test]
    fn counts_per_row_col_and_rect() {
        let g = AtomGrid::parse("##.\n.#.\n..#").unwrap();
        assert_eq!(g.row_count(0), 2);
        assert_eq!(g.col_count(1), 2);
        let r = Rect::new(0, 0, 2, 2);
        assert_eq!(g.count_in(&r).unwrap(), 3);
        assert!(!g.is_filled(&r).unwrap());
        assert_eq!(g.defects_in(&r).unwrap(), vec![Position::new(1, 0)]);
        assert!(g.count_in(&Rect::new(0, 0, 4, 4)).is_err());
    }

    #[test]
    fn flips_are_involutions() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = AtomGrid::random(7, 9, 0.5, &mut rng);
        assert_eq!(g.flip_horizontal().flip_horizontal(), g);
        assert_eq!(g.flip_vertical().flip_vertical(), g);
        assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn flip_examples() {
        let g = AtomGrid::parse("#..\n...").unwrap();
        assert_eq!(g.flip_horizontal().to_string(), "..#\n...");
        assert_eq!(g.flip_vertical().to_string(), "...\n#..");
        assert_eq!(g.transpose().to_string(), "#.\n..\n..");
    }

    #[test]
    fn flips_preserve_atom_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = AtomGrid::random(10, 10, 0.4, &mut rng);
        let n = g.atom_count();
        assert_eq!(g.flip_horizontal().atom_count(), n);
        assert_eq!(g.flip_vertical().atom_count(), n);
        assert_eq!(g.transpose().atom_count(), n);
    }

    #[test]
    fn subgrid_paste_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = AtomGrid::random(8, 8, 0.5, &mut rng);
        let rect = Rect::new(2, 3, 4, 5);
        let sub = g.subgrid(&rect).unwrap();
        assert_eq!(sub.dims(), (4, 5));
        let mut h = g.clone();
        h.paste(Position::new(rect.row, rect.col), &sub).unwrap();
        assert_eq!(h, g);
    }

    #[test]
    fn paste_out_of_bounds() {
        let mut g = AtomGrid::new(4, 4).unwrap();
        let s = AtomGrid::new(3, 3).unwrap();
        assert!(g.paste(Position::new(2, 2), &s).is_err());
    }

    #[test]
    fn bitfield_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        for (h, w) in [(1, 1), (3, 5), (8, 8), (5, 70)] {
            let g = AtomGrid::random(h, w, 0.5, &mut rng);
            let bytes = g.to_bitfield();
            assert_eq!(bytes.len(), (h * w).div_ceil(8));
            let back = AtomGrid::from_bitfield(h, w, &bytes).unwrap();
            assert_eq!(back, g);
        }
    }

    #[test]
    fn bitfield_too_short() {
        assert!(matches!(
            AtomGrid::from_bitfield(4, 4, &[0u8]),
            Err(Error::Parse { .. })
        ));
    }

    #[test]
    fn random_fill_statistics() {
        let mut rng = StdRng::seed_from_u64(1234);
        let g = AtomGrid::random(50, 50, 0.5, &mut rng);
        let n = g.atom_count() as f64;
        // 5 sigma around the binomial mean 1250 (sigma = 25).
        assert!((n - 1250.0).abs() < 125.0, "count {n} implausible");
    }

    #[test]
    fn set_row_bits_masks_tail() {
        let mut g = AtomGrid::new(1, 10).unwrap();
        g.set_row_bits(0, &[u64::MAX]);
        assert_eq!(g.atom_count(), 10);
        assert_eq!(g.row_count(0), 10);
    }

    #[test]
    fn occupied_iterator_row_major() {
        let g = AtomGrid::parse("..#\n#..").unwrap();
        let v: Vec<_> = g.occupied().collect();
        assert_eq!(v, vec![Position::new(0, 2), Position::new(1, 0)]);
    }
}

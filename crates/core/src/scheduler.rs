//! The top-level QRM planner and the [`Plan`] it produces.
//!
//! The common planner interface lives in [`crate::planner`]; this module
//! re-exports it (and its historical `Rearranger` alias) for
//! compatibility.

use std::fmt;

use crate::engine::{decompose, PlanEngine};
use crate::error::Error;
use crate::geometry::Rect;
use crate::grid::AtomGrid;
use crate::kernel::{KernelOutcome, KernelStrategy, ShiftKernel};
use crate::merge::MergeConfig;
use crate::quadrant::QuadrantMap;
use crate::schedule::Schedule;

pub use crate::planner::{plan_and_execute, Planner};

/// Historical name of the [`Planner`] trait, kept as an alias for older
/// call sites.
pub use crate::planner::Planner as Rearranger;

/// A computed rearrangement plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// The executable move schedule.
    pub schedule: Schedule,
    /// Predicted occupancy after execution.
    pub predicted: AtomGrid,
    /// Whether the predicted occupancy fills the target.
    pub filled: bool,
    /// Planner iterations used (kernel iterations for QRM: the maximum
    /// across quadrants).
    pub iterations: usize,
}

impl Plan {
    /// Remaining defects in `target` under the predicted occupancy.
    ///
    /// # Errors
    ///
    /// Returns [`Error::RectOutOfBounds`] when the rect does not fit.
    pub fn defects(&self, target: &Rect) -> Result<usize, Error> {
        Ok(target.area() - self.predicted.count_in(target)?)
    }
}

/// Configuration of the [`QrmScheduler`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QrmConfig {
    /// Per-quadrant kernel strategy.
    pub strategy: KernelStrategy,
    /// Kernel iteration budget (paper: static 4; library default 12).
    pub max_iterations: usize,
    /// Fuse compatible quadrant waves into shared AOD moves.
    pub merge_quadrants: bool,
}

impl Default for QrmConfig {
    fn default() -> Self {
        QrmConfig {
            strategy: KernelStrategy::default(),
            max_iterations: 12,
            merge_quadrants: true,
        }
    }
}

impl QrmConfig {
    /// The paper-faithful configuration: greedy kernel, 4 iterations,
    /// quadrant merging on.
    pub fn paper() -> Self {
        QrmConfig {
            strategy: KernelStrategy::Greedy,
            max_iterations: 4,
            merge_quadrants: true,
        }
    }

    /// Replaces the kernel strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: KernelStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Enables or disables cross-quadrant merging.
    #[must_use]
    pub fn with_merge_quadrants(mut self, merge: bool) -> Self {
        self.merge_quadrants = merge;
        self
    }
}

/// The Quadrant-based Rearrangement Method planner (paper §III-B).
///
/// Splits the array into four canonically-flipped quadrants, runs the
/// [`ShiftKernel`] on each, and merges the four wave streams into one
/// global AOD schedule.
///
/// ```
/// use qrm_core::prelude::*;
///
/// let mut rng = qrm_core::loading::seeded_rng(3);
/// let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
/// let target = Rect::centered(20, 20, 12, 12)?;
/// let plan = QrmScheduler::new(QrmConfig::default()).plan(&grid, &target)?;
/// let report = Executor::new().run(&grid, &plan.schedule)?;
/// assert_eq!(report.final_grid, plan.predicted);
/// # Ok::<(), qrm_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct QrmScheduler {
    /// The batched engine — the single owner of the configuration, the
    /// worker count, and the reusable
    /// [`PlanContext`](crate::engine::PlanContext), so serial and
    /// batched paths cannot desync and repeated `plan_batch` rounds
    /// through one scheduler recycle their scratch.
    engine: PlanEngine,
}

impl QrmScheduler {
    /// Creates a scheduler with the given configuration and automatic
    /// batch worker count.
    pub fn new(config: QrmConfig) -> Self {
        QrmScheduler {
            engine: PlanEngine::new(config),
        }
    }

    /// Overrides the worker count used by batched planning (`0` restores
    /// the automatic one-per-core policy). Single-shot `plan` calls are
    /// always inline and unaffected.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.engine = self.engine.with_workers(workers);
        self
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &QrmConfig {
        self.engine.config()
    }

    /// The embedded batched engine — read access to its context-pool
    /// diagnostics ([`PlanEngine::context_stats`]) for long-lived
    /// consumers like the planning service, which report how warm a
    /// scheduler is without owning engine internals.
    pub fn engine(&self) -> &PlanEngine {
        &self.engine
    }

    /// Runs only the per-quadrant kernels, returning the four outcomes in
    /// [`QuadrantId::ALL`](crate::geometry::QuadrantId::ALL) order — the
    /// intermediate the FPGA model and the ablation benches consume
    /// directly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OddDimensions`] / [`Error::InvalidTarget`] for
    /// arrays and targets QRM cannot decompose.
    pub fn quadrant_outcomes(
        &self,
        grid: &AtomGrid,
        target: &Rect,
    ) -> Result<(QuadrantMap, [KernelOutcome; 4]), Error> {
        let work = decompose(grid, target)?;
        let kernel = ShiftKernel::new(crate::engine::kernel_config_for(self.config(), &work));
        let mut outcomes = Vec::with_capacity(4);
        for q in &work.quadrants {
            outcomes.push(kernel.run(q)?);
        }
        Ok((work.map, outcomes.try_into().expect("four outcomes")))
    }
}

impl Planner for QrmScheduler {
    fn name(&self) -> &'static str {
        match self.config().strategy {
            KernelStrategy::Greedy => "QRM (greedy)",
            KernelStrategy::GreedyTargetOnly => "QRM (greedy, target-only)",
            KernelStrategy::Balanced => "QRM (balanced)",
        }
    }

    fn plan(&self, grid: &AtomGrid, target: &Rect) -> Result<Plan, Error> {
        let (map, outcomes) = self.quadrant_outcomes(grid, target)?;
        let merge_cfg = MergeConfig {
            merge_quadrants: self.config().merge_quadrants,
        };
        crate::engine::assemble_plan(grid, target, &map, &outcomes, &merge_cfg)
    }

    /// Batched planning through the parallel task-graph engine
    /// ([`crate::engine`]): quadrant kernels of **all** shots share one
    /// work queue on the persistent worker pool, keeping every core busy
    /// across the batch, and the scheduler's embedded
    /// [`PlanContext`](crate::engine::PlanContext) recycles scratch
    /// between rounds. Plans are bit-identical to mapping
    /// [`plan`](Self::plan) (the engine's determinism guarantee).
    fn plan_batch(&self, jobs: &[(AtomGrid, Rect)]) -> Result<Vec<Plan>, Error> {
        self.engine.plan_batch(jobs)
    }

    fn context_stats(&self) -> Option<crate::engine::ContextPoolStats> {
        Some(self.engine.context_stats())
    }
}

impl fmt::Display for QrmScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (max {} iterations, merge={})",
            self.name(),
            self.config().max_iterations,
            self.config().merge_quadrants
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::loading::seeded_rng;

    #[test]
    fn plan_matches_execution_across_sizes() {
        for (size, tgt) in [(10, 6), (20, 12), (30, 18)] {
            let mut rng = seeded_rng(size as u64);
            let grid = AtomGrid::random(size, size, 0.5, &mut rng);
            let target = Rect::centered(size, size, tgt, tgt).unwrap();
            let plan = QrmScheduler::default().plan(&grid, &target).unwrap();
            let report = Executor::new().run(&grid, &plan.schedule).unwrap();
            assert_eq!(report.final_grid, plan.predicted, "size {size}");
            assert_eq!(
                plan.filled,
                report.target_filled(&target).unwrap(),
                "size {size}"
            );
        }
    }

    #[test]
    fn balanced_fills_headline_instance() {
        // 50x50 at 50% -> 30x30: the paper's headline configuration.
        let mut rng = seeded_rng(2025);
        let mut filled = 0;
        let mut tried = 0;
        for _ in 0..10 {
            let grid = AtomGrid::random(50, 50, 0.5, &mut rng);
            if grid.atom_count() < 1000 {
                continue;
            }
            tried += 1;
            let target = Rect::centered(50, 50, 30, 30).unwrap();
            let plan = QrmScheduler::default().plan(&grid, &target).unwrap();
            if plan.filled {
                filled += 1;
            }
        }
        assert!(tried >= 8);
        assert!(filled * 10 >= tried * 8, "filled {filled}/{tried}");
    }

    #[test]
    fn rejects_odd_arrays_and_bad_targets() {
        let grid = AtomGrid::new(9, 10).unwrap();
        let target = Rect::new(2, 2, 4, 4);
        assert!(matches!(
            QrmScheduler::default().plan(&grid, &target),
            Err(Error::OddDimensions { .. })
        ));
        let grid = AtomGrid::new(10, 10).unwrap();
        let off_centre = Rect::new(0, 0, 4, 4);
        assert!(matches!(
            QrmScheduler::default().plan(&grid, &off_centre),
            Err(Error::InvalidTarget { .. })
        ));
    }

    #[test]
    fn defects_accounting() {
        let grid = AtomGrid::new(8, 8).unwrap(); // no atoms at all
        let target = Rect::centered(8, 8, 4, 4).unwrap();
        let plan = QrmScheduler::default().plan(&grid, &target).unwrap();
        assert!(!plan.filled);
        assert_eq!(plan.defects(&target).unwrap(), 16);
        assert!(plan.schedule.is_empty());
    }

    #[test]
    fn paper_config_uses_greedy() {
        let s = QrmScheduler::new(QrmConfig::paper());
        assert_eq!(s.name(), "QRM (greedy)");
        assert_eq!(s.config().max_iterations, 4);
    }

    #[test]
    fn plan_and_execute_helper() {
        let mut rng = seeded_rng(5);
        let grid = AtomGrid::random(12, 12, 0.5, &mut rng);
        let target = Rect::centered(12, 12, 6, 6).unwrap();
        let planner = QrmScheduler::default();
        let (plan, report) = plan_and_execute(&planner, &grid, &target).unwrap();
        assert_eq!(plan.predicted, report.final_grid);
    }

    #[test]
    fn iterations_reported() {
        let mut rng = seeded_rng(13);
        let grid = AtomGrid::random(20, 20, 0.5, &mut rng);
        let target = Rect::centered(20, 20, 12, 12).unwrap();
        let plan = QrmScheduler::default().plan(&grid, &target).unwrap();
        assert!(plan.iterations >= 1 && plan.iterations <= 4);
    }
}
